//! Sharded grove: N shard servers behind one combined top-level root.
//!
//! Partitions the keyspace across `--shards N` independent shard servers
//! (each with its own COW Merkle B+-tree, snapshot slot, and reply
//! journal), folds the shard roots into a single grove root, and shows
//! that the single-server guarantees survive the composition: verified
//! reads against the grove root, a cross-shard sync-up that passes on an
//! honest grove, and a lie confined to one shard that is caught on the
//! very response that carries it — localized to exactly that shard.
//!
//! Run with: `cargo run -p tcvs-bench --release --example sharded_grove -- --shards 8`

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{Deviation, HonestServer, Op, ProtocolConfig, ServerApi, SyncShare};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{GroveReader, NetError, NetServerOptions, NetStats, ShardedClient2, ShardedServer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(4);
    assert!(n_shards > 0, "--shards takes a positive integer");
    let config = ProtocolConfig::default();
    let root0 = MerkleTree::with_order(config.order).root_digest();
    let root0s = vec![root0; n_shards];

    println!("== sharded grove: {n_shards} shards, one combined root ==\n");

    // --- An honest grove: routed writes, one root, passing sync-up ------
    let grove = ShardedServer::spawn(n_shards, &config, NetServerOptions::default());
    let mut alice = ShardedClient2::new(0, &root0s, config, &grove);
    let mut bob = ShardedClient2::new(1, &root0s, config, &grove);
    for i in 0..64u64 {
        alice
            .execute(&Op::Put(u64_key(2 * i), vec![1]))
            .expect("alice");
        bob.execute(&Op::Put(u64_key(2 * i + 1), vec![2]))
            .expect("bob");
    }
    let router = grove.router();
    let mut per_shard = vec![0u64; n_shards];
    for i in 0..128u64 {
        per_shard[router.route_key(&u64_key(i))] += 1;
    }
    println!("128 keys routed restart-stably across shards: {per_shard:?}");

    let epoch = grove.grove_epoch().expect("every shard publishes");
    println!(
        "grove epoch {}: {} shard roots folded into grove root {}",
        epoch.epoch,
        epoch.shard_roots.len(),
        hex_prefix(epoch.grove_root.as_ref()),
    );

    // Every read is verified against the grove root: shard proof + spine.
    let mut reader = GroveReader::bind(9, &config, &grove).expect("read paths");
    for i in 0..128u64 {
        reader
            .execute(&Op::Get(u64_key(i)))
            .expect("grove-verified read");
    }
    println!("128 reads verified against the grove root");

    // Cross-shard sync-up: per-shard Protocol II predicates, all shards
    // sampled at one grove epoch.
    let (a, b) = (alice.sync_shares(), bob.sync_shares());
    let shares: Vec<Vec<SyncShare>> = (0..n_shards)
        .map(|s| vec![a[s].clone(), b[s].clone()])
        .collect();
    assert!(alice.sync_succeeds(&shares) && bob.sync_succeeds(&shares));
    println!("cross-shard sync-up: PASS on the honest grove\n");
    grove.shutdown();

    // --- The same grove with exactly one lying shard ---------------------
    println!("== now with one deviating shard out of {n_shards} ==\n");
    let bad_shard = n_shards / 2;
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..n_shards)
        .map(|i| -> Box<dyn ServerApi + Send> {
            if i == bad_shard {
                Box::new(LieServer::new(&config, Trigger::AtCtr(3)))
            } else {
                Box::new(HonestServer::new(&config))
            }
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions::default(),
        NetStats::disabled(),
    );
    let router = grove.router();
    let mut carol = ShardedClient2::new(0, &root0s, config, &grove);
    for i in 0..1024u64 {
        let op = Op::Put(u64_key(i), vec![3]);
        let shard = router.route_op(&op).expect("keyed op");
        match carol.execute(&op) {
            Ok(_) => {}
            Err(NetError::Deviation(Deviation::BadProof(e))) => {
                println!("op {i} (shard {shard}): DEVIATION CAUGHT: {e}");
                assert_eq!(shard, bad_shard, "localized to the lying shard");
                println!(
                    "the lie was confined to shard {bad_shard}; the other {} shards \
                     served verified answers throughout",
                    n_shards - 1
                );
                grove.shutdown();
                return;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    panic!("the lying shard escaped detection");
}

fn hex_prefix(bytes: &[u8]) -> String {
    bytes.iter().take(6).map(|b| format!("{b:02x}")).collect()
}
