//! Protocol III in action (§4.4, Fig. 4): no broadcast channel, no
//! simultaneous online users — the untrusted server itself relays signed
//! epoch states, and a rotating checker audits each epoch two epochs later.
//!
//! The demo runs honest epochs, then injects a fork and shows the audit
//! catching it within two epochs.
//!
//! Run with: `cargo run -p tcvs-bench --example epoch_audit`

use tcvs_core::adversary::{ForkServer, Trigger};
use tcvs_core::{HonestServer, ProtocolConfig, ProtocolKind};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate_epoch_workload, WorkloadSpec};

fn main() {
    let n_users = 3u32;
    let epoch_len = 12u64;
    let config = ProtocolConfig {
        order: 8,
        k: 1024,
        epoch_len,
    };
    let spec = SimSpec {
        protocol: ProtocolKind::Three,
        config,
        n_users,
        mss_height: 8,
        setup_seed: [7; 32],
        final_sync: false,
        faults: tcvs_core::FaultPlan::none(),
    };
    let trace = generate_epoch_workload(
        n_users,
        9,
        epoch_len,
        2,
        &WorkloadSpec {
            n_users,
            key_space: 32,
            seed: 7,
            ..WorkloadSpec::default()
        },
    );

    println!("== Protocol III: epoch-based audits through the untrusted server ==\n");
    println!(
        "{} users, epochs of {} rounds, every user performs 2 ops per epoch",
        n_users, epoch_len
    );
    println!("(the restricted workload Protocol III requires — §4.4)\n");

    // --- Honest run -------------------------------------------------------
    let mut server = HonestServer::new(&config);
    let r = simulate(&spec, &mut server, &trace, None);
    println!("honest server:");
    println!(
        "  {} ops over {} rounds, {} epoch audits, detection: {}",
        r.ops_executed,
        r.makespan_rounds,
        r.audits,
        if r.detected() {
            "yes (?!)"
        } else {
            "none — all audits passed"
        }
    );

    // --- Forking server -----------------------------------------------------
    let trigger = 20u64; // fault during epoch 3
    let fault_round = trace.ops()[trigger as usize].round;
    let mut server = ForkServer::new(&config, Trigger::AtCtr(trigger), &[0]);
    let r = simulate(&spec, &mut server, &trace, Some(trigger));
    println!(
        "\nforking server (fault at op #{trigger}, round {fault_round}, epoch {}):",
        fault_round / epoch_len
    );
    match r.detection {
        Some(ev) => {
            println!(
                "  DETECTED by user {} at round {} (epoch {}): {}",
                ev.by_user,
                ev.round,
                ev.round / epoch_len,
                ev.deviation
            );
            println!(
                "  delay: {} epoch(s) — Theorem 4.3 promises at most 2",
                (ev.round / epoch_len).saturating_sub(fault_round / epoch_len)
            );
        }
        None => println!("  not detected (unexpected!)"),
    }

    println!("\nNo user ever talked to another user: the signed epoch states and");
    println!("checkpoints travelled through the adversary itself, unforgeably.");
}
