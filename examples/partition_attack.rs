//! The paper's headline scenario (§1, §3, Fig. 1): the US/China partition
//! attack — and why external communication is the only cure.
//!
//! A programmer in the US commits `Common.h` and goes offline; a programmer
//! in China keeps working. A malicious server *forks* the repository: the
//! Chinese side never sees the US commit, yet every per-operation proof on
//! both sides verifies perfectly. Only the broadcast sync-up exposes it.
//!
//! Run with: `cargo run -p tcvs-bench --example partition_attack`

use tcvs_core::adversary::{ForkServer, Trigger};
use tcvs_core::{ProtocolConfig, ProtocolKind};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{partitionable, PartitionSpec};

fn main() {
    println!("== the partition (fork) attack, Fig. 1 ==\n");

    let k = 8u64;
    let config = ProtocolConfig {
        order: 16,
        k,
        epoch_len: 256,
    };
    let w = partitionable(&PartitionSpec {
        n_users: 4,
        warmup_ops: 15,
        tail_ops: 3 * k,
        key_space: 64,
        seed: 42,
    });
    println!(
        "workload: {} warmup ops, t1 = group A's commit to Common.h (op #{}),",
        15, w.t1_index
    );
    println!(
        "then group B (users {:?}) performs {} further ops while group A sleeps.\n",
        w.group_b, w.tail_ops
    );

    // --- Arm 1: no external communication --------------------------------
    let spec = SimSpec {
        protocol: ProtocolKind::Two,
        config: ProtocolConfig {
            k: u64::MAX,
            ..config
        },
        n_users: 4,
        mss_height: 8,
        setup_seed: [1; 32],
        final_sync: false,
        faults: tcvs_core::FaultPlan::none(),
    };
    let mut server = ForkServer::new(&spec.config, Trigger::AtCtr(w.t1_index), &w.group_a);
    let r = simulate(&spec, &mut server, &w.trace, Some(w.t1_index));
    println!("WITHOUT external communication (Theorem 3.1's regime):");
    println!(
        "  {} ops executed, every per-op proof verified, detection: {}",
        r.ops_executed,
        if r.detected() {
            "yes (?!)"
        } else {
            "NONE — the fork is invisible"
        }
    );

    // --- Arm 2: Protocol II with the broadcast channel --------------------
    let spec = SimSpec {
        protocol: ProtocolKind::Two,
        config,
        n_users: 4,
        mss_height: 8,
        setup_seed: [1; 32],
        final_sync: true,
        faults: tcvs_core::FaultPlan::none(),
    };
    let mut server = ForkServer::new(&config, Trigger::AtCtr(w.t1_index), &w.group_a);
    let r = simulate(&spec, &mut server, &w.trace, Some(w.t1_index));
    println!("\nWITH the broadcast sync-up every k = {k} operations (Protocol II):");
    match r.detection {
        Some(ev) => {
            println!(
                "  DETECTED at op #{} (round {}): {}",
                ev.op_index, ev.round, ev.deviation
            );
            println!(
                "  no user completed more than {} ops after the fork (k-bounded detection)",
                ev.max_user_ops_after_violation.unwrap_or(0)
            );
        }
        None => println!("  not detected (unexpected!)"),
    }

    println!("\nThis is Theorem 3.1 made executable: partitionable workloads make");
    println!("bounded deviation detection impossible without external communication,");
    println!("and Protocol II's sync-up restores a k-bounded guarantee.");
}
