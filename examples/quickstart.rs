//! Quickstart: a complete trusted-CVS session in ~60 lines.
//!
//! One honest server, one user, verified checkout/commit/log/diff — plus a
//! demonstration that a lying server is caught immediately.
//!
//! Run with: `cargo run -p tcvs-bench --example quickstart`

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{HonestServer, ProtocolConfig};
use tcvs_cvs::{Cvs, CvsError, DirectSession};

fn main() {
    let config = ProtocolConfig::default();

    // --- A verified session against an honest server --------------------
    let mut session = DirectSession::new(0, HonestServer::new(&config), config);
    let mut cvs = Cvs::new(&mut session, "alice");

    println!("== trusted-cvs quickstart ==\n");
    cvs.add(
        "Common.h",
        "#pragma once\n#define VERSION 1\n",
        "initial import",
        1,
    )
    .expect("add");
    println!("added Common.h at r1");

    let mut wf = cvs.checkout("Common.h").expect("checkout");
    println!("checked out r{}: {} lines", wf.base_rev, wf.lines.len());

    wf.lines[1] = "#define VERSION 2".to_string();
    let rev = cvs.commit(&wf, "bump version", 2).expect("commit");
    println!("committed r{rev}");

    println!("\ncvs log Common.h:");
    for (rev, meta) in cvs.log("Common.h").expect("log") {
        println!("  r{rev}  {}  \"{}\"", meta.author, meta.message);
    }

    println!("\ncvs diff -r1 -r2 Common.h:");
    print!("{}", cvs.diff("Common.h", 1, 2).expect("diff"));

    // Every one of those commands was *verified*: the server proved each
    // answer against its Merkle root commitments, and the client replayed
    // every state transition.

    // --- The same commands against a lying server -----------------------
    println!("\n== now against a server that forges an answer ==\n");
    let evil = LieServer::new(&config, Trigger::AtCtr(2));
    let mut session = DirectSession::new(0, evil, config);
    let mut cvs = Cvs::new(&mut session, "alice");
    cvs.add("Common.h", "#pragma once\n", "import", 1)
        .expect("add");

    for attempt in 1..=3 {
        match cvs.checkout("Common.h") {
            Ok(wf) => println!("checkout #{attempt}: ok (r{})", wf.base_rev),
            Err(CvsError::Deviation(d)) => {
                println!("checkout #{attempt}: SERVER DEVIATION DETECTED: {d}");
                println!("\n(the user now leaves the system and alerts the others — §2.2.1)");
                return;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    unreachable!("the lie must be detected");
}
