//! A multi-user team repository over the threaded deployment: three
//! developers committing concurrently to one trusted-cvs server, with a
//! conflict, an annotate, and a final out-of-band sync-up.
//!
//! Run with: `cargo run -p tcvs-bench --example team_repo`

use tcvs_core::{HonestServer, Op, OpResult, ProtocolConfig, SyncShare};
use tcvs_cvs::{Cvs, CvsError, VerifiedDb};
use tcvs_merkle::MerkleTree;
use tcvs_net::{NetClient2, NetError, NetServer};

/// Adapts a threaded Protocol II client into a CVS session.
struct NetSession(NetClient2);

impl VerifiedDb for NetSession {
    fn execute(&mut self, op: &Op) -> Result<OpResult, CvsError> {
        self.0.execute(op).map_err(|e| match e {
            NetError::Deviation(d) => CvsError::Deviation(d),
            other => CvsError::Network(other.to_string()),
        })
    }
}

fn main() {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX, // sync performed explicitly at the end
        epoch_len: 1 << 30,
    };
    let root0 = MerkleTree::with_order(config.order).root_digest();
    let server = NetServer::spawn(Box::new(HonestServer::new(&config)), false);

    println!("== team repository over the threaded deployment ==\n");

    // Alice seeds the repository.
    let mut alice = NetSession(NetClient2::new(0, &root0, config, &server));
    {
        let mut cvs = Cvs::new(&mut alice, "alice");
        cvs.add(
            "src/main.c",
            "#include \"Common.h\"\nint main() { return 0; }\n",
            "initial import",
            1,
        )
        .unwrap();
        cvs.add("Common.h", "#pragma once\n", "initial import", 1)
            .unwrap();
        println!("alice imported src/main.c and Common.h");
    }

    // Bob and Carol check out concurrently (worker threads).
    let mut bob = NetSession(NetClient2::new(1, &root0, config, &server));
    let mut carol = NetSession(NetClient2::new(2, &root0, config, &server));

    let bob_wf = Cvs::new(&mut bob, "bob").checkout("Common.h").unwrap();
    let carol_wf = Cvs::new(&mut carol, "carol").checkout("Common.h").unwrap();
    println!(
        "bob and carol both checked out Common.h r{}",
        bob_wf.base_rev
    );

    // Bob commits first.
    {
        let mut wf = bob_wf;
        wf.lines.push("#define BOB 1".to_string());
        let rev = Cvs::new(&mut bob, "bob")
            .commit(&wf, "bob's feature", 2)
            .unwrap();
        println!("bob committed r{rev}");
    }

    // Carol's commit now conflicts — classic CVS.
    {
        let mut wf = carol_wf;
        wf.lines.push("#define CAROL 1".to_string());
        let mut cvs = Cvs::new(&mut carol, "carol");
        match cvs.commit(&wf, "carol's feature", 3) {
            Err(CvsError::Conflict { head, base, .. }) => {
                println!(
                    "carol's commit CONFLICTS (head r{head}, hers based on r{base}) — updating"
                );
                let mut fresh = cvs.checkout("Common.h").unwrap();
                fresh.lines.push("#define CAROL 1".to_string());
                let rev = cvs.commit(&fresh, "carol's feature (rebased)", 4).unwrap();
                println!("carol committed r{rev} after update");
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    // Annotate shows who wrote each line.
    {
        let mut cvs = Cvs::new(&mut alice, "alice");
        println!("\ncvs annotate Common.h:");
        for (rev, line) in cvs.annotate("Common.h").unwrap() {
            let meta = cvs.log("Common.h").unwrap()[rev as usize - 1].1.clone();
            println!("  r{rev} ({:>5}): {line}", meta.author);
        }
    }

    // Out-of-band sync-up: all three users cross-check their accumulators.
    let shares: Vec<SyncShare> = vec![
        alice.0.sync_share(),
        bob.0.sync_share(),
        carol.0.sync_share(),
    ];
    let ok = alice.0.sync_succeeds(&shares)
        || bob.0.sync_succeeds(&shares)
        || carol.0.sync_succeeds(&shares);
    println!(
        "\nbroadcast sync-up over {} total ops: {}",
        shares.iter().map(|s| s.lctr).sum::<u64>(),
        if ok {
            "consistent — the server performed exactly our operations"
        } else {
            "FAILED"
        }
    );
    assert!(ok);
    server.shutdown();
}
