//! Property tests for the protocol layer: soundness (honest runs always
//! pass) and completeness (structural faults always fail) of the Protocol
//! II accumulator check, over arbitrary interleavings — the executable
//! version of Lemma 4.1.

use proptest::prelude::*;
use tcvs_core::{Client2, Digest, HonestServer, Op, ProtocolConfig, ServerApi, SyncShare};
use tcvs_merkle::{u64_key, MerkleTree};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

/// A compact op encoding for generation.
#[derive(Clone, Debug)]
struct GenOp {
    user: u8,
    key: u8,
    kind: u8,
}

fn genop_strategy() -> impl Strategy<Value = GenOp> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(user, key, kind)| GenOp { user, key, kind })
}

fn to_op(g: &GenOp) -> Op {
    let key = u64_key(g.key as u64 % 32);
    match g.kind % 4 {
        0 => Op::Get(key),
        1 => Op::Put(key, vec![g.kind, g.key]),
        2 => Op::Delete(key),
        _ => Op::Range(Some(u64_key(0)), Some(key)),
    }
}

fn run_honest(ops: &[GenOp], n_users: u32) -> (Vec<Client2>, HonestServer) {
    let cfg = config();
    let mut server = HonestServer::new(&cfg);
    let root0 = MerkleTree::with_order(cfg.order).root_digest();
    let mut clients: Vec<Client2> = (0..n_users).map(|u| Client2::new(u, &root0, cfg)).collect();
    for (i, g) in ops.iter().enumerate() {
        let u = (g.user as u32) % n_users;
        let op = to_op(g);
        let resp = server.handle_op(u, &op, i as u64);
        clients[u as usize]
            .handle_response(&op, &resp)
            .expect("honest server never fails per-op checks");
    }
    (clients, server)
}

fn sync_ok(clients: &[Client2]) -> bool {
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    clients.iter().any(|c| c.sync_succeeds(&shares))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every honest interleaving passes the sync-up, and exactly
    /// one user claims success (unless nobody operated).
    #[test]
    fn honest_interleavings_always_pass(
        ops in proptest::collection::vec(genop_strategy(), 0..80),
        n_users in 1u32..6,
    ) {
        let (clients, _) = run_honest(&ops, n_users);
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        let successes = clients.iter().filter(|c| c.sync_succeeds(&shares)).count();
        if ops.is_empty() {
            prop_assert!(successes >= 1, "trivial pass when no ops happened");
        } else {
            prop_assert_eq!(successes, 1, "exactly the final operator succeeds");
        }
    }

    /// Completeness against share tampering: flipping any bit of any user's
    /// accumulator makes the sync-up fail (no user succeeds).
    #[test]
    fn any_sigma_corruption_fails_sync(
        ops in proptest::collection::vec(genop_strategy(), 1..60),
        n_users in 2u32..5,
        victim in any::<prop::sample::Index>(),
        bit in 0usize..256,
    ) {
        let (clients, _) = run_honest(&ops, n_users);
        let mut shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        let v = victim.index(shares.len());
        shares[v].sigma.0[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            !clients.iter().any(|c| c.sync_succeeds(&shares)),
            "corrupted σ must break the path equation"
        );
    }

    /// Completeness against hidden transitions: erasing a user's entire
    /// contribution fails the sync-up — **provided** someone else operated
    /// after them. (Hiding exactly the final operator's history is a
    /// rollback: the remaining shares describe a consistent shorter run,
    /// which is precisely why rollbacks are only caught at the *next*
    /// operation — the paper's detection bound, not a flaw.)
    #[test]
    fn hiding_non_suffix_history_fails_sync(
        ops in proptest::collection::vec(genop_strategy(), 2..60),
        n_users in 2u32..5,
        victim in any::<prop::sample::Index>(),
    ) {
        let (clients, _) = run_honest(&ops, n_users);
        let mut shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        let v = victim.index(shares.len());
        let last_operator = (ops.last().unwrap().user as u32 % n_users) as usize;
        if shares[v].lctr == 0 {
            // A silent user's share is already empty; nothing to hide.
            prop_assert!(sync_ok(&clients));
        } else if v == last_operator {
            // Rollback case: hiding the final operator can only *shorten*
            // the apparent history; the check may legitimately pass, so the
            // property asserts nothing here beyond "no panic".
        } else {
            shares[v].sigma = Digest::ZERO;
            shares[v].lctr = 0;
            shares[v].last = None;
            prop_assert!(
                !clients.iter().any(|c| c.sync_succeeds(&shares)),
                "vanished mid-history transitions must break the path equation"
            );
        }
    }

    /// The server's answers under verification equal a plain BTreeMap
    /// model: the protocol layer never alters semantics.
    #[test]
    fn verified_answers_match_model(
        ops in proptest::collection::vec(genop_strategy(), 1..60),
    ) {
        use std::collections::BTreeMap;
        let cfg = config();
        let mut server = HonestServer::new(&cfg);
        let root0 = MerkleTree::with_order(cfg.order).root_digest();
        let mut client = Client2::new(0, &root0, cfg);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (i, g) in ops.iter().enumerate() {
            let op = to_op(g);
            let resp = server.handle_op(0, &op, i as u64);
            let result = client.handle_response(&op, &resp).unwrap();
            let expect = match &op {
                Op::Get(k) => tcvs_core::OpResult::Value(model.get(k).cloned()),
                Op::Put(k, v) => {
                    tcvs_core::OpResult::Replaced(model.insert(k.clone(), v.clone()))
                }
                Op::Delete(k) => tcvs_core::OpResult::Deleted(model.remove(k)),
                Op::Range(lo, hi) => tcvs_core::OpResult::Entries(
                    model
                        .iter()
                        .filter(|(k, _)| {
                            lo.as_ref().is_none_or(|l| *k >= l)
                                && hi.as_ref().is_none_or(|h| *k < h)
                        })
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            };
            prop_assert_eq!(result, expect);
        }
    }

    /// Forensics round trip: honest logs diagnose as a clean path whose
    /// final token matches the last operator's `last`.
    #[test]
    fn forensics_clean_on_honest_runs(
        ops in proptest::collection::vec(genop_strategy(), 1..50),
        n_users in 1u32..4,
    ) {
        use tcvs_core::forensics::{diagnose, Verdict};
        use tcvs_core::state::initial_token;
        let cfg = config();
        let mut server = HonestServer::new(&cfg);
        let root0 = MerkleTree::with_order(cfg.order).root_digest();
        let mut clients: Vec<Client2> = (0..n_users)
            .map(|u| {
                let mut c = Client2::new(u, &root0, cfg);
                c.enable_logging();
                c
            })
            .collect();
        for (i, g) in ops.iter().enumerate() {
            let u = (g.user as u32) % n_users;
            let op = to_op(g);
            let resp = server.handle_op(u, &op, i as u64);
            clients[u as usize].handle_response(&op, &resp).unwrap();
        }
        let logs: Vec<_> = clients
            .iter()
            .map(|c| c.transition_log().unwrap().clone())
            .collect();
        match diagnose(&logs, &initial_token(&root0)) {
            Verdict::CleanPath { length, .. } => prop_assert_eq!(length, ops.len()),
            other => prop_assert!(false, "honest run must be clean: {:?}", other),
        }
    }

    /// Forensics localization: a fork injected at a random point is located
    /// at exactly that counter value.
    #[test]
    fn forensics_locates_forks_exactly(
        pre_ops in proptest::collection::vec(genop_strategy(), 1..30),
        post_ops in proptest::collection::vec(genop_strategy(), 1..20),
    ) {
        use tcvs_core::adversary::{ForkServer, Trigger};
        use tcvs_core::forensics::{diagnose, Verdict};
        use tcvs_core::state::initial_token;
        let cfg = config();
        let fork_at = pre_ops.len() as u64;
        let mut server = ForkServer::new(&cfg, Trigger::AtCtr(fork_at), &[0]);
        let root0 = MerkleTree::with_order(cfg.order).root_digest();
        let mut clients: Vec<Client2> = (0..2u32)
            .map(|u| {
                let mut c = Client2::new(u, &root0, cfg);
                c.enable_logging();
                c
            })
            .collect();
        let mut round = 0u64;
        for g in &pre_ops {
            let u = (g.user as u32) % 2;
            let op = to_op(g);
            let resp = server.handle_op(u, &op, round);
            clients[u as usize].handle_response(&op, &resp).unwrap();
            round += 1;
        }
        // Both users operate after the fork so both branches are populated.
        for (i, g) in post_ops.iter().enumerate() {
            for u in 0..2u32 {
                let op = to_op(&GenOp { user: u as u8, key: g.key.wrapping_add(i as u8), kind: g.kind });
                let resp = server.handle_op(u, &op, round);
                clients[u as usize].handle_response(&op, &resp).unwrap();
                round += 1;
            }
        }
        let logs: Vec<_> = clients
            .iter()
            .map(|c| c.transition_log().unwrap().clone())
            .collect();
        match diagnose(&logs, &initial_token(&root0)) {
            Verdict::Fork { at_ctr, .. } => prop_assert_eq!(at_ctr, fork_at),
            other => prop_assert!(false, "fork must be located: {:?}", other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Restart stability of the shard partitioner: the route is a pure
    /// function of (key bytes, shard count). Two independently constructed
    /// routers — a fresh process after a crash-restart — agree on every
    /// key, the route never depends on query order, and every keyed op
    /// follows its key. Changing the shard count is the only thing that
    /// may move a key.
    #[test]
    fn shard_routes_are_restart_stable(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..64),
        n_shards in 1usize..=16,
    ) {
        use tcvs_core::ShardRouter;
        let before = ShardRouter::new(n_shards);
        let routed: Vec<usize> = keys.iter().map(|k| before.route_key(k)).collect();
        prop_assert!(routed.iter().all(|&s| s < n_shards));
        // "Restart": a brand-new router, queried in reverse order.
        let after = ShardRouter::new(n_shards);
        for (k, &expect) in keys.iter().zip(&routed).rev() {
            prop_assert_eq!(after.route_key(k), expect, "route moved across a restart");
        }
        // Keyed ops follow their key; only a shard-count change may re-home.
        for (k, &expect) in keys.iter().zip(&routed) {
            let op = Op::Put(k.clone(), vec![1]);
            prop_assert_eq!(after.route_op(&op), Some(expect));
        }
    }
}
