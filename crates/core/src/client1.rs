//! Protocol I client (§4.2): signed root digests + operation counter +
//! broadcast sync-up every `k` operations.
//!
//! Per operation, the server returns `(Q(D), v(Q,D), ctr, j, sig)` where
//! `sig = sigⱼ(h(M(D) ‖ ctr))`. The client
//!
//! 1. computes `M(D)` from the verification object,
//! 2. checks `sig` is a legitimate signature over `h(M(D) ‖ ctr)`,
//! 3. replays the operation to obtain `M(D′)`,
//! 4. updates `lctrᵢ ← lctrᵢ + 1`, `gctrᵢ ← ctr + 1`, and
//! 5. returns `sigᵢ(h(M(D′) ‖ ctr + 1))` for deposit at the server.
//!
//! The deposit (step 5) is an extra, *blocking* message: the server cannot
//! serve the next operation until it holds the new signature. Protocol II
//! removes exactly this cost (experiments E2 and E6 measure it).
//!
//! The per-user state is constant-size (§2.2.5): two counters plus the
//! signing key.

use tcvs_crypto::{Digest, KeyRegistry, Keyring};
use tcvs_merkle::{verify_batch_response, verify_response, Op, OpResult, VerifyError};
use tcvs_obs::{stage, Event, EventKind, SpanContext, Tracer};

use crate::msg::{PipelinedResponse, ServerResponse, SignedState, SyncShare};
use crate::state::signed_payload;
use crate::types::{Ctr, Deviation, ProtocolConfig};

/// Protocol I client state machine.
pub struct Client1 {
    keyring: Keyring,
    registry: KeyRegistry,
    config: ProtocolConfig,
    /// Total operations this user has performed (`lctrᵢ`).
    lctr: u64,
    /// Last seen global counter + 1 (`gctrᵢ`).
    gctr: Ctr,
    /// The last state this user *verified* — `(M(D), ctr)` after its most
    /// recent operation (or the initial state, for the elected signer).
    /// The pipelined path anchors behind the served op, so this is the
    /// client's own defense line: any backfill window it accepts must pass
    /// through this exact state, pinning the server to the history this
    /// client has already observed.
    frontier: Option<(Digest, Ctr)>,
    /// Operations since the last sync-up (drives the sync trigger).
    ops_since_sync: u64,
    /// Event tracer (disabled by default; see [`Client1::set_tracer`]).
    tracer: Tracer,
    /// Trace context of the operation currently being verified (set by the
    /// transport layer before `handle_response`); emitted events link to it.
    current_span: Option<SpanContext>,
}

impl Client1 {
    /// Creates a client. `keyring` is this user's signing identity;
    /// `registry` holds every user's authentic public key.
    pub fn new(keyring: Keyring, registry: KeyRegistry, config: ProtocolConfig) -> Client1 {
        Client1 {
            keyring,
            registry,
            config,
            lctr: 0,
            gctr: 0,
            frontier: None,
            ops_since_sync: 0,
            tracer: Tracer::disabled(),
            current_span: None,
        }
    }

    /// Attaches an event tracer: deposit, sync-up, and verdict events are
    /// emitted with this client's counter values. Events carry logical time
    /// (`gctr`), so traced runs stay deterministic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets (or clears) the wire trace context subsequent verdict events
    /// attach to. The transport handle calls this once per operation with
    /// the same root context it put on the wire, so the client's deposit /
    /// detection spans land in the same trace as the server's handling.
    pub fn set_current_span(&mut self, ctx: Option<SpanContext>) {
        self.current_span = ctx;
    }

    /// This user's id.
    pub fn user(&self) -> tcvs_crypto::UserId {
        self.keyring.user
    }

    /// `lctrᵢ`: operations performed so far.
    pub fn lctr(&self) -> u64 {
        self.lctr
    }

    /// `gctrᵢ`: last seen counter + 1.
    pub fn gctr(&self) -> Ctr {
        self.gctr
    }

    /// Initialization step: the elected user signs `h(M(D₀) ‖ 0)` for
    /// deposit at the server before any operation (protocol line 2).
    pub fn sign_initial(&mut self, root0: &Digest) -> Result<SignedState, Deviation> {
        let payload = signed_payload(root0, 0);
        let sig = self
            .keyring
            .sign(&payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        self.frontier = Some((*root0, 0));
        Ok(SignedState {
            signer: self.keyring.user,
            root: *root0,
            ctr: 0,
            sig,
        })
    }

    /// Processes the server's response to `op`.
    ///
    /// On success returns the authenticated answer plus the signature over
    /// the new state, which the caller must deposit at the server before the
    /// server may serve the next operation.
    pub fn handle_response(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        let out = self.handle_response_inner(op, resp);
        self.trace_outcome(&out);
        out
    }

    /// Emits the deposit/detection event for a completed verification.
    fn trace_outcome(&self, out: &Result<(OpResult, SignedState), Deviation>) {
        match out {
            Ok((_, deposit)) => {
                let ctr = deposit.ctr;
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Deposit, self.keyring.user)
                        .detail(format!("ctr={ctr} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::DEPOSIT)))
                });
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Detection, self.keyring.user)
                        .detail(format!("{dev} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
    }

    /// Processes a pipelined-deposit response to `op` (see
    /// [`PipelinedResponse`]).
    ///
    /// The signature may attest a state *behind* the served operation; the
    /// response carries the intervening operations (`backfill`) and a proof
    /// anchored at the signed root. The client verifies the lagging
    /// signature, replays backfill + own op from the signed state, checks
    /// the claimed answer against the replay, and — exactly as in the
    /// blocking path — signs the resulting root at `resp.ctr + 1` for
    /// deposit. A caught-up pipeline (`backfill` empty, `sig.ctr ==
    /// resp.ctr`) makes this path verify the same facts as
    /// [`Client1::handle_response`].
    pub fn handle_pipelined_response(
        &mut self,
        op: &Op,
        presp: &PipelinedResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        let out = self.handle_pipelined_response_inner(op, presp);
        self.trace_outcome(&out);
        out
    }

    fn handle_pipelined_response_inner(
        &mut self,
        op: &Op,
        presp: &PipelinedResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        let resp = &presp.resp;
        let signed = resp.sig.as_ref().ok_or(Deviation::BadSignature)?;

        // The backfill must account for *exactly* the counter gap between
        // the signed state and the served operation: a shorter window would
        // leave unanchored transitions, a longer one would replay ops the
        // signature already covers.
        if signed
            .ctr
            .checked_add(presp.backfill.len() as u64)
            .is_none_or(|expected| expected != resp.ctr)
        {
            return Err(Deviation::BadSignature);
        }
        // The window must pass through this client's verified frontier:
        // the anchor may not sit *after* it (that would let the server
        // rewrite in-flight history this client already observed — the
        // replayed root is compared against the frontier below), and the
        // served counter may not sit before it (counter reuse).
        if let Some((_, fctr)) = self.frontier {
            if resp.ctr < fctr {
                return Err(Deviation::CounterRegression {
                    seen: resp.ctr,
                    expected_at_least: fctr,
                });
            }
            if signed.ctr > fctr {
                return Err(Deviation::BadSignature);
            }
        }
        let payload = signed_payload(&signed.root, signed.ctr);
        if !self.registry.verify(signed.signer, &payload, &signed.sig) {
            return Err(Deviation::BadSignature);
        }

        // Replay the backfill and then our own operation, anchored at the
        // signed root. Every claimed intermediate transition is thereby
        // content-bound to a legitimately signed state.
        let window: Vec<Op> = presp
            .backfill
            .iter()
            .map(|(_, o)| o.clone())
            .chain(std::iter::once(op.clone()))
            .collect();
        let steps = verify_batch_response(
            &signed.root,
            self.config.order,
            &presp.base_proof,
            &window,
            None,
            None,
        )
        .map_err(Deviation::BadProof)?;
        let final_step = steps.last().expect("window contains our own op");
        if final_step.result != resp.result {
            return Err(Deviation::BadProof(VerifyError::AnswerMismatch));
        }

        // Frontier continuity: the replayed state at the frontier counter
        // must be byte-identical to the state this client verified there.
        // A server that forges any backfill op before the frontier shifts
        // that root and is caught here, immediately.
        if let Some((froot, fctr)) = self.frontier {
            let j = (fctr - signed.ctr) as usize;
            let root_at_frontier = if j == 0 {
                signed.root
            } else {
                steps[j - 1].new_root
            };
            if root_at_frontier != froot {
                return Err(Deviation::BadProof(VerifyError::RootMismatch));
            }
        }

        // Step 5: bookkeeping.
        self.lctr += 1;
        self.gctr = resp.ctr + 1;
        self.frontier = Some((final_step.new_root, resp.ctr + 1));
        self.ops_since_sync += 1;

        // Step 6: sign the new state for deposit.
        let new_payload = signed_payload(&final_step.new_root, resp.ctr + 1);
        let sig = self
            .keyring
            .sign(&new_payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        let deposit = SignedState {
            signer: self.keyring.user,
            root: final_step.new_root,
            ctr: resp.ctr + 1,
            sig,
        };
        Ok((final_step.result.clone(), deposit))
    }

    fn handle_response_inner(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        // Step 2-3: the signature must be present and legitimate for the
        // state the verification object commits to.
        let signed = resp.sig.as_ref().ok_or(Deviation::BadSignature)?;

        // Replay first to learn the content-committed M(D) and M(D');
        // anchor the proof to the root the signature attests.
        let verified = verify_response(
            &signed.root,
            self.config.order,
            &resp.vo,
            op,
            Some(&resp.result),
            None,
        )
        .map_err(Deviation::BadProof)?;

        // The signature must cover exactly (M(D), ctr) as presented.
        if signed.ctr != resp.ctr {
            return Err(Deviation::BadSignature);
        }
        let payload = signed_payload(&signed.root, resp.ctr);
        if !self.registry.verify(signed.signer, &payload, &signed.sig) {
            return Err(Deviation::BadSignature);
        }

        // Step 5: bookkeeping.
        self.lctr += 1;
        self.gctr = resp.ctr + 1;
        self.frontier = Some((verified.new_root, resp.ctr + 1));
        self.ops_since_sync += 1;

        // Step 6: sign the new state for deposit.
        let new_payload = signed_payload(&verified.new_root, resp.ctr + 1);
        let sig = self
            .keyring
            .sign(&new_payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        let deposit = SignedState {
            signer: self.keyring.user,
            root: verified.new_root,
            ctr: resp.ctr + 1,
            sig,
        };
        Ok((verified.result, deposit))
    }

    /// True iff this user has completed `k` operations since the last
    /// sync-up and should announce one on the broadcast channel.
    pub fn wants_sync(&self) -> bool {
        self.ops_since_sync >= self.config.k
    }

    /// This user's broadcast share for a sync-up.
    pub fn sync_share(&self) -> SyncShare {
        SyncShare {
            user: self.keyring.user,
            lctr: self.lctr,
            gctr: self.gctr,
            sigma: Digest::ZERO,
            last: None,
        }
    }

    /// Evaluates this user's success predicate over all broadcast shares:
    /// `gctrᵢ == Σₖ lctrₖ`.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        let total: u64 = shares.iter().map(|s| s.lctr).sum();
        let ok = self.gctr == total;
        self.tracer.emit(|| {
            Event::new(self.gctr, EventKind::SyncUp, self.keyring.user)
                .detail(format!(
                    "{} gctr={} total_lctr={total}",
                    if ok { "ok" } else { "fail" },
                    self.gctr
                ))
                .span_opt(self.current_span.map(|c| c.child(stage::SYNC)))
        });
        ok
    }

    /// Records that a sync-up round completed (resets the trigger).
    pub fn sync_done(&mut self) {
        self.ops_since_sync = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_crypto::setup_users;
    use tcvs_merkle::u64_key;

    fn setup(n: u32) -> (Vec<Client1>, HonestServer, ProtocolConfig) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 100,
        };
        let (rings, registry) = setup_users([9u8; 32], n, 6);
        let clients: Vec<Client1> = rings
            .into_iter()
            .map(|r| Client1::new(r, registry.clone(), config))
            .collect();
        let mut server = HonestServer::new(&config);
        // Elect user 0 to sign the initial state.
        let mut clients = clients;
        let root0 = server.core().root_digest();
        let init = clients[0].sign_initial(&root0).unwrap();
        server.deposit_signature(0, init);
        (clients, server, config)
    }

    fn run_op(c: &mut Client1, s: &mut HonestServer, op: Op, round: u64) -> OpResult {
        let resp = s.handle_op(c.user(), &op, round);
        let (result, deposit) = c.handle_response(&op, &resp).unwrap();
        s.deposit_signature(c.user(), deposit);
        result
    }

    #[test]
    fn honest_interleaving_verifies() {
        let (mut clients, mut server, _) = setup(3);
        for i in 0..30u64 {
            let user = (i % 3) as usize;
            let op = if i % 2 == 0 {
                Op::Put(u64_key(i % 7), vec![i as u8])
            } else {
                Op::Get(u64_key((i - 1) % 7))
            };
            run_op(&mut clients[user], &mut server, op, i);
        }
        assert_eq!(clients.iter().map(|c| c.lctr()).sum::<u64>(), 30);
        // Sync: the most recent operator must succeed.
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn sync_trigger_counts_own_ops() {
        let (mut clients, mut server, config) = setup(2);
        for i in 0..config.k {
            run_op(&mut clients[0], &mut server, Op::Get(u64_key(0)), i);
        }
        assert!(clients[0].wants_sync());
        assert!(!clients[1].wants_sync());
        clients[0].sync_done();
        assert!(!clients[0].wants_sync());
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut clients, mut server, _) = setup(2);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(1, &op, 1);
        // Corrupt the signature bytes.
        if let Some(s) = resp.sig.as_mut() {
            s.sig.auth_path[0].0[0] ^= 1;
        }
        assert!(matches!(
            clients[1].handle_response(&op, &resp),
            Err(Deviation::BadSignature)
        ));
    }

    #[test]
    fn missing_signature_rejected() {
        let (mut clients, mut server, _) = setup(1);
        let op = Op::Get(u64_key(0));
        let mut resp = server.handle_op(0, &op, 0);
        resp.sig = None;
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadSignature)
        ));
    }

    #[test]
    fn mismatched_ctr_in_signature_rejected() {
        let (mut clients, mut server, _) = setup(1);
        let op = Op::Get(u64_key(0));
        let mut resp = server.handle_op(0, &op, 0);
        // Server lies about ctr relative to the signed one.
        resp.ctr = 5;
        let err = clients[0].handle_response(&op, &resp).unwrap_err();
        assert!(matches!(
            err,
            Deviation::BadSignature | Deviation::BadProof(_)
        ));
    }

    #[test]
    fn tampered_answer_rejected() {
        let (mut clients, mut server, _) = setup(1);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![7]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(0, &op, 1);
        resp.result = tcvs_merkle::OpResult::Value(Some(vec![66]));
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadProof(_))
        ));
    }

    #[test]
    fn sync_detects_lost_operation() {
        // Simulate a server that dropped an op: counts disagree.
        let (mut clients, mut server, _) = setup(2);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        run_op(
            &mut clients[1],
            &mut server,
            Op::Put(u64_key(2), vec![2]),
            1,
        );
        let mut shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        // Forge: pretend user 0 actually did 3 ops that the server hid.
        shares[0].lctr = 3;
        assert!(!clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn zero_ops_sync_trivially_succeeds() {
        let (clients, _server, _) = setup(3);
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        assert!(clients.iter().all(|c| c.sync_succeeds(&shares)));
    }

    mod pipelined {
        use super::*;
        use crate::msg::PipelinedResponse;
        use tcvs_merkle::{prune_for_ops, BatchProof, MerkleTree};

        /// Serves `op` for user 0 pipelined: the deposits for
        /// `backfill_ops` (performed by user 1) are still in flight, so the
        /// stored signature lags behind by the backfill length. `base` is
        /// the tree at the signed state.
        fn serve_pipelined(
            server: &mut HonestServer,
            base: &MerkleTree,
            backfill_ops: &[Op],
            op: &Op,
            round: u64,
        ) -> PipelinedResponse {
            let mut window: Vec<Op> = backfill_ops.to_vec();
            window.push(op.clone());
            let base_proof = BatchProof::new(prune_for_ops(base, &window));
            let resp = server.handle_op(0, op, round);
            PipelinedResponse {
                resp,
                base_proof,
                backfill: backfill_ops.iter().map(|o| (1, o.clone())).collect(),
            }
        }

        /// `setup` + one blocking op by user 0 (establishing its frontier)
        /// + two in-flight ops by user 1 whose deposits are withheld.
        fn pipelined_setup() -> (Vec<Client1>, HonestServer, MerkleTree, Vec<Op>) {
            let (mut clients, mut server, _) = setup(2);
            run_op(
                &mut clients[0],
                &mut server,
                Op::Put(u64_key(9), vec![9]),
                0,
            );
            let base = server.core().db().clone();
            let backfill_ops = vec![Op::Put(u64_key(1), vec![1]), Op::Put(u64_key(2), vec![2])];
            for (i, op) in backfill_ops.iter().enumerate() {
                server.handle_op(1, op, 1 + i as u64); // deposits in flight
            }
            (clients, server, base, backfill_ops)
        }

        #[test]
        fn lagging_signature_with_backfill_verifies() {
            let (mut clients, mut server, base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            let presp = serve_pipelined(&mut server, &base, &backfill_ops, &op, 3);
            assert_eq!(presp.resp.sig.as_ref().unwrap().ctr, 1);
            assert_eq!(presp.resp.ctr, 3);
            let (result, deposit) = clients[0].handle_pipelined_response(&op, &presp).unwrap();
            assert_eq!(result, OpResult::Value(Some(vec![1])));
            assert_eq!(deposit.ctr, 4);
            assert_eq!(deposit.root, server.core().root_digest());
            assert_eq!(clients[0].gctr(), 4);
            assert_eq!(clients[0].lctr(), 2);
        }

        #[test]
        fn caught_up_pipeline_matches_blocking_path() {
            // Empty backfill (sig.ctr == resp.ctr): the pipelined verifier
            // accepts exactly what the blocking one would.
            let (mut clients, mut server, _) = setup(1);
            run_op(
                &mut clients[0],
                &mut server,
                Op::Put(u64_key(1), vec![1]),
                0,
            );
            let base = server.core().db().clone();
            let op = Op::Get(u64_key(1));
            let presp = serve_pipelined(&mut server, &base, &[], &op, 1);
            assert_eq!(
                presp.resp.sig.as_ref().unwrap().ctr,
                presp.resp.ctr,
                "pipeline is caught up"
            );
            let (result, deposit) = clients[0].handle_pipelined_response(&op, &presp).unwrap();
            assert_eq!(result, OpResult::Value(Some(vec![1])));
            assert_eq!(deposit.root, server.core().root_digest());
        }

        #[test]
        fn wrong_backfill_length_rejected() {
            let (mut clients, mut server, base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            let mut presp = serve_pipelined(&mut server, &base, &backfill_ops, &op, 3);
            presp.backfill.pop(); // window no longer spans the counter gap
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadSignature)
            ));
        }

        #[test]
        fn tampered_answer_rejected() {
            let (mut clients, mut server, base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            let mut presp = serve_pipelined(&mut server, &base, &backfill_ops, &op, 3);
            presp.resp.result = OpResult::Value(Some(vec![66]));
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadProof(_))
            ));
        }

        #[test]
        fn proof_anchored_at_wrong_state_rejected() {
            let (mut clients, mut server, _base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            // Build the proof from the *post*-backfill tree: its root no
            // longer matches the signed anchor.
            let wrong_base = server.core().db().clone();
            let presp = serve_pipelined(&mut server, &wrong_base, &backfill_ops, &op, 3);
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadProof(VerifyError::RootMismatch))
            ));
        }

        #[test]
        fn forged_backfill_content_breaks_the_anchor() {
            // The server substitutes a different op for user 1's committed
            // Put inside the window. The replay is anchored at the signed
            // root, so the forged window's final state disagrees with the
            // true database — the claimed answer can only match one of the
            // two chains, and this client's own next anchor exposes it.
            let (mut clients, mut server, base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            let mut presp = serve_pipelined(&mut server, &base, &backfill_ops, &op, 3);
            // Forge: claim user 1 wrote 77 where it wrote 1. The honest
            // answer (Value(Some([1]))) now disagrees with the forged
            // window's replay.
            let forged = vec![Op::Put(u64_key(1), vec![77]), backfill_ops[1].clone()];
            presp.base_proof = BatchProof::new(prune_for_ops(&base, &{
                let mut w = forged.clone();
                w.push(op.clone());
                w
            }));
            presp.backfill = forged.into_iter().map(|o| (1, o)).collect();
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadProof(VerifyError::AnswerMismatch))
            ));
        }

        #[test]
        fn window_rewriting_own_history_rejected() {
            // User 0 verified the state after its own op at ctr 0 (its
            // frontier). A window whose replay passes through ctr 1 with a
            // different root — rewriting user 0's own observed history —
            // must be rejected even though everything else is consistent.
            let (mut clients, mut server, _) = setup(2);
            run_op(
                &mut clients[0],
                &mut server,
                Op::Put(u64_key(9), vec![9]),
                0,
            );
            // Fabricate an alternate chain from genesis: same sig anchor
            // (ctr 0) but user 0's op replaced.
            let root0 = MerkleTree::with_order(4).root_digest();
            let mut alt = MerkleTree::with_order(4);
            let alt_ops = vec![Op::Put(u64_key(9), vec![99])];
            let mut window = alt_ops.clone();
            let op = Op::Get(u64_key(9));
            window.push(op.clone());
            let base_proof = BatchProof::new(prune_for_ops(&alt, &window));
            let init = clients[1].sign_initial(&root0).unwrap();
            for w in &window {
                tcvs_merkle::apply_op(&mut alt, w).unwrap();
            }
            let mut resp = server.handle_op(0, &op, 1);
            resp.sig = Some(init);
            resp.result = OpResult::Value(Some(vec![99]));
            let presp = PipelinedResponse {
                resp,
                base_proof,
                backfill: alt_ops.into_iter().map(|o| (1, o)).collect(),
            };
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadProof(VerifyError::RootMismatch))
            ));
        }

        #[test]
        fn anchor_ahead_of_frontier_rejected() {
            // An anchor *after* this client's frontier would skip the part
            // of history the frontier pins; the client refuses it.
            let (mut clients, mut server, base, backfill_ops) = pipelined_setup();
            let op = Op::Get(u64_key(1));
            // User 1's deposit for its first in-flight op now lands, moving
            // the stored signature to ctr 2 — past user 0's frontier (1).
            let sig2 = {
                // Reconstruct user 1's deposit over the state after its
                // first backfill op (ctr 2) by replaying from base.
                let mut t = base.clone();
                tcvs_merkle::apply_op(&mut t, &backfill_ops[0]).unwrap();
                let payload = signed_payload(&t.root_digest(), 2);
                let sig = clients[1].keyring.sign(&payload).unwrap();
                SignedState {
                    signer: clients[1].keyring.user,
                    root: t.root_digest(),
                    ctr: 2,
                    sig,
                }
            };
            server.deposit_signature(1, sig2);
            let mut presp = serve_pipelined(&mut server, &base, &backfill_ops, &op, 3);
            assert!(presp.resp.sig.as_ref().unwrap().ctr > 1);
            // Trim the backfill to span sig.ctr..resp.ctr.
            presp.backfill.remove(0);
            assert!(matches!(
                clients[0].handle_pipelined_response(&op, &presp),
                Err(Deviation::BadSignature)
            ));
        }
    }
}
