//! Protocol I client (§4.2): signed root digests + operation counter +
//! broadcast sync-up every `k` operations.
//!
//! Per operation, the server returns `(Q(D), v(Q,D), ctr, j, sig)` where
//! `sig = sigⱼ(h(M(D) ‖ ctr))`. The client
//!
//! 1. computes `M(D)` from the verification object,
//! 2. checks `sig` is a legitimate signature over `h(M(D) ‖ ctr)`,
//! 3. replays the operation to obtain `M(D′)`,
//! 4. updates `lctrᵢ ← lctrᵢ + 1`, `gctrᵢ ← ctr + 1`, and
//! 5. returns `sigᵢ(h(M(D′) ‖ ctr + 1))` for deposit at the server.
//!
//! The deposit (step 5) is an extra, *blocking* message: the server cannot
//! serve the next operation until it holds the new signature. Protocol II
//! removes exactly this cost (experiments E2 and E6 measure it).
//!
//! The per-user state is constant-size (§2.2.5): two counters plus the
//! signing key.

use tcvs_crypto::{Digest, KeyRegistry, Keyring};
use tcvs_merkle::{verify_response, Op, OpResult};
use tcvs_obs::{stage, Event, EventKind, SpanContext, Tracer};

use crate::msg::{ServerResponse, SignedState, SyncShare};
use crate::state::signed_payload;
use crate::types::{Ctr, Deviation, ProtocolConfig};

/// Protocol I client state machine.
pub struct Client1 {
    keyring: Keyring,
    registry: KeyRegistry,
    config: ProtocolConfig,
    /// Total operations this user has performed (`lctrᵢ`).
    lctr: u64,
    /// Last seen global counter + 1 (`gctrᵢ`).
    gctr: Ctr,
    /// Operations since the last sync-up (drives the sync trigger).
    ops_since_sync: u64,
    /// Event tracer (disabled by default; see [`Client1::set_tracer`]).
    tracer: Tracer,
    /// Trace context of the operation currently being verified (set by the
    /// transport layer before `handle_response`); emitted events link to it.
    current_span: Option<SpanContext>,
}

impl Client1 {
    /// Creates a client. `keyring` is this user's signing identity;
    /// `registry` holds every user's authentic public key.
    pub fn new(keyring: Keyring, registry: KeyRegistry, config: ProtocolConfig) -> Client1 {
        Client1 {
            keyring,
            registry,
            config,
            lctr: 0,
            gctr: 0,
            ops_since_sync: 0,
            tracer: Tracer::disabled(),
            current_span: None,
        }
    }

    /// Attaches an event tracer: deposit, sync-up, and verdict events are
    /// emitted with this client's counter values. Events carry logical time
    /// (`gctr`), so traced runs stay deterministic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets (or clears) the wire trace context subsequent verdict events
    /// attach to. The transport handle calls this once per operation with
    /// the same root context it put on the wire, so the client's deposit /
    /// detection spans land in the same trace as the server's handling.
    pub fn set_current_span(&mut self, ctx: Option<SpanContext>) {
        self.current_span = ctx;
    }

    /// This user's id.
    pub fn user(&self) -> tcvs_crypto::UserId {
        self.keyring.user
    }

    /// `lctrᵢ`: operations performed so far.
    pub fn lctr(&self) -> u64 {
        self.lctr
    }

    /// `gctrᵢ`: last seen counter + 1.
    pub fn gctr(&self) -> Ctr {
        self.gctr
    }

    /// Initialization step: the elected user signs `h(M(D₀) ‖ 0)` for
    /// deposit at the server before any operation (protocol line 2).
    pub fn sign_initial(&mut self, root0: &Digest) -> Result<SignedState, Deviation> {
        let payload = signed_payload(root0, 0);
        let sig = self
            .keyring
            .sign(&payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        Ok(SignedState {
            signer: self.keyring.user,
            root: *root0,
            ctr: 0,
            sig,
        })
    }

    /// Processes the server's response to `op`.
    ///
    /// On success returns the authenticated answer plus the signature over
    /// the new state, which the caller must deposit at the server before the
    /// server may serve the next operation.
    pub fn handle_response(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        let out = self.handle_response_inner(op, resp);
        match &out {
            Ok((_, deposit)) => {
                let ctr = deposit.ctr;
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Deposit, self.keyring.user)
                        .detail(format!("ctr={ctr} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::DEPOSIT)))
                });
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Detection, self.keyring.user)
                        .detail(format!("{dev} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
        out
    }

    fn handle_response_inner(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        // Step 2-3: the signature must be present and legitimate for the
        // state the verification object commits to.
        let signed = resp.sig.as_ref().ok_or(Deviation::BadSignature)?;

        // Replay first to learn the content-committed M(D) and M(D');
        // anchor the proof to the root the signature attests.
        let verified = verify_response(
            &signed.root,
            self.config.order,
            &resp.vo,
            op,
            Some(&resp.result),
            None,
        )
        .map_err(Deviation::BadProof)?;

        // The signature must cover exactly (M(D), ctr) as presented.
        if signed.ctr != resp.ctr {
            return Err(Deviation::BadSignature);
        }
        let payload = signed_payload(&signed.root, resp.ctr);
        if !self.registry.verify(signed.signer, &payload, &signed.sig) {
            return Err(Deviation::BadSignature);
        }

        // Step 5: bookkeeping.
        self.lctr += 1;
        self.gctr = resp.ctr + 1;
        self.ops_since_sync += 1;

        // Step 6: sign the new state for deposit.
        let new_payload = signed_payload(&verified.new_root, resp.ctr + 1);
        let sig = self
            .keyring
            .sign(&new_payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        let deposit = SignedState {
            signer: self.keyring.user,
            root: verified.new_root,
            ctr: resp.ctr + 1,
            sig,
        };
        Ok((verified.result, deposit))
    }

    /// True iff this user has completed `k` operations since the last
    /// sync-up and should announce one on the broadcast channel.
    pub fn wants_sync(&self) -> bool {
        self.ops_since_sync >= self.config.k
    }

    /// This user's broadcast share for a sync-up.
    pub fn sync_share(&self) -> SyncShare {
        SyncShare {
            user: self.keyring.user,
            lctr: self.lctr,
            gctr: self.gctr,
            sigma: Digest::ZERO,
            last: None,
        }
    }

    /// Evaluates this user's success predicate over all broadcast shares:
    /// `gctrᵢ == Σₖ lctrₖ`.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        let total: u64 = shares.iter().map(|s| s.lctr).sum();
        let ok = self.gctr == total;
        self.tracer.emit(|| {
            Event::new(self.gctr, EventKind::SyncUp, self.keyring.user)
                .detail(format!(
                    "{} gctr={} total_lctr={total}",
                    if ok { "ok" } else { "fail" },
                    self.gctr
                ))
                .span_opt(self.current_span.map(|c| c.child(stage::SYNC)))
        });
        ok
    }

    /// Records that a sync-up round completed (resets the trigger).
    pub fn sync_done(&mut self) {
        self.ops_since_sync = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_crypto::setup_users;
    use tcvs_merkle::u64_key;

    fn setup(n: u32) -> (Vec<Client1>, HonestServer, ProtocolConfig) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 100,
        };
        let (rings, registry) = setup_users([9u8; 32], n, 6);
        let clients: Vec<Client1> = rings
            .into_iter()
            .map(|r| Client1::new(r, registry.clone(), config))
            .collect();
        let mut server = HonestServer::new(&config);
        // Elect user 0 to sign the initial state.
        let mut clients = clients;
        let root0 = server.core().root_digest();
        let init = clients[0].sign_initial(&root0).unwrap();
        server.deposit_signature(0, init);
        (clients, server, config)
    }

    fn run_op(c: &mut Client1, s: &mut HonestServer, op: Op, round: u64) -> OpResult {
        let resp = s.handle_op(c.user(), &op, round);
        let (result, deposit) = c.handle_response(&op, &resp).unwrap();
        s.deposit_signature(c.user(), deposit);
        result
    }

    #[test]
    fn honest_interleaving_verifies() {
        let (mut clients, mut server, _) = setup(3);
        for i in 0..30u64 {
            let user = (i % 3) as usize;
            let op = if i % 2 == 0 {
                Op::Put(u64_key(i % 7), vec![i as u8])
            } else {
                Op::Get(u64_key((i - 1) % 7))
            };
            run_op(&mut clients[user], &mut server, op, i);
        }
        assert_eq!(clients.iter().map(|c| c.lctr()).sum::<u64>(), 30);
        // Sync: the most recent operator must succeed.
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn sync_trigger_counts_own_ops() {
        let (mut clients, mut server, config) = setup(2);
        for i in 0..config.k {
            run_op(&mut clients[0], &mut server, Op::Get(u64_key(0)), i);
        }
        assert!(clients[0].wants_sync());
        assert!(!clients[1].wants_sync());
        clients[0].sync_done();
        assert!(!clients[0].wants_sync());
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut clients, mut server, _) = setup(2);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(1, &op, 1);
        // Corrupt the signature bytes.
        if let Some(s) = resp.sig.as_mut() {
            s.sig.auth_path[0].0[0] ^= 1;
        }
        assert!(matches!(
            clients[1].handle_response(&op, &resp),
            Err(Deviation::BadSignature)
        ));
    }

    #[test]
    fn missing_signature_rejected() {
        let (mut clients, mut server, _) = setup(1);
        let op = Op::Get(u64_key(0));
        let mut resp = server.handle_op(0, &op, 0);
        resp.sig = None;
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadSignature)
        ));
    }

    #[test]
    fn mismatched_ctr_in_signature_rejected() {
        let (mut clients, mut server, _) = setup(1);
        let op = Op::Get(u64_key(0));
        let mut resp = server.handle_op(0, &op, 0);
        // Server lies about ctr relative to the signed one.
        resp.ctr = 5;
        let err = clients[0].handle_response(&op, &resp).unwrap_err();
        assert!(matches!(
            err,
            Deviation::BadSignature | Deviation::BadProof(_)
        ));
    }

    #[test]
    fn tampered_answer_rejected() {
        let (mut clients, mut server, _) = setup(1);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![7]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(0, &op, 1);
        resp.result = tcvs_merkle::OpResult::Value(Some(vec![66]));
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadProof(_))
        ));
    }

    #[test]
    fn sync_detects_lost_operation() {
        // Simulate a server that dropped an op: counts disagree.
        let (mut clients, mut server, _) = setup(2);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        run_op(
            &mut clients[1],
            &mut server,
            Op::Put(u64_key(2), vec![2]),
            1,
        );
        let mut shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        // Forge: pretend user 0 actually did 3 ops that the server hid.
        shares[0].lctr = 3;
        assert!(!clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn zero_ops_sync_trivially_succeeds() {
        let (clients, _server, _) = setup(3);
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        assert!(clients.iter().all(|c| c.sync_succeeds(&shares)));
    }
}
