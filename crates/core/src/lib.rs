//! # tcvs-core
//!
//! The contribution of *"Trusted CVS"* (ICDE 2006): protocols that let
//! mutually-trusting users detect that an **untrusted server** hosting
//! their shared database has deviated — violated integrity or availability
//! — within a bounded number of operations (Protocols I and II) or bounded
//! time (Protocol III).
//!
//! The crate provides, transport-agnostically:
//!
//! * the honest server state machine and the [`server::ServerApi`] surface,
//! * six paper-motivated **adversaries** ([`adversary`]),
//! * the three **protocol clients** ([`Client1`], [`Client2`], [`Client3`])
//!   plus the two strawmen the paper argues against ([`strawman`]),
//! * the broadcast **sync-up** aggregation ([`sync`]), and
//! * the state-token algebra ([`state`]).
//!
//! The round-based simulator (`tcvs-sim`) and the threaded deployment
//! (`tcvs-net`) drive these state machines; `tcvs-cvs` builds the CVS
//! front end on top.
//!
//! ```
//! use tcvs_core::{Client2, HonestServer, ServerApi, ProtocolConfig};
//! use tcvs_merkle::{Op, u64_key};
//!
//! let config = ProtocolConfig::default();
//! let mut server = HonestServer::new(&config);
//! let root0 = server.core().root_digest();
//! let mut alice = Client2::new(0, &root0, config);
//!
//! let op = Op::Put(u64_key(1), b"int main(){}".to_vec());
//! let resp = server.handle_op(alice.user(), &op, 0);
//! alice.handle_response(&op, &resp).expect("honest server verifies");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod audit;
mod client1;
mod client2;
mod client3;
pub mod evidence;
pub mod fault;
pub mod forensics;
pub mod msg;
pub mod server;
pub mod shard;
pub mod state;
pub mod strawman;
pub mod sync;
mod types;
pub mod wire;

pub use audit::{audit, audit_bytes, AuditCheck, AuditReport, Culprit};
pub use client1::Client1;
pub use client2::Client2;
pub use client3::Client3;
pub use evidence::{
    EvidenceBuilder, EvidenceBundle, EvidenceError, EvidenceKind, GroveEvidence, MetricSample,
    TriggerInfo,
};
pub use fault::{FaultCounts, FaultKind, FaultPlan, FaultRates, StorageFault};
pub use forensics::{diagnose, diagnose_with_timeline, DiagnosisReport, TransitionLog, Verdict};
pub use msg::{
    BatchResponse, PipelinedResponse, ServerResponse, SignedCheckpoint, SignedEpochState,
    SignedState, SyncShare,
};
pub use server::{
    HonestServer, ReadSnapshot, ServerApi, ServerCore, ServerMetrics, ServerSnapshot,
};
pub use shard::ShardRouter;
pub use types::{Ctr, Deviation, Epoch, ProtocolConfig, ProtocolKind};

// Re-export the vocabulary types users of this crate always need.
pub use tcvs_crypto::{Digest, KeyRegistry, Keyring, UserId, NO_USER};
pub use tcvs_merkle::{Op, OpResult};
