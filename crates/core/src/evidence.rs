//! Portable deviation evidence: the [`EvidenceBundle`].
//!
//! The protocols tell a client *that* the server forked its history, and
//! [`crate::forensics::diagnose`] can say *where* — but a verdict that
//! lives only inside the process that noticed it asks a third party to
//! trust the reporting node. A bundle closes that gap: it is a
//! deterministic, self-contained, byte-stable artifact carrying everything
//! an independent verifier (`tcvs-audit`, or the paper's "external
//! mechanism, e.g. law enforcement") needs to re-derive the verdict cold —
//! the triggering deviation, the offending signed deposits, the sync-up
//! shares, the grove epoch, opt-in transition logs, the span-carrying
//! trace tail, the flight-recorder tail, and a metrics snapshot, plus the
//! public keys every embedded signature verifies against.
//!
//! ## Framing and byte stability
//!
//! A bundle is `MAGIC ‖ payload ‖ sha256(MAGIC ‖ payload)`, with the
//! payload in `tcvs_store::enc`'s length-prefixed little-endian encoding
//! (the same vocabulary codecs as the durable log — [`crate::wire`]).
//! Every collection is canonically ordered by [`EvidenceBuilder::build`]
//! (events by logical time, keys/logs by user, shards by index) and only
//! logical timestamps and counters are embedded — never wall-clock
//! values — so the same seeded incident always serializes to identical
//! bytes (the E12 property, extended to incident artifacts). The trailing
//! digest makes any single-byte mutation detectable before field-level
//! parsing even begins; field-level parsing then rejects structural
//! tampering at the exact offending field ([`EvidenceError::Malformed`]).

use std::fmt;

use tcvs_crypto::{sha256, Digest, MssPublicKey, UserId};
use tcvs_obs::{Event, MetricValue, MetricsSnapshot};
use tcvs_store::enc::{DecodeError, Reader, Writer};

use crate::forensics::TransitionLog;
use crate::msg::{SignedCheckpoint, SignedEpochState, SignedState, SyncShare};
use crate::types::{Ctr, Deviation};
use crate::wire;

/// Magic prefix of an encoded bundle.
pub const EVIDENCE_MAGIC: &[u8; 8] = b"TCVSEVB1";
/// Format version of the bundle payload.
const VERSION: u32 = 1;
/// Upper bound on any embedded collection length; a count past this is
/// corruption (or an attempted decompression bomb), not evidence.
const MAX_ITEMS: u32 = 1 << 20;

/// Which detection site assembled the bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvidenceKind {
    /// A protocol driver's per-op or sync-up verdict (Protocol I/II/III).
    ProtocolVerdict,
    /// `verify_batch_response` rejected a batched window.
    BatchVerifyFailure,
    /// `verify_grove_response` rejected a grove-verified read.
    GroveVerifyFailure,
    /// A grove sync-up failed and the deviating shard(s) were localized.
    ShardLocalization,
    /// A bootstrap chunk failed its root-anchored proof (forgery).
    BootstrapForgery,
    /// The simulation oracle observed a deviation.
    OracleDeviation,
}

impl EvidenceKind {
    /// Stable wire tag.
    fn tag(self) -> u8 {
        match self {
            EvidenceKind::ProtocolVerdict => 0,
            EvidenceKind::BatchVerifyFailure => 1,
            EvidenceKind::GroveVerifyFailure => 2,
            EvidenceKind::ShardLocalization => 3,
            EvidenceKind::BootstrapForgery => 4,
            EvidenceKind::OracleDeviation => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<EvidenceKind, DecodeError> {
        Ok(match tag {
            0 => EvidenceKind::ProtocolVerdict,
            1 => EvidenceKind::BatchVerifyFailure,
            2 => EvidenceKind::GroveVerifyFailure,
            3 => EvidenceKind::ShardLocalization,
            4 => EvidenceKind::BootstrapForgery,
            5 => EvidenceKind::OracleDeviation,
            t => return Err(DecodeError::BadTag(t)),
        })
    }

    /// Stable human/machine label.
    pub fn label(self) -> &'static str {
        match self {
            EvidenceKind::ProtocolVerdict => "protocol-verdict",
            EvidenceKind::BatchVerifyFailure => "batch-verify-failure",
            EvidenceKind::GroveVerifyFailure => "grove-verify-failure",
            EvidenceKind::ShardLocalization => "shard-localization",
            EvidenceKind::BootstrapForgery => "bootstrap-forgery",
            EvidenceKind::OracleDeviation => "oracle-deviation",
        }
    }
}

impl fmt::Display for EvidenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The triggering deviation, flattened into stable strings plus the
/// coordinates the reporter knew at capture time. The audit re-derives its
/// own verdict from the raw materials; this records what the reporter
/// *claimed*, so the two can be cross-checked.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TriggerInfo {
    /// Stable deviation class label (e.g. `"sync-failed"`, `"bad-proof"`).
    pub deviation: String,
    /// Free-form detail (the deviation's display rendering).
    pub detail: String,
    /// The user who observed the deviation, if known.
    pub user: Option<UserId>,
    /// The shard the reporter localized, if any.
    pub shard: Option<u32>,
    /// The counter at which the deviation surfaced, if known.
    pub ctr: Option<Ctr>,
}

impl TriggerInfo {
    /// Flattens a [`Deviation`] into its stable label + detail rendering.
    pub fn from_deviation(d: &Deviation) -> TriggerInfo {
        let deviation = match d {
            Deviation::BadSignature => "bad-signature",
            Deviation::BadProof(_) => "bad-proof",
            Deviation::CounterRegression { .. } => "counter-regression",
            Deviation::SyncFailed => "sync-failed",
            Deviation::EpochCheckFailed(_) => "epoch-check-failed",
            Deviation::MissingEpochState { .. } => "missing-epoch-state",
            Deviation::BadEpochSignature(_) => "bad-epoch-signature",
            Deviation::EpochSkew { .. } => "epoch-skew",
            Deviation::KeyExhausted => "key-exhausted",
        };
        TriggerInfo {
            deviation: deviation.into(),
            detail: d.to_string(),
            ..TriggerInfo::default()
        }
    }
}

/// The grove epoch sample the incident happened under: the published
/// per-shard roots/counters and the combined root they commit to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroveEvidence {
    /// The published grove epoch number.
    pub epoch: u64,
    /// Per-shard root digests at the epoch.
    pub shard_roots: Vec<Digest>,
    /// Per-shard operation counters at the epoch.
    pub shard_ctrs: Vec<Ctr>,
    /// Per-shard last operating users at the epoch.
    pub shard_last_users: Vec<UserId>,
    /// The combined grove root the shard roots claim to fold into
    /// (re-derived and checked by the audit).
    pub grove_root: Digest,
}

/// One counter or gauge from the capture-time metrics snapshot.
/// Histograms measure wall-clock time and are deliberately excluded —
/// they would break byte stability across re-runs of the same seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricSample {
    /// A monotonic counter.
    Counter {
        /// Metric name (dot-namespaced, as registered).
        name: String,
        /// Counter value at capture.
        value: u64,
    },
    /// A point-in-time gauge.
    Gauge {
        /// Metric name (dot-namespaced, as registered).
        name: String,
        /// Gauge value at capture.
        value: i64,
    },
}

impl MetricSample {
    /// The sample's metric name.
    pub fn name(&self) -> &str {
        match self {
            MetricSample::Counter { name, .. } | MetricSample::Gauge { name, .. } => name,
        }
    }
}

/// A decoded evidence bundle. Construct with [`EvidenceBuilder`];
/// serialize with [`EvidenceBundle::to_bytes`].
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceBundle {
    /// Which detection site assembled this bundle.
    pub kind: EvidenceKind,
    /// The run's seed (reproduces the incident end to end).
    pub seed: u64,
    /// Protocol label of the detecting client (`"protocol-2"`, …).
    pub protocol: String,
    /// Logical capture time (round / op index — never wall clock).
    pub captured_at: u64,
    /// One-line human description of the incident.
    pub description: String,
    /// The claimed trigger (cross-checked by the audit, not trusted).
    pub trigger: TriggerInfo,
    /// Per-shard initial state tokens (one entry for unsharded runs).
    pub initials: Vec<Digest>,
    /// The grove epoch sample, when the incident involved a grove.
    pub grove: Option<GroveEvidence>,
    /// Shards the reporter claims deviated (audit recomputes its own set).
    pub claimed_deviating_shards: Vec<u32>,
    /// Broadcast sync-up shares, grouped per shard (`shares[s]` pairs with
    /// `initials[s]`).
    pub shares: Vec<Vec<SyncShare>>,
    /// Offending / relevant Protocol I signed deposits.
    pub signed_states: Vec<SignedState>,
    /// Offending / relevant Protocol III epoch states.
    pub epoch_states: Vec<SignedEpochState>,
    /// Offending / relevant Protocol III audited checkpoints.
    pub checkpoints: Vec<SignedCheckpoint>,
    /// Offending verification objects, in their canonical encoding (their
    /// internal digests re-verify on decode).
    pub vos: Vec<Vec<u8>>,
    /// Public keys of every user whose signature appears above. Embedding
    /// them makes the bundle self-verifying *relative to this key set*; a
    /// verifier with an out-of-band PKI can additionally check the set.
    pub keys: Vec<(UserId, MssPublicKey)>,
    /// Opt-in transition logs: `(shard, [(user, log)])`, the raw material
    /// `diagnose` needs to name the first bad counter.
    pub transition_logs: Vec<(u32, Vec<(UserId, TransitionLog)>)>,
    /// The relevant span-carrying trace events (canonically sorted).
    pub events: Vec<Event>,
    /// The flight-recorder tail at capture (already oldest-first).
    pub flight_tail: Vec<Event>,
    /// Counters and gauges at capture (name-sorted; no histograms).
    pub metrics: Vec<MetricSample>,
}

/// Why a bundle was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvidenceError {
    /// The artifact does not start with [`EVIDENCE_MAGIC`].
    BadMagic,
    /// The payload version is newer than this verifier understands.
    UnsupportedVersion(u32),
    /// The trailing sha256 does not match `MAGIC ‖ payload` — the artifact
    /// was truncated or mutated.
    IntegrityDigest,
    /// A field failed to decode; `field` names the exact offender.
    Malformed {
        /// Dotted path of the field that failed (e.g. `signed_states[2].sig`).
        field: String,
        /// The underlying decode failure.
        err: DecodeError,
    },
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvidenceError::BadMagic => write!(f, "not an evidence bundle (bad magic)"),
            EvidenceError::UnsupportedVersion(v) => write!(f, "unsupported bundle version {v}"),
            EvidenceError::IntegrityDigest => {
                write!(f, "integrity digest mismatch (truncated or tampered)")
            }
            EvidenceError::Malformed { field, err } => {
                write!(f, "malformed field '{field}': {err:?}")
            }
        }
    }
}

impl std::error::Error for EvidenceError {}

/// Annotates a decode result with the field path it belongs to.
fn fld<T>(field: impl Into<String>, r: Result<T, DecodeError>) -> Result<T, EvidenceError> {
    r.map_err(|err| EvidenceError::Malformed {
        field: field.into(),
        err,
    })
}

/// Reads a collection count, bounding it so a corrupt length prefix cannot
/// request an absurd allocation.
fn counted(field: &str, r: &mut Reader) -> Result<usize, EvidenceError> {
    let n = fld(field, r.u32())?;
    if n > MAX_ITEMS {
        return Err(EvidenceError::Malformed {
            field: field.into(),
            err: DecodeError::Invalid("count too large"),
        });
    }
    Ok(n as usize)
}

impl EvidenceBundle {
    /// Serializes the bundle: `MAGIC ‖ payload ‖ sha256(MAGIC ‖ payload)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(EVIDENCE_MAGIC);
        w.u32(VERSION);
        w.u8(self.kind.tag());
        w.u64(self.seed);
        w.string(&self.protocol);
        w.u64(self.captured_at);
        w.string(&self.description);

        w.string(&self.trigger.deviation);
        w.string(&self.trigger.detail);
        put_opt_u32(&mut w, self.trigger.user);
        put_opt_u32(&mut w, self.trigger.shard);
        put_opt_u64(&mut w, self.trigger.ctr);

        w.u32(self.initials.len() as u32);
        for d in &self.initials {
            wire::put_digest(&mut w, d);
        }
        match &self.grove {
            None => w.u8(0),
            Some(g) => {
                w.u8(1);
                w.u64(g.epoch);
                w.u32(g.shard_roots.len() as u32);
                for d in &g.shard_roots {
                    wire::put_digest(&mut w, d);
                }
                w.u32(g.shard_ctrs.len() as u32);
                for c in &g.shard_ctrs {
                    w.u64(*c);
                }
                w.u32(g.shard_last_users.len() as u32);
                for u in &g.shard_last_users {
                    w.u32(*u);
                }
                wire::put_digest(&mut w, &g.grove_root);
            }
        }
        w.u32(self.claimed_deviating_shards.len() as u32);
        for s in &self.claimed_deviating_shards {
            w.u32(*s);
        }
        w.u32(self.shares.len() as u32);
        for shard in &self.shares {
            w.u32(shard.len() as u32);
            for s in shard {
                wire::put_sync_share(&mut w, s);
            }
        }
        w.u32(self.signed_states.len() as u32);
        for s in &self.signed_states {
            wire::put_signed_state(&mut w, s);
        }
        w.u32(self.epoch_states.len() as u32);
        for s in &self.epoch_states {
            wire::put_epoch_state(&mut w, s);
        }
        w.u32(self.checkpoints.len() as u32);
        for c in &self.checkpoints {
            wire::put_audit_checkpoint(&mut w, c);
        }
        w.u32(self.vos.len() as u32);
        for v in &self.vos {
            w.bytes(v);
        }
        w.u32(self.keys.len() as u32);
        for (u, pk) in &self.keys {
            w.u32(*u);
            wire::put_mss_public_key(&mut w, pk);
        }
        w.u32(self.transition_logs.len() as u32);
        for (shard, users) in &self.transition_logs {
            w.u32(*shard);
            w.u32(users.len() as u32);
            for (u, log) in users {
                w.u32(*u);
                w.u32(log.len() as u32);
                for t in log.entries() {
                    wire::put_transition(&mut w, t);
                }
            }
        }
        w.u32(self.events.len() as u32);
        for ev in &self.events {
            wire::put_event(&mut w, ev);
        }
        w.u32(self.flight_tail.len() as u32);
        for ev in &self.flight_tail {
            wire::put_event(&mut w, ev);
        }
        w.u32(self.metrics.len() as u32);
        for m in &self.metrics {
            match m {
                MetricSample::Counter { name, value } => {
                    w.u8(0);
                    w.string(name);
                    w.u64(*value);
                }
                MetricSample::Gauge { name, value } => {
                    w.u8(1);
                    w.string(name);
                    w.u64(*value as u64);
                }
            }
        }

        let mut bytes = w.into_bytes();
        let digest = sha256(&bytes);
        bytes.extend_from_slice(digest.as_bytes());
        bytes
    }

    /// The bundle's integrity digest: `sha256(MAGIC ‖ payload)` — the last
    /// 32 bytes of [`EvidenceBundle::to_bytes`], usable as a stable
    /// incident identifier.
    pub fn integrity_digest(&self) -> Digest {
        let bytes = self.to_bytes();
        Digest::from_slice(&bytes[bytes.len() - Digest::LEN..]).expect("digest suffix")
    }

    /// Decodes and integrity-checks a bundle. Tampering is rejected at the
    /// outermost layer it corrupts: the magic, the trailing digest, or the
    /// exact malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<EvidenceBundle, EvidenceError> {
        if bytes.len() < EVIDENCE_MAGIC.len() + Digest::LEN
            || &bytes[..EVIDENCE_MAGIC.len()] != EVIDENCE_MAGIC
        {
            return Err(EvidenceError::BadMagic);
        }
        let body_len = bytes.len() - Digest::LEN;
        let claimed = Digest::from_slice(&bytes[body_len..]).expect("length checked");
        if sha256(&bytes[..body_len]) != claimed {
            return Err(EvidenceError::IntegrityDigest);
        }
        let mut r = Reader::new(&bytes[EVIDENCE_MAGIC.len()..body_len]);
        let version = fld("version", r.u32())?;
        if version != VERSION {
            return Err(EvidenceError::UnsupportedVersion(version));
        }
        let kind = fld("kind", r.u8().and_then(EvidenceKind::from_tag))?;
        let seed = fld("seed", r.u64())?;
        let protocol = fld("protocol", r.string())?;
        let captured_at = fld("captured_at", r.u64())?;
        let description = fld("description", r.string())?;

        let trigger = TriggerInfo {
            deviation: fld("trigger.deviation", r.string())?,
            detail: fld("trigger.detail", r.string())?,
            user: get_opt_u32("trigger.user", &mut r)?,
            shard: get_opt_u32("trigger.shard", &mut r)?,
            ctr: get_opt_u64("trigger.ctr", &mut r)?,
        };

        let n = counted("initials", &mut r)?;
        let mut initials = Vec::with_capacity(n);
        for i in 0..n {
            initials.push(fld(format!("initials[{i}]"), wire::get_digest(&mut r))?);
        }
        let grove = match fld("grove", r.u8())? {
            0 => None,
            1 => {
                let epoch = fld("grove.epoch", r.u64())?;
                let n = counted("grove.shard_roots", &mut r)?;
                let mut shard_roots = Vec::with_capacity(n);
                for i in 0..n {
                    shard_roots.push(fld(
                        format!("grove.shard_roots[{i}]"),
                        wire::get_digest(&mut r),
                    )?);
                }
                let n = counted("grove.shard_ctrs", &mut r)?;
                let mut shard_ctrs = Vec::with_capacity(n);
                for i in 0..n {
                    shard_ctrs.push(fld(format!("grove.shard_ctrs[{i}]"), r.u64())?);
                }
                let n = counted("grove.shard_last_users", &mut r)?;
                let mut shard_last_users = Vec::with_capacity(n);
                for i in 0..n {
                    shard_last_users.push(fld(format!("grove.shard_last_users[{i}]"), r.u32())?);
                }
                let grove_root = fld("grove.grove_root", wire::get_digest(&mut r))?;
                Some(GroveEvidence {
                    epoch,
                    shard_roots,
                    shard_ctrs,
                    shard_last_users,
                    grove_root,
                })
            }
            t => {
                return Err(EvidenceError::Malformed {
                    field: "grove".into(),
                    err: DecodeError::BadTag(t),
                })
            }
        };
        let n = counted("claimed_deviating_shards", &mut r)?;
        let mut claimed_deviating_shards = Vec::with_capacity(n);
        for i in 0..n {
            claimed_deviating_shards.push(fld(format!("claimed_deviating_shards[{i}]"), r.u32())?);
        }
        let n = counted("shares", &mut r)?;
        let mut shares = Vec::with_capacity(n);
        for s in 0..n {
            let m = counted(&format!("shares[{s}]"), &mut r)?;
            let mut shard = Vec::with_capacity(m);
            for i in 0..m {
                shard.push(fld(
                    format!("shares[{s}][{i}]"),
                    wire::get_sync_share(&mut r),
                )?);
            }
            shares.push(shard);
        }
        let n = counted("signed_states", &mut r)?;
        let mut signed_states = Vec::with_capacity(n);
        for i in 0..n {
            signed_states.push(fld(
                format!("signed_states[{i}]"),
                wire::get_signed_state(&mut r),
            )?);
        }
        let n = counted("epoch_states", &mut r)?;
        let mut epoch_states = Vec::with_capacity(n);
        for i in 0..n {
            epoch_states.push(fld(
                format!("epoch_states[{i}]"),
                wire::get_epoch_state(&mut r),
            )?);
        }
        let n = counted("checkpoints", &mut r)?;
        let mut checkpoints = Vec::with_capacity(n);
        for i in 0..n {
            checkpoints.push(fld(
                format!("checkpoints[{i}]"),
                wire::get_audit_checkpoint(&mut r),
            )?);
        }
        let n = counted("vos", &mut r)?;
        let mut vos = Vec::with_capacity(n);
        for i in 0..n {
            vos.push(fld(format!("vos[{i}]"), r.bytes())?.to_vec());
        }
        let n = counted("keys", &mut r)?;
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            let u = fld(format!("keys[{i}].user"), r.u32())?;
            let pk = fld(format!("keys[{i}].key"), wire::get_mss_public_key(&mut r))?;
            keys.push((u, pk));
        }
        let n = counted("transition_logs", &mut r)?;
        let mut transition_logs = Vec::with_capacity(n);
        for s in 0..n {
            let shard = fld(format!("transition_logs[{s}].shard"), r.u32())?;
            let m = counted(&format!("transition_logs[{s}].users"), &mut r)?;
            let mut users = Vec::with_capacity(m);
            for j in 0..m {
                let u = fld(format!("transition_logs[{s}].users[{j}].user"), r.u32())?;
                let len = counted(&format!("transition_logs[{s}].users[{j}].log"), &mut r)?;
                let mut log = TransitionLog::new();
                for i in 0..len {
                    log.record(fld(
                        format!("transition_logs[{s}].users[{j}].log[{i}]"),
                        wire::get_transition(&mut r),
                    )?);
                }
                users.push((u, log));
            }
            transition_logs.push((shard, users));
        }
        let n = counted("events", &mut r)?;
        let mut events = Vec::with_capacity(n);
        for i in 0..n {
            events.push(fld(format!("events[{i}]"), wire::get_event(&mut r))?);
        }
        let n = counted("flight_tail", &mut r)?;
        let mut flight_tail = Vec::with_capacity(n);
        for i in 0..n {
            flight_tail.push(fld(format!("flight_tail[{i}]"), wire::get_event(&mut r))?);
        }
        let n = counted("metrics", &mut r)?;
        let mut metrics = Vec::with_capacity(n);
        for i in 0..n {
            let sample = match fld(format!("metrics[{i}].kind"), r.u8())? {
                0 => MetricSample::Counter {
                    name: fld(format!("metrics[{i}].name"), r.string())?,
                    value: fld(format!("metrics[{i}].value"), r.u64())?,
                },
                1 => MetricSample::Gauge {
                    name: fld(format!("metrics[{i}].name"), r.string())?,
                    value: fld(format!("metrics[{i}].value"), r.u64())? as i64,
                },
                t => {
                    return Err(EvidenceError::Malformed {
                        field: format!("metrics[{i}].kind"),
                        err: DecodeError::BadTag(t),
                    })
                }
            };
            metrics.push(sample);
        }
        fld("trailing", r.finish())?;
        Ok(EvidenceBundle {
            kind,
            seed,
            protocol,
            captured_at,
            description,
            trigger,
            initials,
            grove,
            claimed_deviating_shards,
            shares,
            signed_states,
            epoch_states,
            checkpoints,
            vos,
            keys,
            transition_logs,
            events,
            flight_tail,
            metrics,
        })
    }
}

fn put_opt_u32(w: &mut Writer, v: Option<u32>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u32(v);
        }
    }
}

fn get_opt_u32(field: &str, r: &mut Reader) -> Result<Option<u32>, EvidenceError> {
    match fld(field, r.u8())? {
        0 => Ok(None),
        1 => Ok(Some(fld(field, r.u32())?)),
        t => Err(EvidenceError::Malformed {
            field: field.into(),
            err: DecodeError::BadTag(t),
        }),
    }
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
    }
}

fn get_opt_u64(field: &str, r: &mut Reader) -> Result<Option<u64>, EvidenceError> {
    match fld(field, r.u8())? {
        0 => Ok(None),
        1 => Ok(Some(fld(field, r.u64())?)),
        t => Err(EvidenceError::Malformed {
            field: field.into(),
            err: DecodeError::BadTag(t),
        }),
    }
}

/// Assembles an [`EvidenceBundle`] at a detection site, enforcing the
/// canonical orderings byte stability depends on: [`EvidenceBuilder::build`]
/// sorts trace events by (logical time, actor, kind, detail, span), keys
/// and per-shard logs by user, shard groups by index, and metric samples by
/// name — so capture-order nondeterminism (threaded shards racing) never
/// leaks into the artifact.
#[derive(Debug, Default)]
pub struct EvidenceBuilder {
    bundle: Option<EvidenceBundle>,
}

impl EvidenceBuilder {
    /// Starts a bundle for a detection site.
    pub fn new(kind: EvidenceKind, seed: u64, protocol: &str) -> EvidenceBuilder {
        EvidenceBuilder {
            bundle: Some(EvidenceBundle {
                kind,
                seed,
                protocol: protocol.into(),
                captured_at: 0,
                description: String::new(),
                trigger: TriggerInfo::default(),
                initials: Vec::new(),
                grove: None,
                claimed_deviating_shards: Vec::new(),
                shares: Vec::new(),
                signed_states: Vec::new(),
                epoch_states: Vec::new(),
                checkpoints: Vec::new(),
                vos: Vec::new(),
                keys: Vec::new(),
                transition_logs: Vec::new(),
                events: Vec::new(),
                flight_tail: Vec::new(),
                metrics: Vec::new(),
            }),
        }
    }

    fn b(&mut self) -> &mut EvidenceBundle {
        self.bundle.as_mut().expect("builder not consumed")
    }

    /// Sets the logical capture time.
    pub fn captured_at(mut self, t: u64) -> Self {
        self.b().captured_at = t;
        self
    }

    /// Sets the one-line incident description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.b().description = d.into();
        self
    }

    /// Sets the claimed trigger.
    pub fn trigger(mut self, t: TriggerInfo) -> Self {
        self.b().trigger = t;
        self
    }

    /// Sets the trigger from a protocol [`Deviation`].
    pub fn deviation(self, d: &Deviation) -> Self {
        let t = TriggerInfo::from_deviation(d);
        self.trigger(t)
    }

    /// Sets the per-shard initial state tokens.
    pub fn initials(mut self, initials: &[Digest]) -> Self {
        self.b().initials = initials.to_vec();
        self
    }

    /// Attaches the grove epoch sample.
    pub fn grove(mut self, g: GroveEvidence) -> Self {
        self.b().grove = Some(g);
        self
    }

    /// Records the shards the reporter localized.
    pub fn claimed_shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.b().claimed_deviating_shards = shards.into_iter().map(|s| s as u32).collect();
        self
    }

    /// Attaches the per-shard broadcast sync-up shares.
    pub fn shares(mut self, shares: Vec<Vec<SyncShare>>) -> Self {
        self.b().shares = shares;
        self
    }

    /// Adds an offending / relevant signed deposit.
    pub fn signed_state(mut self, s: SignedState) -> Self {
        self.b().signed_states.push(s);
        self
    }

    /// Adds offending / relevant epoch states.
    pub fn epoch_states(mut self, states: impl IntoIterator<Item = SignedEpochState>) -> Self {
        self.b().epoch_states.extend(states);
        self
    }

    /// Adds offending / relevant audited checkpoints.
    pub fn checkpoints(mut self, cps: impl IntoIterator<Item = SignedCheckpoint>) -> Self {
        self.b().checkpoints.extend(cps);
        self
    }

    /// Adds an offending verification object (canonical encoding).
    pub fn vo(mut self, bytes: Vec<u8>) -> Self {
        self.b().vos.push(bytes);
        self
    }

    /// Registers one user's public key.
    pub fn key(mut self, user: UserId, pk: MssPublicKey) -> Self {
        self.b().keys.push((user, pk));
        self
    }

    /// Registers every key in a [`tcvs_crypto::KeyRegistry`].
    pub fn keys_from(mut self, registry: &tcvs_crypto::KeyRegistry) -> Self {
        let b = self.b();
        for u in registry.users() {
            if let Some(pk) = registry.lookup(u) {
                b.keys.push((u, *pk));
            }
        }
        self
    }

    /// Attaches one user's opt-in transition log for a shard.
    pub fn transition_log(mut self, shard: usize, user: UserId, log: &TransitionLog) -> Self {
        let b = self.b();
        let shard = shard as u32;
        match b.transition_logs.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, users)) => users.push((user, log.clone())),
            None => b.transition_logs.push((shard, vec![(user, log.clone())])),
        }
        self
    }

    /// Attaches the relevant trace events (sorted canonically at build).
    pub fn events(mut self, events: impl IntoIterator<Item = Event>) -> Self {
        self.b().events.extend(events);
        self
    }

    /// Attaches the flight-recorder tail (kept in recorder order).
    pub fn flight_tail(mut self, events: impl IntoIterator<Item = Event>) -> Self {
        self.b().flight_tail.extend(events);
        self
    }

    /// Attaches the counters and gauges of a metrics snapshot. Histograms
    /// (wall-clock timings) are dropped to keep the artifact byte-stable.
    pub fn metrics(mut self, snapshot: &MetricsSnapshot) -> Self {
        let b = self.b();
        for e in &snapshot.entries {
            match e.value {
                MetricValue::Counter(v) => b.metrics.push(MetricSample::Counter {
                    name: e.name.clone(),
                    value: v,
                }),
                MetricValue::Gauge(v) => b.metrics.push(MetricSample::Gauge {
                    name: e.name.clone(),
                    value: v,
                }),
                MetricValue::Histogram { .. } => {}
            }
        }
        self
    }

    /// Finalizes the bundle, applying the canonical orderings.
    pub fn build(mut self) -> EvidenceBundle {
        let mut b = self.bundle.take().expect("builder not consumed");
        b.claimed_deviating_shards.sort_unstable();
        b.claimed_deviating_shards.dedup();
        b.keys.sort_by_key(|(u, _)| *u);
        b.keys.dedup_by_key(|(u, _)| *u);
        b.transition_logs.sort_by_key(|(s, _)| *s);
        for (_, users) in &mut b.transition_logs {
            users.sort_by_key(|(u, _)| *u);
        }
        b.events.sort_by(|a, e| {
            let ka = (a.t, a.user, wire::event_kind_tag(a.kind));
            let ke = (e.t, e.user, wire::event_kind_tag(e.kind));
            ka.cmp(&ke)
                .then_with(|| a.detail.cmp(&e.detail))
                .then_with(|| span_key(a).cmp(&span_key(e)))
        });
        b.metrics.sort_by(|a, e| a.name().cmp(e.name()));
        b
    }
}

fn span_key(ev: &Event) -> (u64, u64, u64) {
    match &ev.span {
        None => (0, 0, 0),
        Some(ctx) => (ctx.trace.0, ctx.span.0, ctx.parent.map_or(0, |p| p.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::setup_users;
    use tcvs_obs::{EventKind, MetricsRegistry};

    use crate::state::signed_payload;

    fn sample_bundle() -> EvidenceBundle {
        let (mut rings, registry) = setup_users([7; 32], 2, 3);
        let root = sha256(b"root");
        let payload = signed_payload(&root, 5);
        let sig = rings[0].sign(&payload).unwrap();
        let registry_metrics = MetricsRegistry::new();
        registry_metrics.counter("net.shard.0.routed").add(9);
        registry_metrics.gauge("net.depth").set(-3);
        registry_metrics.histogram("net.op_micros").observe(12);
        let mut log = TransitionLog::new();
        log.record(crate::forensics::LoggedTransition {
            old_token: sha256(b"a"),
            new_token: sha256(b"b"),
            ctr: 1,
            user: 0,
        });
        EvidenceBuilder::new(EvidenceKind::ShardLocalization, 42, "protocol-2")
            .captured_at(17)
            .description("1-of-4 shard fork")
            .deviation(&Deviation::SyncFailed)
            .initials(&[sha256(b"i0"), sha256(b"i1")])
            .grove(GroveEvidence {
                epoch: 3,
                shard_roots: vec![sha256(b"r0"), sha256(b"r1")],
                shard_ctrs: vec![10, 12],
                shard_last_users: vec![0, 1],
                grove_root: sha256(b"g"),
            })
            .claimed_shards([1usize])
            .shares(vec![
                vec![SyncShare {
                    user: 0,
                    lctr: 1,
                    gctr: 1,
                    sigma: sha256(b"s"),
                    last: Some(sha256(b"l")),
                }],
                vec![],
            ])
            .signed_state(SignedState {
                signer: 0,
                root,
                ctr: 5,
                sig,
            })
            .keys_from(&registry)
            .transition_log(1, 0, &log)
            .events([
                Event::new(9, EventKind::Detection, 1).detail("late"),
                Event::new(2, EventKind::OpServed, 0).detail("early"),
            ])
            .flight_tail([Event::new(1, EventKind::Deposit, 0)])
            .metrics(&registry_metrics.snapshot())
            .build()
    }

    #[test]
    fn round_trips_byte_identically() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        let back = EvidenceBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "encode∘decode is identity");
        assert_eq!(back.kind, EvidenceKind::ShardLocalization);
        assert_eq!(back.seed, 42);
        assert_eq!(back.claimed_deviating_shards, vec![1]);
        assert_eq!(back.initials.len(), 2);
        assert_eq!(back.signed_states.len(), 1);
        assert_eq!(back.keys.len(), 2);
        // Events were canonically re-ordered by logical time.
        assert_eq!(back.events[0].detail, "early");
        // Histograms were dropped; counters and gauges kept.
        assert!(back.metrics.iter().all(|m| m.name() != "net.op_micros"));
        assert_eq!(back.metrics.len(), 2);
    }

    #[test]
    fn same_inputs_build_identical_bytes() {
        assert_eq!(sample_bundle().to_bytes(), sample_bundle().to_bytes());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample_bundle().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                EvidenceBundle::from_bytes(&bad).is_err(),
                "flip at byte {i} of {} was accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let bytes = sample_bundle().to_bytes();
        assert_eq!(
            EvidenceBundle::from_bytes(&bytes[..bytes.len() - 1]),
            Err(EvidenceError::IntegrityDigest)
        );
        assert_eq!(
            EvidenceBundle::from_bytes(b"NOTABNDL"),
            Err(EvidenceError::BadMagic)
        );
        assert_eq!(
            EvidenceBundle::from_bytes(b""),
            Err(EvidenceError::BadMagic)
        );
    }

    #[test]
    fn malformed_field_is_named_exactly() {
        // Re-frame a corrupted payload with a *valid* trailing digest so the
        // failure surfaces at field level, not at the integrity layer: truncate
        // mid-payload and re-seal.
        let b = sample_bundle();
        let bytes = b.to_bytes();
        let cut = bytes.len() - Digest::LEN - 40;
        let mut forged = bytes[..cut].to_vec();
        let digest = sha256(&forged);
        forged.extend_from_slice(digest.as_bytes());
        let err = EvidenceBundle::from_bytes(&forged).unwrap_err();
        match err {
            EvidenceError::Malformed { field, .. } => {
                assert!(!field.is_empty(), "field path is present");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn integrity_digest_is_stable_and_suffix() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        assert_eq!(
            b.integrity_digest().as_bytes(),
            &bytes[bytes.len() - Digest::LEN..]
        );
    }
}
