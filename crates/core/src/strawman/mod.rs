//! Strawman protocols the paper uses to motivate its design.
//!
//! * [`token_ring`] — §2.2.3: users operate in a fixed round-robin order,
//!   writing signed null records when idle. Detects deviation immediately
//!   but destroys workload preservation: a user wanting two back-to-back
//!   operations waits for all other users' turns (experiment E7).
//! * [`naive_xor`] — §4.3's "first attempt": XOR accumulators over
//!   *untagged* state tokens `h(M(D) ‖ ctr)`. Defeated by the replay
//!   scenario of Fig. 3, which Protocol II's user tags fix (experiment E4).

pub mod naive_xor;
pub mod token_ring;

pub use naive_xor::NaiveXorClient;
pub use token_ring::{null_op, TokenRingClient};
