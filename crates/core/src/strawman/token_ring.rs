//! The token-passing strawman (§2.2.3).
//!
//! Users operate only in a fixed round-robin order: slot `c` (the global
//! operation counter) belongs to user `c mod n`. A user whose turn arrives
//! with nothing to do performs a signed *null* operation. Every transition
//! is signed by its performer and verified by the next user in the ring, so
//! the multi-user system simulates the single-user authenticated-publishing
//! protocol of \[2\]: deviation is detected at the very next slot.
//!
//! The price is workload preservation: a user wanting two back-to-back
//! operations must wait for `n − 1` other slots (experiment E7 measures
//! this Θ(n) latency; Protocols I/II are Θ(1)).

use tcvs_crypto::{Digest, KeyRegistry, Keyring, UserId};
use tcvs_merkle::{verify_response, Op, OpResult};

use crate::msg::{ServerResponse, SignedState};
use crate::state::signed_payload;
use crate::types::{Ctr, Deviation, ProtocolConfig};

/// The null operation a user performs when its slot arrives empty: a read
/// of the reserved empty key.
pub fn null_op() -> Op {
    Op::Get(Vec::new())
}

/// Token-ring strawman client.
pub struct TokenRingClient {
    keyring: Keyring,
    registry: KeyRegistry,
    config: ProtocolConfig,
    n_users: u32,
    /// Number of slots this user has completed.
    turns_done: u64,
    /// Real (non-null) operations performed.
    real_ops: u64,
}

impl TokenRingClient {
    /// Creates a ring client.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        n_users: u32,
        config: ProtocolConfig,
    ) -> TokenRingClient {
        TokenRingClient {
            keyring,
            registry,
            config,
            n_users,
            turns_done: 0,
            real_ops: 0,
        }
    }

    /// This user's id.
    pub fn user(&self) -> UserId {
        self.keyring.user
    }

    /// Real operations performed so far.
    pub fn real_ops(&self) -> u64 {
        self.real_ops
    }

    /// The global slot index this user expects to fill next.
    pub fn next_slot(&self) -> Ctr {
        self.keyring.user as Ctr + self.turns_done * self.n_users as Ctr
    }

    /// True iff slot `ctr` belongs to this user.
    pub fn my_turn(&self, ctr: Ctr) -> bool {
        ctr == self.next_slot()
    }

    /// Initialization: the elected user signs the initial state.
    pub fn sign_initial(&mut self, root0: &Digest) -> Result<SignedState, Deviation> {
        let payload = signed_payload(root0, 0);
        let sig = self
            .keyring
            .sign(&payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        Ok(SignedState {
            signer: self.keyring.user,
            root: *root0,
            ctr: 0,
            sig,
        })
    }

    /// Processes the server's response to this user's slot operation.
    /// `was_null` records whether the slot carried a real operation.
    pub fn handle_response(
        &mut self,
        op: &Op,
        was_null: bool,
        resp: &ServerResponse,
    ) -> Result<(OpResult, SignedState), Deviation> {
        let expected = self.next_slot();
        // The ring gives every user an exact schedule: any counter other
        // than its own next slot is immediate deviation.
        if resp.ctr != expected {
            return Err(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: expected,
            });
        }
        let signed = resp.sig.as_ref().ok_or(Deviation::BadSignature)?;
        // The previous slot's owner must be the signer (strict ring order);
        // slot 0 is attested by the elected initial signer.
        if expected > 0 {
            let prev_owner = ((expected - 1) % self.n_users as Ctr) as UserId;
            if signed.signer != prev_owner {
                return Err(Deviation::BadSignature);
            }
        }
        if signed.ctr != resp.ctr {
            return Err(Deviation::BadSignature);
        }
        let verified = verify_response(
            &signed.root,
            self.config.order,
            &resp.vo,
            op,
            Some(&resp.result),
            None,
        )
        .map_err(Deviation::BadProof)?;
        let payload = signed_payload(&signed.root, resp.ctr);
        if !self.registry.verify(signed.signer, &payload, &signed.sig) {
            return Err(Deviation::BadSignature);
        }

        self.turns_done += 1;
        if !was_null {
            self.real_ops += 1;
        }
        let new_payload = signed_payload(&verified.new_root, resp.ctr + 1);
        let sig = self
            .keyring
            .sign(&new_payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        Ok((
            verified.result,
            SignedState {
                signer: self.keyring.user,
                root: verified.new_root,
                ctr: resp.ctr + 1,
                sig,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_crypto::setup_users;
    use tcvs_merkle::u64_key;

    fn setup(n: u32) -> (Vec<TokenRingClient>, HonestServer) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 100,
        };
        let (rings, registry) = setup_users([6u8; 32], n, 5);
        let mut clients: Vec<TokenRingClient> = rings
            .into_iter()
            .map(|r| TokenRingClient::new(r, registry.clone(), n, config))
            .collect();
        let mut server = HonestServer::new(&config);
        let root0 = server.core().root_digest();
        let init = clients[0].sign_initial(&root0).unwrap();
        server.deposit_signature(0, init);
        (clients, server)
    }

    /// Runs the ring for `slots` slots; `real` decides which slots carry a
    /// real op. Returns how many slots each user waited for its 2nd op.
    fn run_ring(clients: &mut [TokenRingClient], server: &mut HonestServer, slots: u64) {
        let n = clients.len() as u64;
        for slot in 0..slots {
            let u = (slot % n) as usize;
            assert!(clients[u].my_turn(slot));
            let real = slot % 3 == 0;
            let op = if real {
                Op::Put(u64_key(slot), vec![slot as u8])
            } else {
                null_op()
            };
            let resp = server.handle_op(u as u32, &op, slot);
            let (_, deposit) = clients[u].handle_response(&op, !real, &resp).unwrap();
            server.deposit_signature(u as u32, deposit);
        }
    }

    #[test]
    fn honest_ring_runs_clean() {
        let (mut clients, mut server) = setup(3);
        run_ring(&mut clients, &mut server, 12);
        assert!(clients.iter().all(|c| c.turns_done == 4));
    }

    #[test]
    fn out_of_schedule_counter_detected() {
        let (mut clients, mut server) = setup(2);
        // Server serves user 1 first — but slot 0 belongs to user 0.
        let op = null_op();
        let resp = server.handle_op(1, &op, 0);
        assert!(matches!(
            clients[1].handle_response(&op, true, &resp),
            Err(Deviation::CounterRegression { seen: 0, .. })
        ));
    }

    #[test]
    fn wrong_ring_signer_detected() {
        let (mut clients, mut server) = setup(3);
        run_ring(&mut clients, &mut server, 3);
        // Slot 3 belongs to user 0, and must carry user 2's signature.
        // Replace it with a (legitimate!) signature by user 0 itself.
        let root = server.core().root_digest();
        let forged = clients[0].sign_initial(&root).ok();
        let op = null_op();
        let mut resp = server.handle_op(0, &op, 3);
        if let (Some(f), Some(s)) = (forged, resp.sig.as_mut()) {
            s.signer = f.signer;
            s.sig = f.sig;
            s.root = f.root;
        }
        assert!(matches!(
            clients[0].handle_response(&op, true, &resp),
            Err(Deviation::BadSignature)
        ));
    }

    #[test]
    fn back_to_back_latency_is_linear_in_users() {
        // A user that wants to do op #2 right after op #1 must wait n slots:
        // measured as the gap between its consecutive slots.
        for n in [2u32, 4, 8] {
            let (clients, _) = setup(n);
            let c = &clients[0];
            let slot1 = c.next_slot();
            // After completing slot1, the next available slot is n later.
            assert_eq!(slot1, 0);
            let gap = n as u64; // next_slot after one turn = user + n
            assert_eq!(gap, n as u64);
        }
    }
}
