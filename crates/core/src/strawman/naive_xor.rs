//! The untagged-XOR strawman (§4.3, "a first attempt").
//!
//! Identical to Protocol II except the state tokens are `h(M(D) ‖ ctr)` —
//! no user tag. All states that occur twice cancel at sync-up, so the check
//! only sees the first and last state. Fig. 3 shows why this is unsound:
//! by replaying a state to multiple users the server can give intermediate
//! nodes even degree without the graph being a path, violating availability
//! undetected. Experiment E4 reproduces exactly that.

use tcvs_crypto::{Digest, UserId};
use tcvs_merkle::{replay_unanchored, Op, OpResult};

use crate::msg::{ServerResponse, SyncShare};
use crate::state::untagged_token;
use crate::types::{Ctr, Deviation, ProtocolConfig};

/// Client for the naive (untagged) XOR protocol.
pub struct NaiveXorClient {
    user: UserId,
    config: ProtocolConfig,
    initial: Digest,
    sigma: Digest,
    last: Option<Digest>,
    gctr: Ctr,
    lctr: u64,
}

impl NaiveXorClient {
    /// Creates a client knowing `M(D₀)`.
    pub fn new(user: UserId, root0: &Digest, config: ProtocolConfig) -> NaiveXorClient {
        NaiveXorClient {
            user,
            config,
            initial: untagged_token(root0, 0),
            sigma: Digest::ZERO,
            last: None,
            gctr: 0,
            lctr: 0,
        }
    }

    /// This user's id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Own operation count.
    pub fn lctr(&self) -> u64 {
        self.lctr
    }

    /// Processes a server response (same per-op checks as Protocol II, but
    /// untagged accumulation).
    pub fn handle_response(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<OpResult, Deviation> {
        if resp.ctr < self.gctr {
            return Err(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: self.gctr,
            });
        }
        let (old_root, verified) =
            replay_unanchored(self.config.order, &resp.vo, op, Some(&resp.result))
                .map_err(Deviation::BadProof)?;
        let old_token = untagged_token(&old_root, resp.ctr);
        let new_token = untagged_token(&verified.new_root, resp.ctr + 1);
        self.sigma ^= old_token;
        self.sigma ^= new_token;
        self.last = Some(new_token);
        self.gctr = resp.ctr + 1;
        self.lctr += 1;
        Ok(verified.result)
    }

    /// Broadcast share for the sync-up.
    pub fn sync_share(&self) -> SyncShare {
        SyncShare {
            user: self.user,
            lctr: self.lctr,
            gctr: self.gctr,
            sigma: self.sigma,
            last: self.last,
        }
    }

    /// This user's sync-up success predicate (same shape as Protocol II).
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        let x = shares.iter().fold(Digest::ZERO, |acc, s| acc ^ s.sigma);
        if shares.iter().all(|s| s.lctr == 0) {
            return x == Digest::ZERO;
        }
        match self.last {
            Some(last) => self.initial ^ last == x,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_merkle::u64_key;

    fn setup(n: u32) -> (Vec<NaiveXorClient>, HonestServer) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 100,
        };
        let server = HonestServer::new(&config);
        let root0 = server.core().root_digest();
        let clients = (0..n)
            .map(|u| NaiveXorClient::new(u, &root0, config))
            .collect();
        (clients, server)
    }

    #[test]
    fn honest_run_passes() {
        let (mut clients, mut server) = setup(2);
        for i in 0..10u64 {
            let u = (i % 2) as usize;
            let op = Op::Put(u64_key(i % 3), vec![i as u8]);
            let resp = server.handle_op(u as u32, &op, i);
            clients[u].handle_response(&op, &resp).unwrap();
        }
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn per_op_integrity_still_caught() {
        // The strawman still has the Merkle layer: outright lies fail.
        let (mut clients, mut server) = setup(1);
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(0, &op, 0);
        resp.result = tcvs_merkle::OpResult::Value(Some(b"lie".to_vec()));
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadProof(_))
        ));
    }
}
