//! Protocol messages exchanged between users and the (untrusted) server.
//!
//! Table 1 of the paper defines the response vocabulary:
//! `(Q(D), v(Q, D), ctr, j, sig)` — answer, verification object, operation
//! counter, last operating user, and (Protocol I only) the last user's
//! signature over `h(M(D) ‖ ctr)`. [`ServerResponse`] is that tuple with
//! Protocol III's epoch fields added; unused fields are `None`/ignored by
//! the other protocols.

use tcvs_crypto::{Digest, MssSignature, UserId};
use tcvs_merkle::{BatchProof, Op, OpResult, VerificationObject};

use crate::types::{Ctr, Epoch};

/// A root digest + counter signed by a user: `sigⱼ(h(M(D) ‖ ctr))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedState {
    /// The signer.
    pub signer: UserId,
    /// The root digest being attested.
    pub root: Digest,
    /// The counter value being attested.
    pub ctr: Ctr,
    /// MSS signature over [`crate::state::signed_payload`]`(root, ctr)`.
    pub sig: MssSignature,
}

impl SignedState {
    /// Wire-size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + Digest::LEN + 8 + self.sig.size_bytes()
    }
}

/// The server's response `Φ` to an operation.
#[derive(Clone, Debug)]
pub struct ServerResponse {
    /// The answer `Q(D)`.
    pub result: OpResult,
    /// The verification object `v(Q, D)`.
    pub vo: VerificationObject,
    /// The operation counter *before* this operation.
    pub ctr: Ctr,
    /// The user `j` who performed the previous operation (`NO_USER` if this
    /// is the first operation ever).
    pub last_user: UserId,
    /// Protocol I: the stored signature `sigⱼ(h(M(D) ‖ ctr))`.
    pub sig: Option<SignedState>,
    /// Protocol III: the server's current epoch.
    pub epoch: Epoch,
    /// Protocol III: true iff this is the first response this user receives
    /// in `epoch`.
    pub new_epoch: bool,
}

impl ServerResponse {
    /// Wire-size estimate in bytes (for the overhead experiments).
    pub fn encoded_size(&self) -> usize {
        self.result.encoded_size()
            + self.vo.encoded_size()
            + 8
            + 4
            + self.sig.as_ref().map_or(0, SignedState::encoded_size)
            + 8
            + 1
    }
}

/// The server's response to a *window* of batchable point operations by one
/// user: the per-op answers plus a single [`BatchProof`] whose pruned tree
/// covers the union of the window's key paths, so the spine of the tree is
/// shipped (and re-hashed) once instead of once per op.
///
/// `ctr`/`last_user`/`sig` describe the state *before the first op* of the
/// window, exactly as [`ServerResponse::ctr`] describes the state before a
/// single op. The window occupies counters `ctr .. ctr + results.len()`.
#[derive(Clone, Debug)]
pub struct BatchResponse {
    /// The answers, one per op in window order.
    pub results: Vec<OpResult>,
    /// One verification object for the whole window.
    pub proof: BatchProof,
    /// The operation counter before the first op of the window.
    pub ctr: Ctr,
    /// The user who performed the operation immediately preceding the
    /// window (`NO_USER` if none).
    pub last_user: UserId,
    /// Protocol I: the stored signature over the pre-window state.
    pub sig: Option<SignedState>,
    /// Protocol III: the server's current epoch.
    pub epoch: Epoch,
    /// Protocol III: true iff this is the first response this user receives
    /// in `epoch`.
    pub new_epoch: bool,
}

impl BatchResponse {
    /// Number of operations the window covers.
    pub fn window_len(&self) -> usize {
        self.results.len()
    }

    /// Wire-size estimate in bytes (for the overhead experiments).
    pub fn encoded_size(&self) -> usize {
        self.results
            .iter()
            .map(OpResult::encoded_size)
            .sum::<usize>()
            + self.proof.encoded_size()
            + 8
            + 4
            + self.sig.as_ref().map_or(0, SignedState::encoded_size)
            + 8
            + 1
    }
}

/// Wire-size estimate of one operation (request accounting).
fn op_wire_size(op: &Op) -> usize {
    match op {
        Op::Get(k) | Op::Delete(k) => 1 + 8 + k.len(),
        Op::Put(k, v) => 1 + 16 + k.len() + v.len(),
        Op::Range(lo, hi) => {
            1 + lo.as_ref().map_or(1, |k| 9 + k.len()) + hi.as_ref().map_or(1, |k| 9 + k.len())
        }
    }
}

/// A Protocol I response whose stored signature may *lag* behind the
/// served operation (the pipelined-deposit fast path).
///
/// The blocking variant guarantees `resp.sig.ctr == resp.ctr`: the server
/// stalls until the previous operator's deposit lands. Under pipelining the
/// server instead serves the op immediately and ships, alongside the lagging
/// signature over the state at `sig.ctr`, the **backfill**: the operations
/// at counters `sig.ctr .. resp.ctr` (each with its performing user) and a
/// single union-pruned [`BatchProof`] anchored at the *signed* root. The
/// client replays backfill + own op from the signed state, so the deposit it
/// produces is still content-anchored to a legitimately signed root —
/// forging any backfill op forks the signed-state chain and is caught at
/// the next sync-up, within the same `k` bound as any Protocol I fork.
#[derive(Clone, Debug)]
pub struct PipelinedResponse {
    /// The ordinary response tuple; `resp.sig` is over the state at some
    /// `sig.ctr <= resp.ctr` rather than at `resp.ctr` itself.
    pub resp: ServerResponse,
    /// Union-pruned pre-state proof anchored at the signed root, sufficient
    /// to replay `backfill` and then the client's own op.
    pub base_proof: BatchProof,
    /// The operations at counters `sig.ctr .. resp.ctr`, in order, with the
    /// user who performed each. Empty when the deposit pipeline is caught
    /// up (then this degenerates to the blocking variant).
    pub backfill: Vec<(UserId, Op)>,
}

impl PipelinedResponse {
    /// Wire-size estimate in bytes. `resp.vo` is counted even though the
    /// pipelined verifier replays from `base_proof`: the per-op proof is
    /// still shipped so a client can fall back to blocking verification.
    pub fn encoded_size(&self) -> usize {
        self.resp.encoded_size()
            + self.base_proof.encoded_size()
            + self
                .backfill
                .iter()
                .map(|(_, op)| 4 + op_wire_size(op))
                .sum::<usize>()
    }
}

/// A user's signed per-epoch accumulator state (Protocol III): the backup of
/// `(σᵢ, lastᵢ)` for a finished epoch, deposited on the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedEpochState {
    /// Whose state this is.
    pub user: UserId,
    /// The finished epoch this state describes.
    pub epoch: Epoch,
    /// XOR accumulator over the epoch's state tokens.
    pub sigma: Digest,
    /// Last state token this user created during the epoch (`None` if the
    /// user performed no operations in it).
    pub last: Option<Digest>,
    /// Number of operations the user performed in the epoch.
    pub ops: u64,
    /// Signature over the canonical digest of the fields above.
    pub sig: MssSignature,
}

impl SignedEpochState {
    /// The digest the signature covers.
    pub fn payload(
        user: UserId,
        epoch: Epoch,
        sigma: &Digest,
        last: Option<&Digest>,
        ops: u64,
    ) -> Digest {
        let last_bytes = last.map_or([0u8; 32], |d| d.0);
        let present = [u8::from(last.is_some())];
        tcvs_crypto::hash_parts(&[
            b"tcvs-epoch-state",
            &user.to_be_bytes(),
            &epoch.to_be_bytes(),
            sigma.as_bytes(),
            &present,
            &last_bytes,
            &ops.to_be_bytes(),
        ])
    }

    /// Wire-size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + 8 + Digest::LEN + 1 + Digest::LEN + 8 + self.sig.size_bytes()
    }
}

/// The audited final state of an epoch, signed by that epoch's checker and
/// stored on the server so the next epoch's checker can chain from it
/// (Protocol III).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCheckpoint {
    /// The epoch whose final state this records.
    pub epoch: Epoch,
    /// The checker who performed the audit.
    pub checker: UserId,
    /// The epoch's final state token (= the next epoch's initial token).
    pub final_token: Digest,
    /// Signature over the canonical digest of the fields above.
    pub sig: MssSignature,
}

impl SignedCheckpoint {
    /// The digest the signature covers.
    pub fn payload(epoch: Epoch, checker: UserId, final_token: &Digest) -> Digest {
        tcvs_crypto::hash_parts(&[
            b"tcvs-checkpoint",
            &epoch.to_be_bytes(),
            &checker.to_be_bytes(),
            final_token.as_bytes(),
        ])
    }

    /// Wire-size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        8 + 4 + Digest::LEN + self.sig.size_bytes()
    }
}

/// One user's contribution to a broadcast sync-up (Protocols I and II).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncShare {
    /// Whose share this is.
    pub user: UserId,
    /// Local operation count `lctrᵢ`.
    pub lctr: u64,
    /// Protocol I: last seen global counter + 1 (`gctrᵢ`).
    pub gctr: Ctr,
    /// Protocol II: XOR accumulator `σᵢ`.
    pub sigma: Digest,
    /// Protocol II: last state token created by this user, if any.
    pub last: Option<Digest>,
}

impl SyncShare {
    /// Wire-size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + 8 + 8 + Digest::LEN + 1 + Digest::LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::sha256;

    #[test]
    fn epoch_state_payload_binds_fields() {
        let s = sha256(b"sigma");
        let l = sha256(b"last");
        let base = SignedEpochState::payload(1, 2, &s, Some(&l), 3);
        assert_ne!(base, SignedEpochState::payload(2, 2, &s, Some(&l), 3));
        assert_ne!(base, SignedEpochState::payload(1, 3, &s, Some(&l), 3));
        assert_ne!(base, SignedEpochState::payload(1, 2, &l, Some(&l), 3));
        assert_ne!(base, SignedEpochState::payload(1, 2, &s, None, 3));
        assert_ne!(base, SignedEpochState::payload(1, 2, &s, Some(&s), 3));
        assert_ne!(base, SignedEpochState::payload(1, 2, &s, Some(&l), 4));
    }

    #[test]
    fn absent_last_differs_from_zero_last() {
        let s = sha256(b"sigma");
        let zero = Digest::ZERO;
        assert_ne!(
            SignedEpochState::payload(1, 1, &s, None, 0),
            SignedEpochState::payload(1, 1, &s, Some(&zero), 0)
        );
    }

    #[test]
    fn checkpoint_payload_binds_fields() {
        let t = sha256(b"final");
        let base = SignedCheckpoint::payload(5, 0, &t);
        assert_ne!(base, SignedCheckpoint::payload(6, 0, &t));
        assert_ne!(base, SignedCheckpoint::payload(5, 1, &t));
        assert_ne!(base, SignedCheckpoint::payload(5, 0, &sha256(b"other")));
    }
}
