//! Shared byte codecs for the protocol vocabulary.
//!
//! Built on `tcvs_store::enc`'s length-prefixed little-endian framing.
//! These encoders used to live inside `tcvs-storage`; they moved here when
//! evidence bundles ([`crate::evidence`]) started needing the same
//! vocabulary — the durable log, the checkpoint format, and the portable
//! forensic artifact now share one explicit, auditable encoding for
//! signatures, deposits, shares, and flight-recorder frames.
//!
//! Decoders validate everything: signatures re-verify their structure,
//! enum tags reject unknown values, and all errors surface as typed
//! [`DecodeError`]s with offsets.

use tcvs_crypto::wots::WotsSignature;
use tcvs_crypto::{Digest, MssPublicKey, MssSignature};
use tcvs_obs::{Event, EventKind, SpanContext, SpanId, TraceId};
use tcvs_store::enc::{DecodeError, Reader, Writer};

use crate::forensics::LoggedTransition;
use crate::msg::{SignedCheckpoint, SignedEpochState, SignedState, SyncShare};

// --- primitives -----------------------------------------------------------

/// Writes a raw 32-byte digest.
pub fn put_digest(w: &mut Writer, d: &Digest) {
    w.raw(&d.0);
}

/// Reads a raw 32-byte digest.
pub fn get_digest(r: &mut Reader) -> Result<Digest, DecodeError> {
    let raw = r.raw(Digest::LEN)?;
    Ok(Digest(raw.try_into().expect("fixed length")))
}

/// Writes an optional digest with a presence byte.
pub fn put_opt_digest(w: &mut Writer, d: Option<&Digest>) {
    match d {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            put_digest(w, d);
        }
    }
}

/// Reads an optional digest written by [`put_opt_digest`].
pub fn get_opt_digest(r: &mut Reader) -> Result<Option<Digest>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_digest(r)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

// --- signatures and keys --------------------------------------------------

/// Writes an MSS signature (leaf index, WOTS body, authentication path).
pub fn put_mss(w: &mut Writer, s: &MssSignature) {
    w.u64(s.leaf_index);
    w.bytes(&s.wots.to_bytes());
    w.u32(s.auth_path.len() as u32);
    for d in &s.auth_path {
        put_digest(w, d);
    }
}

/// Reads an MSS signature written by [`put_mss`].
pub fn get_mss(r: &mut Reader) -> Result<MssSignature, DecodeError> {
    let leaf_index = r.u64()?;
    let wots =
        WotsSignature::from_bytes(r.bytes()?).ok_or(DecodeError::Invalid("wots signature"))?;
    let n = r.u32()? as usize;
    // Auth paths are log₂(leaves) deep; a huge count is corruption.
    if n > 64 {
        return Err(DecodeError::Invalid("auth path too deep"));
    }
    let mut auth_path = Vec::with_capacity(n);
    for _ in 0..n {
        auth_path.push(get_digest(r)?);
    }
    Ok(MssSignature {
        leaf_index,
        wots,
        auth_path,
    })
}

/// Writes an MSS public key (Merkle root + tree height).
pub fn put_mss_public_key(w: &mut Writer, pk: &MssPublicKey) {
    put_digest(w, &pk.root);
    w.u32(pk.height);
}

/// Reads an MSS public key written by [`put_mss_public_key`].
pub fn get_mss_public_key(r: &mut Reader) -> Result<MssPublicKey, DecodeError> {
    let root = get_digest(r)?;
    let height = r.u32()?;
    if height > 64 {
        return Err(DecodeError::Invalid("key tree too tall"));
    }
    Ok(MssPublicKey { root, height })
}

/// Writes a Protocol I signed state deposit.
pub fn put_signed_state(w: &mut Writer, s: &SignedState) {
    w.u32(s.signer);
    put_digest(w, &s.root);
    w.u64(s.ctr);
    put_mss(w, &s.sig);
}

/// Reads a deposit written by [`put_signed_state`].
pub fn get_signed_state(r: &mut Reader) -> Result<SignedState, DecodeError> {
    Ok(SignedState {
        signer: r.u32()?,
        root: get_digest(r)?,
        ctr: r.u64()?,
        sig: get_mss(r)?,
    })
}

/// Writes a Protocol III signed epoch state.
pub fn put_epoch_state(w: &mut Writer, s: &SignedEpochState) {
    w.u32(s.user);
    w.u64(s.epoch);
    put_digest(w, &s.sigma);
    put_opt_digest(w, s.last.as_ref());
    w.u64(s.ops);
    put_mss(w, &s.sig);
}

/// Reads an epoch state written by [`put_epoch_state`].
pub fn get_epoch_state(r: &mut Reader) -> Result<SignedEpochState, DecodeError> {
    Ok(SignedEpochState {
        user: r.u32()?,
        epoch: r.u64()?,
        sigma: get_digest(r)?,
        last: get_opt_digest(r)?,
        ops: r.u64()?,
        sig: get_mss(r)?,
    })
}

/// Writes a Protocol III audited checkpoint.
pub fn put_audit_checkpoint(w: &mut Writer, c: &SignedCheckpoint) {
    w.u64(c.epoch);
    w.u32(c.checker);
    put_digest(w, &c.final_token);
    put_mss(w, &c.sig);
}

/// Reads a checkpoint written by [`put_audit_checkpoint`].
pub fn get_audit_checkpoint(r: &mut Reader) -> Result<SignedCheckpoint, DecodeError> {
    Ok(SignedCheckpoint {
        epoch: r.u64()?,
        checker: r.u32()?,
        final_token: get_digest(r)?,
        sig: get_mss(r)?,
    })
}

// --- sync-up shares and transition logs -----------------------------------

/// Writes one user's broadcast sync-up share.
pub fn put_sync_share(w: &mut Writer, s: &SyncShare) {
    w.u32(s.user);
    w.u64(s.lctr);
    w.u64(s.gctr);
    put_digest(w, &s.sigma);
    put_opt_digest(w, s.last.as_ref());
}

/// Reads a share written by [`put_sync_share`].
pub fn get_sync_share(r: &mut Reader) -> Result<SyncShare, DecodeError> {
    Ok(SyncShare {
        user: r.u32()?,
        lctr: r.u64()?,
        gctr: r.u64()?,
        sigma: get_digest(r)?,
        last: get_opt_digest(r)?,
    })
}

/// Writes one logged state transition (the forensics vocabulary).
pub fn put_transition(w: &mut Writer, t: &LoggedTransition) {
    put_digest(w, &t.old_token);
    put_digest(w, &t.new_token);
    w.u64(t.ctr);
    w.u32(t.user);
}

/// Reads a transition written by [`put_transition`].
pub fn get_transition(r: &mut Reader) -> Result<LoggedTransition, DecodeError> {
    Ok(LoggedTransition {
        old_token: get_digest(r)?,
        new_token: get_digest(r)?,
        ctr: r.u64()?,
        user: r.u32()?,
    })
}

// --- events ---------------------------------------------------------------

/// Stable wire tag of an [`EventKind`] (the enum is `non_exhaustive`, so
/// the mapping is explicit rather than derived from discriminants).
pub fn event_kind_tag(kind: EventKind) -> u8 {
    match kind {
        EventKind::OpServed => 0,
        EventKind::ReadServed => 1,
        EventKind::ProofBuilt => 2,
        EventKind::Retry => 3,
        EventKind::JournalHit => 4,
        EventKind::Deposit => 5,
        EventKind::MissedDeposit => 6,
        EventKind::Checkpoint => 7,
        EventKind::Crash => 8,
        EventKind::Restart => 9,
        EventKind::SyncTriggered => 10,
        EventKind::SyncUp => 11,
        EventKind::Audit => 12,
        EventKind::FaultInjected => 13,
        EventKind::DeviationInjected => 14,
        EventKind::Detection => 15,
        EventKind::Recovery => 16,
        // `EventKind` is non_exhaustive: a kind added after this codec
        // shipped persists as the reserved tag and is dropped (with an
        // error) on decode rather than mis-decoded as something else.
        _ => u8::MAX,
    }
}

/// Inverse of [`event_kind_tag`].
pub fn event_kind_from_tag(tag: u8) -> Result<EventKind, DecodeError> {
    Ok(match tag {
        0 => EventKind::OpServed,
        1 => EventKind::ReadServed,
        2 => EventKind::ProofBuilt,
        3 => EventKind::Retry,
        4 => EventKind::JournalHit,
        5 => EventKind::Deposit,
        6 => EventKind::MissedDeposit,
        7 => EventKind::Checkpoint,
        8 => EventKind::Crash,
        9 => EventKind::Restart,
        10 => EventKind::SyncTriggered,
        11 => EventKind::SyncUp,
        12 => EventKind::Audit,
        13 => EventKind::FaultInjected,
        14 => EventKind::DeviationInjected,
        15 => EventKind::Detection,
        16 => EventKind::Recovery,
        t => return Err(DecodeError::BadTag(t)),
    })
}

/// Writes a flight-recorder / tracer event (timestamp, kind, actor,
/// detail, and the optional span context).
pub fn put_event(w: &mut Writer, ev: &Event) {
    w.u64(ev.t);
    w.u8(event_kind_tag(ev.kind));
    w.u32(ev.user);
    w.string(&ev.detail);
    match &ev.span {
        None => w.u8(0),
        Some(ctx) => {
            w.u8(1);
            w.u64(ctx.trace.0);
            w.u64(ctx.span.0);
            match ctx.parent {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.u64(p.0);
                }
            }
        }
    }
}

/// Reads an event written by [`put_event`].
pub fn get_event(r: &mut Reader) -> Result<Event, DecodeError> {
    let t = r.u64()?;
    let kind = event_kind_from_tag(r.u8()?)?;
    let user = r.u32()?;
    let detail = r.string()?;
    let span = match r.u8()? {
        0 => None,
        1 => {
            let trace = TraceId(r.u64()?);
            let span = SpanId(r.u64()?);
            let parent = match r.u8()? {
                0 => None,
                1 => Some(SpanId(r.u64()?)),
                t => return Err(DecodeError::BadTag(t)),
            };
            Some(SpanContext {
                trace,
                span,
                parent,
            })
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    let mut ev = Event::new(t, kind, user).detail(detail);
    ev.span = span;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_obs::stage;

    fn sample_sig(seed: u8) -> MssSignature {
        let (mut rings, _) = tcvs_crypto::setup_users([seed; 32], 1, 3);
        rings[0].sign(&tcvs_crypto::sha256(&[seed])).unwrap()
    }

    #[test]
    fn signature_codec_round_trips_and_rejects_truncation() {
        let sig = sample_sig(5);
        let mut w = Writer::new();
        put_mss(&mut w, &sig);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_mss(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.leaf_index, sig.leaf_index);
        assert_eq!(back.auth_path, sig.auth_path);
        assert_eq!(back.wots.to_bytes(), sig.wots.to_bytes());

        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(get_mss(&mut r).is_err());
    }

    #[test]
    fn key_share_and_transition_codecs_round_trip() {
        let (_, registry) = tcvs_crypto::setup_users([9; 32], 2, 3);
        let pk = *registry.lookup(1).unwrap();
        let mut w = Writer::new();
        put_mss_public_key(&mut w, &pk);
        let share = SyncShare {
            user: 3,
            lctr: 7,
            gctr: 11,
            sigma: tcvs_crypto::sha256(b"s"),
            last: Some(tcvs_crypto::sha256(b"l")),
        };
        put_sync_share(&mut w, &share);
        let tr = LoggedTransition {
            old_token: tcvs_crypto::sha256(b"a"),
            new_token: tcvs_crypto::sha256(b"b"),
            ctr: 4,
            user: 1,
        };
        put_transition(&mut w, &tr);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let pk2 = get_mss_public_key(&mut r).unwrap();
        assert_eq!((pk2.root, pk2.height), (pk.root, pk.height));
        assert_eq!(get_sync_share(&mut r).unwrap(), share);
        assert_eq!(get_transition(&mut r).unwrap(), tr);
        r.finish().unwrap();
    }

    #[test]
    fn event_codec_round_trips_spans_and_rejects_unknown_kind() {
        let ctx = SpanContext::root(3, 9).child(stage::SERVER);
        let ev = Event::new(7, EventKind::Detection, 3)
            .detail("shard=2")
            .span(ctx);
        let mut w = Writer::new();
        put_event(&mut w, &ev);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(get_event(&mut r).unwrap(), ev);
        r.finish().unwrap();
        assert!(event_kind_from_tag(200).is_err());
    }
}
