//! Deterministic fault plans: scheduled *benign* faults for the partial-
//! synchrony experiments.
//!
//! The paper's deviation detectors (Definition 2.1) must tell a server that
//! *deviates* apart from a network that merely *misbehaves* — drops, delays,
//! duplicates, reorders messages, or lets the server crash and restart from
//! persisted state. A [`FaultPlan`] schedules such faults at operation
//! indices, either explicitly or pseudo-randomly from a seed, so both the
//! round-based simulator (`tcvs-sim`) and the threaded deployment
//! (`tcvs-net`) can inject the *same* fault sequence and the oracles can
//! assert that benign faults never raise a deviation alarm.

use std::collections::BTreeMap;

use tcvs_crypto::SeedRng;

/// splitmix64's output mix (Steele et al.): a cheap, high-quality 64-bit
/// finalizer. Used to derive independent per-link fault sub-seeds and to
/// spread the shard router's key hash; must stay bit-identical forever —
/// derived fault streams and key routing are pinned to it.
pub(crate) const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One benign fault, applied to the operation scheduled at some index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation request is lost before reaching the server; the client
    /// retries.
    DropRequest,
    /// The server executes the operation but its reply is lost; the client
    /// retries and must receive the *same* response (exactly-once).
    DropReply,
    /// Delivery is delayed by this many rounds (bounded, per the partial-
    /// synchrony assumption).
    Delay(u64),
    /// The request is delivered twice; the duplicate must not re-execute.
    Duplicate,
    /// This operation is delivered *after* the next one (adjacent reorder).
    ReorderNext,
    /// The server crashes after serving this operation and restarts from
    /// its persisted state before the next one.
    CrashRestart,
    /// The storage medium misbehaves around this operation's commit. The
    /// fault applies *below* the storage engine (between engine and
    /// medium), not on the wire; network links pass it through untouched.
    Storage(StorageFault),
}

/// One benign storage-medium fault, injected by a shim between the storage
/// engine and its medium. All four model real disk behavior that a durable
/// engine must survive: recovery may lose the *unacknowledged* tail but must
/// never corrupt acknowledged state and never replay a torn record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The append is cut short mid-record (power loss mid-write): only a
    /// prefix of the record reaches the medium.
    TornWrite,
    /// A read returns fewer bytes than the file holds (transient short
    /// read); a retry sees the full contents.
    ShortRead,
    /// An fsync is silently dropped: the data sits in the volatile cache
    /// and is lost if a crash follows before the next successful sync.
    FsyncLost,
    /// A single bit of the just-written record flips on the medium
    /// (latent sector corruption); the record checksum must catch it.
    BitFlip,
}

/// Per-operation fault probabilities (percent) for seeded plan generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRates {
    /// Chance an operation's request or reply is dropped.
    pub drop_pct: u8,
    /// Chance an operation is delayed.
    pub delay_pct: u8,
    /// Chance a request is duplicated.
    pub dup_pct: u8,
    /// Chance an operation is reordered past its successor.
    pub reorder_pct: u8,
    /// Chance the server crash-restarts after an operation.
    pub crash_pct: u8,
    /// Chance the storage medium faults around an operation's commit.
    pub storage_pct: u8,
    /// Maximum delay, in rounds (delays are 1..=max).
    pub max_delay_rounds: u64,
}

impl Default for FaultRates {
    fn default() -> FaultRates {
        FaultRates::light()
    }
}

impl FaultRates {
    /// A lightly faulty network: occasional drops and delays.
    pub fn light() -> FaultRates {
        FaultRates {
            drop_pct: 5,
            delay_pct: 5,
            dup_pct: 3,
            reorder_pct: 3,
            crash_pct: 1,
            storage_pct: 1,
            max_delay_rounds: 3,
        }
    }

    /// A hostile-but-benign network: every fault kind is frequent.
    pub fn heavy() -> FaultRates {
        FaultRates {
            drop_pct: 15,
            delay_pct: 15,
            dup_pct: 10,
            reorder_pct: 10,
            crash_pct: 5,
            storage_pct: 5,
            max_delay_rounds: 8,
        }
    }

    fn total_pct(&self) -> u64 {
        self.drop_pct as u64
            + self.delay_pct as u64
            + self.dup_pct as u64
            + self.reorder_pct as u64
            + self.crash_pct as u64
            + self.storage_pct as u64
    }
}

/// How many faults of each kind a plan carries (reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Dropped requests plus dropped replies.
    pub drops: u64,
    /// Delayed deliveries.
    pub delays: u64,
    /// Duplicated requests.
    pub duplicates: u64,
    /// Adjacent reorders.
    pub reorders: u64,
    /// Server crash-restarts.
    pub crashes: u64,
    /// Storage-medium faults (torn writes, short reads, lost fsyncs,
    /// bit-flips).
    pub storage: u64,
}

impl FaultCounts {
    /// Total scheduled faults.
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.reorders + self.crashes + self.storage
    }
}

/// A schedule of benign faults keyed by global operation index.
///
/// At most one fault per operation; the plan is immutable once built and
/// cheap to share between a harness and its oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// The empty plan: a perfect network.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True iff no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Schedules `kind` at operation `at_op` (replacing any prior fault
    /// there). `Delay(0)` is normalized away.
    pub fn schedule(&mut self, at_op: u64, kind: FaultKind) -> &mut FaultPlan {
        if kind == FaultKind::Delay(0) {
            self.faults.remove(&at_op);
        } else {
            self.faults.insert(at_op, kind);
        }
        self
    }

    /// Builds a plan of `n_ops` operations pseudo-randomly from `seed`.
    /// The same seed always yields the same plan.
    pub fn seeded(seed: u64, n_ops: u64, rates: &FaultRates) -> FaultPlan {
        let mut label = Vec::with_capacity(24);
        label.extend_from_slice(b"tcvs-fault-plan:");
        label.extend_from_slice(&seed.to_le_bytes());
        let mut rng = SeedRng::from_label(&label);
        let mut plan = FaultPlan::none();
        let total = rates.total_pct().min(100);
        for op in 0..n_ops {
            let roll = rng.next_below(100);
            if roll >= total {
                continue;
            }
            let mut edge = rates.drop_pct as u64;
            let kind = if roll < edge {
                if rng.next_below(2) == 0 {
                    FaultKind::DropRequest
                } else {
                    FaultKind::DropReply
                }
            } else if roll < {
                edge += rates.delay_pct as u64;
                edge
            } {
                FaultKind::Delay(1 + rng.next_below(rates.max_delay_rounds.max(1)))
            } else if roll < {
                edge += rates.dup_pct as u64;
                edge
            } {
                FaultKind::Duplicate
            } else if roll < {
                edge += rates.reorder_pct as u64;
                edge
            } {
                // Reordering needs a successor to swap with.
                if op + 1 >= n_ops {
                    continue;
                }
                FaultKind::ReorderNext
            } else if roll < {
                edge += rates.crash_pct as u64;
                edge
            } {
                FaultKind::CrashRestart
            } else {
                FaultKind::Storage(match rng.next_below(4) {
                    0 => StorageFault::TornWrite,
                    1 => StorageFault::ShortRead,
                    2 => StorageFault::FsyncLost,
                    _ => StorageFault::BitFlip,
                })
            };
            plan.schedule(op, kind);
        }
        plan
    }

    /// Derives the sub-seed for link `link_id` of a multi-link deployment
    /// seeded with `seed`.
    ///
    /// Interposing several `FaultLink`s from one top-level seed must not
    /// produce *correlated* fault streams — a grove where every shard link
    /// drops the same op indices in lockstep is not N independent flaky
    /// links, it is one flaky link copied N times, and it under-exercises
    /// the recovery paths. The sub-seed mixes the link id through
    /// splitmix64 so adjacent link ids land far apart in seed space.
    pub fn link_subseed(seed: u64, link_id: u64) -> u64 {
        splitmix64(seed ^ splitmix64(link_id))
    }

    /// [`FaultPlan::seeded`], but for link `link_id` of a deployment seeded
    /// with `seed`: each link gets its own independent pseudo-random
    /// stream. `seeded_for_link(s, a, ..) == seeded(link_subseed(s, a), ..)`
    /// by construction.
    pub fn seeded_for_link(seed: u64, link_id: u64, n_ops: u64, rates: &FaultRates) -> FaultPlan {
        FaultPlan::seeded(FaultPlan::link_subseed(seed, link_id), n_ops, rates)
    }

    /// The fault scheduled at operation `op_index`, if any.
    pub fn fault_at(&self, op_index: u64) -> Option<FaultKind> {
        self.faults.get(&op_index).copied()
    }

    /// Iterates scheduled faults in operation order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, FaultKind)> + '_ {
        self.faults.iter().map(|(k, v)| (*k, *v))
    }

    /// Per-kind totals.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for kind in self.faults.values() {
            match kind {
                FaultKind::DropRequest | FaultKind::DropReply => c.drops += 1,
                FaultKind::Delay(_) => c.delays += 1,
                FaultKind::Duplicate => c.duplicates += 1,
                FaultKind::ReorderNext => c.reorders += 1,
                FaultKind::CrashRestart => c.crashes += 1,
                FaultKind::Storage(_) => c.storage += 1,
            }
        }
        c
    }

    /// The order in which `n_ops` trace entries are actually delivered
    /// after applying every adjacent reorder, as indices into the trace.
    /// Swaps apply left to right; each is skipped if its successor was
    /// already consumed by an earlier swap.
    pub fn effective_order(&self, n_ops: u64) -> Vec<u64> {
        let mut order: Vec<u64> = (0..n_ops).collect();
        for (&at, kind) in &self.faults {
            if *kind != FaultKind::ReorderNext {
                continue;
            }
            let pos = at as usize;
            if pos + 1 < order.len() {
                order.swap(pos, pos + 1);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let rates = FaultRates::heavy();
        let a = FaultPlan::seeded(7, 500, &rates);
        let b = FaultPlan::seeded(7, 500, &rates);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 500, &rates);
        assert_ne!(a, c, "different seeds give different plans");
        assert!(!a.is_empty(), "heavy rates over 500 ops schedule faults");
    }

    #[test]
    fn seeded_plan_respects_rate_bounds() {
        let rates = FaultRates {
            drop_pct: 0,
            delay_pct: 100,
            dup_pct: 0,
            reorder_pct: 0,
            crash_pct: 0,
            storage_pct: 0,
            max_delay_rounds: 4,
        };
        let plan = FaultPlan::seeded(1, 200, &rates);
        assert_eq!(plan.len(), 200);
        for (_, kind) in plan.iter() {
            match kind {
                FaultKind::Delay(d) => assert!((1..=4).contains(&d)),
                other => panic!("only delays were scheduled, got {other:?}"),
            }
        }
        assert_eq!(plan.counts().delays, 200);
    }

    #[test]
    fn zero_rates_schedule_nothing() {
        let rates = FaultRates {
            drop_pct: 0,
            delay_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            crash_pct: 0,
            storage_pct: 0,
            max_delay_rounds: 1,
        };
        assert!(FaultPlan::seeded(3, 1000, &rates).is_empty());
    }

    #[test]
    fn effective_order_is_a_permutation() {
        let mut plan = FaultPlan::none();
        plan.schedule(0, FaultKind::ReorderNext)
            .schedule(3, FaultKind::ReorderNext)
            .schedule(9, FaultKind::ReorderNext); // no successor: ignored
        let order = plan.effective_order(10);
        assert_eq!(order.len(), 10);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(&order[..2], &[1, 0]);
        assert_eq!(&order[3..5], &[4, 3]);
    }

    #[test]
    fn reorder_never_scheduled_on_the_last_op() {
        let rates = FaultRates {
            drop_pct: 0,
            delay_pct: 0,
            dup_pct: 0,
            reorder_pct: 100,
            crash_pct: 0,
            storage_pct: 0,
            max_delay_rounds: 1,
        };
        for seed in 0..20 {
            let plan = FaultPlan::seeded(seed, 6, &rates);
            assert!(plan.fault_at(5).is_none(), "seed {seed}");
        }
    }

    #[test]
    fn storage_only_rates_schedule_storage_faults() {
        let rates = FaultRates {
            drop_pct: 0,
            delay_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            crash_pct: 0,
            storage_pct: 100,
            max_delay_rounds: 1,
        };
        let plan = FaultPlan::seeded(11, 200, &rates);
        assert_eq!(plan.len(), 200);
        let mut kinds = [false; 4];
        for (_, kind) in plan.iter() {
            match kind {
                FaultKind::Storage(StorageFault::TornWrite) => kinds[0] = true,
                FaultKind::Storage(StorageFault::ShortRead) => kinds[1] = true,
                FaultKind::Storage(StorageFault::FsyncLost) => kinds[2] = true,
                FaultKind::Storage(StorageFault::BitFlip) => kinds[3] = true,
                other => panic!("only storage faults were scheduled, got {other:?}"),
            }
        }
        assert_eq!(kinds, [true; 4], "all four storage faults appear");
        assert_eq!(plan.counts().storage, 200);
    }

    /// The derived per-link seeds are pinned: changing `link_subseed` (or
    /// `splitmix64`) would silently re-seed every multi-link experiment, so
    /// the exact constants are frozen here.
    #[test]
    fn link_subseeds_are_pinned() {
        assert_eq!(FaultPlan::link_subseed(0, 0), 0xa706_dd2f_4d19_7e6f);
        assert_eq!(FaultPlan::link_subseed(0, 1), 0x5e41_ab08_7439_611e);
        assert_eq!(FaultPlan::link_subseed(7, 0), 0x64bf_61b5_12ff_abe7);
        assert_eq!(FaultPlan::link_subseed(7, 3), 0xe880_a903_bcff_6547);
    }

    #[test]
    fn per_link_plans_are_independent_and_reproducible() {
        let rates = FaultRates::heavy();
        // Reproducible: the derived plan equals seeding with the sub-seed.
        let a = FaultPlan::seeded_for_link(42, 0, 400, &rates);
        assert_eq!(
            a,
            FaultPlan::seeded(FaultPlan::link_subseed(42, 0), 400, &rates)
        );
        assert_eq!(a, FaultPlan::seeded_for_link(42, 0, 400, &rates));
        // Independent: links from the same top-level seed see different
        // streams (the pre-fix behavior — every link replaying the identical
        // plan — would make all of these equal).
        let plans: Vec<FaultPlan> = (0..8)
            .map(|link| FaultPlan::seeded_for_link(42, link, 400, &rates))
            .collect();
        for i in 0..plans.len() {
            for j in i + 1..plans.len() {
                assert_ne!(plans[i], plans[j], "links {i} and {j} correlated");
            }
        }
        // And not just different as a whole: identical streams would share
        // *all* their fault indices; independent ones share only the
        // product of their densities (heavy ≈ 60%, so ≈ 60% of each).
        let idx = |p: &FaultPlan| p.iter().map(|(op, _)| op).collect::<Vec<u64>>();
        let a_idx = idx(&plans[0]);
        let b_idx = idx(&plans[1]);
        let shared = a_idx.iter().filter(|op| b_idx.contains(op)).count();
        let min = a_idx.len().min(b_idx.len());
        assert!(
            shared * 10 < min * 8,
            "links 0 and 1 share {shared} of {min} fault indices — \
             lockstep streams, not independent ones"
        );
    }

    #[test]
    fn schedule_overwrites_and_normalizes() {
        let mut plan = FaultPlan::none();
        plan.schedule(4, FaultKind::Duplicate);
        plan.schedule(4, FaultKind::CrashRestart);
        assert_eq!(plan.fault_at(4), Some(FaultKind::CrashRestart));
        plan.schedule(4, FaultKind::Delay(0));
        assert!(plan.is_empty(), "zero delay removes the fault");
    }
}
