//! Broadcast sync-up aggregation (Protocols I and II).
//!
//! Each client produces a [`SyncShare`]; the broadcast channel delivers all
//! shares to all users; each user evaluates its own success predicate and
//! announces the verdict. The run is judged deviant iff **no** user
//! announces success. These helpers compute the aggregate outcome the way
//! an observer of the broadcast channel would.

use tcvs_crypto::Digest;

use crate::msg::SyncShare;

/// Protocol I aggregate outcome: does any user's `gctrᵢ` equal `Σₖ lctrₖ`?
pub fn protocol1_sync_ok(shares: &[SyncShare]) -> bool {
    let total: u64 = shares.iter().map(|s| s.lctr).sum();
    shares.iter().any(|s| s.gctr == total)
}

/// Protocol II aggregate outcome: does any user's
/// `initial ⊕ lastᵢ` equal `⊕ₖ σₖ`? (Trivially true when no operation has
/// occurred anywhere.)
pub fn protocol2_sync_ok(initial: &Digest, shares: &[SyncShare]) -> bool {
    let x = shares.iter().fold(Digest::ZERO, |acc, s| acc ^ s.sigma);
    if shares.iter().all(|s| s.lctr == 0) {
        return x == Digest::ZERO;
    }
    shares
        .iter()
        .filter_map(|s| s.last)
        .any(|last| *initial ^ last == x)
}

/// Protocol I aggregate outcome across a grove: every shard's sync-up must
/// succeed independently.
///
/// The grove epoch rule (DESIGN.md "Sharded grove"): at a sync-up, all
/// shard roots are sampled at one published grove epoch, users exchange one
/// share *per shard*, and the grove passes iff each shard's share set
/// passes [`protocol1_sync_ok`] on its own. There is no useful cross-shard
/// cancellation for counters — summing lctrs across shards would let a
/// shard that under-counts hide behind one that over-counts.
pub fn protocol1_grove_sync_ok(per_shard: &[Vec<SyncShare>]) -> bool {
    !per_shard.is_empty() && per_shard.iter().all(|shares| protocol1_sync_ok(shares))
}

/// Protocol II aggregate outcome across a grove: conjunction of the
/// per-shard predicates, one initial state token per shard.
///
/// Deliberately *not* `⊕ᵢ initialᵢ ⊕ lastᵢ == ⊕ᵢ,ₖ σᵢₖ` (the single-XOR
/// composition): XOR over shards would cancel a *pair* of compensating
/// lies on two shards. Evaluating each shard independently keeps the
/// paper's Theorem 4.2 k-bound per shard, so a lie confined to one shard
/// is caught exactly as on a single server and is localized for free —
/// see [`protocol2_deviating_shards`].
pub fn protocol2_grove_sync_ok(initials: &[Digest], per_shard: &[Vec<SyncShare>]) -> bool {
    initials.len() == per_shard.len()
        && !per_shard.is_empty()
        && initials
            .iter()
            .zip(per_shard)
            .all(|(initial, shares)| protocol2_sync_ok(initial, shares))
}

/// The shards whose Protocol II sync-up failed — the grove's localization
/// bonus: a failed grove sync-up names the deviating shard(s) instead of
/// just the fact of deviation.
pub fn protocol2_deviating_shards(initials: &[Digest], per_shard: &[Vec<SyncShare>]) -> Vec<usize> {
    initials
        .iter()
        .zip(per_shard)
        .enumerate()
        .filter(|(_, (initial, shares))| !protocol2_sync_ok(initial, shares))
        .map(|(i, _)| i)
        .collect()
}

/// The grove's composed accumulator: XOR of the per-shard XOR-folded σ
/// streams. Protocol II's accumulators compose across shards for free —
/// this is the single σ an observer summarizing a whole-grove epoch would
/// publish. (Used for reporting/fingerprinting a grove state; the success
/// *predicate* stays per-shard, see [`protocol2_grove_sync_ok`].)
pub fn grove_sigma(per_shard: &[Vec<SyncShare>]) -> Digest {
    per_shard
        .iter()
        .flatten()
        .fold(Digest::ZERO, |acc, s| acc ^ s.sigma)
}

/// Total broadcast traffic in bytes for one sync-up round with `n` users
/// (everyone broadcasts one share to everyone).
pub fn sync_traffic_bytes(shares: &[SyncShare]) -> usize {
    let n = shares.len();
    shares.iter().map(SyncShare::encoded_size).sum::<usize>() * n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::sha256;

    fn share(user: u32, lctr: u64, gctr: u64, sigma: Digest, last: Option<Digest>) -> SyncShare {
        SyncShare {
            user,
            lctr,
            gctr,
            sigma,
            last,
        }
    }

    #[test]
    fn p1_ok_when_latest_matches_total() {
        let shares = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 2, 5, Digest::ZERO, None),
        ];
        assert!(protocol1_sync_ok(&shares)); // user 1: gctr 5 == 3+2
    }

    #[test]
    fn p1_fails_when_counts_disagree() {
        let shares = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 3, 5, Digest::ZERO, None),
        ];
        assert!(!protocol1_sync_ok(&shares)); // total 6, nobody saw 6
    }

    #[test]
    fn p2_honest_chain_cancels() {
        // Simulate: initial -> t1 (user 0) -> t2 (user 1).
        let initial = sha256(b"init");
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        let shares = vec![
            share(0, 1, 1, initial ^ t1, Some(t1)),
            share(1, 1, 2, t1 ^ t2, Some(t2)),
        ];
        assert!(protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_fork_does_not_cancel() {
        // Fork: initial -> t1 (user 0); initial -> t2 (user 1).
        let initial = sha256(b"init");
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        let shares = vec![
            share(0, 1, 1, initial ^ t1, Some(t1)),
            share(1, 1, 1, initial ^ t2, Some(t2)),
        ];
        assert!(!protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_zero_ops_trivial() {
        let initial = sha256(b"init");
        let shares = vec![
            share(0, 0, 0, Digest::ZERO, None),
            share(1, 0, 0, Digest::ZERO, None),
        ];
        assert!(protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_zero_ops_with_garbage_sigma_fails() {
        let initial = sha256(b"init");
        let shares = vec![share(0, 0, 0, sha256(b"garbage"), None)];
        assert!(!protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn grove_p1_requires_every_shard_to_pass() {
        let ok = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 2, 5, Digest::ZERO, None),
        ];
        let bad = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 3, 5, Digest::ZERO, None),
        ];
        assert!(protocol1_grove_sync_ok(&[ok.clone(), ok.clone()]));
        assert!(!protocol1_grove_sync_ok(&[ok, bad]));
        assert!(!protocol1_grove_sync_ok(&[]));
    }

    #[test]
    fn grove_p2_localizes_a_single_shard_fork() {
        let init_a = sha256(b"init-a");
        let init_b = sha256(b"init-b");
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        // Honest chain on a shard: init -> t1 (user 0) -> t2 (user 1).
        let honest = |init: Digest| {
            vec![
                share(0, 1, 1, init ^ t1, Some(t1)),
                share(1, 1, 2, t1 ^ t2, Some(t2)),
            ]
        };
        // Forked shard: both users extend init independently.
        let forked = |init: Digest| {
            vec![
                share(0, 1, 1, init ^ t1, Some(t1)),
                share(1, 1, 1, init ^ t2, Some(t2)),
            ]
        };
        let initials = [init_a, init_b];
        assert!(protocol2_grove_sync_ok(
            &initials,
            &[honest(init_a), honest(init_b)]
        ));
        assert!(!protocol2_grove_sync_ok(
            &initials,
            &[honest(init_a), forked(init_b)]
        ));
        assert_eq!(
            protocol2_deviating_shards(&initials, &[honest(init_a), forked(init_b)]),
            vec![1],
            "the fork is localized to shard 1"
        );
        assert_eq!(
            protocol2_deviating_shards(&initials, &[honest(init_a), honest(init_b)]),
            Vec::<usize>::new()
        );
        // A compensating pair of lies must NOT cancel across shards: both
        // shards forked still fails (each fails independently).
        assert!(!protocol2_grove_sync_ok(
            &initials,
            &[forked(init_a), forked(init_b)]
        ));
    }

    #[test]
    fn grove_p2_rejects_shape_mismatch_and_empty() {
        let init = sha256(b"init");
        assert!(!protocol2_grove_sync_ok(&[], &[]));
        assert!(!protocol2_grove_sync_ok(&[init], &[]));
    }

    #[test]
    fn grove_sigma_is_the_xor_of_all_shares() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        let c = sha256(b"c");
        let per_shard = vec![
            vec![share(0, 1, 1, a, Some(a)), share(1, 1, 2, b, Some(b))],
            vec![share(0, 1, 1, c, Some(c))],
        ];
        assert_eq!(grove_sigma(&per_shard), a ^ b ^ c);
        assert_eq!(grove_sigma(&[]), Digest::ZERO);
    }

    #[test]
    fn traffic_scales_quadratically() {
        let s = share(0, 0, 0, Digest::ZERO, None);
        let two = sync_traffic_bytes(&[s.clone(), s.clone()]);
        let four = sync_traffic_bytes(&[s.clone(), s.clone(), s.clone(), s.clone()]);
        assert!(four > 2 * two);
    }
}
