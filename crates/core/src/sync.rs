//! Broadcast sync-up aggregation (Protocols I and II).
//!
//! Each client produces a [`SyncShare`]; the broadcast channel delivers all
//! shares to all users; each user evaluates its own success predicate and
//! announces the verdict. The run is judged deviant iff **no** user
//! announces success. These helpers compute the aggregate outcome the way
//! an observer of the broadcast channel would.

use tcvs_crypto::Digest;

use crate::msg::SyncShare;

/// Protocol I aggregate outcome: does any user's `gctrᵢ` equal `Σₖ lctrₖ`?
pub fn protocol1_sync_ok(shares: &[SyncShare]) -> bool {
    let total: u64 = shares.iter().map(|s| s.lctr).sum();
    shares.iter().any(|s| s.gctr == total)
}

/// Protocol II aggregate outcome: does any user's
/// `initial ⊕ lastᵢ` equal `⊕ₖ σₖ`? (Trivially true when no operation has
/// occurred anywhere.)
pub fn protocol2_sync_ok(initial: &Digest, shares: &[SyncShare]) -> bool {
    let x = shares.iter().fold(Digest::ZERO, |acc, s| acc ^ s.sigma);
    if shares.iter().all(|s| s.lctr == 0) {
        return x == Digest::ZERO;
    }
    shares
        .iter()
        .filter_map(|s| s.last)
        .any(|last| *initial ^ last == x)
}

/// Total broadcast traffic in bytes for one sync-up round with `n` users
/// (everyone broadcasts one share to everyone).
pub fn sync_traffic_bytes(shares: &[SyncShare]) -> usize {
    let n = shares.len();
    shares.iter().map(SyncShare::encoded_size).sum::<usize>() * n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::sha256;

    fn share(user: u32, lctr: u64, gctr: u64, sigma: Digest, last: Option<Digest>) -> SyncShare {
        SyncShare {
            user,
            lctr,
            gctr,
            sigma,
            last,
        }
    }

    #[test]
    fn p1_ok_when_latest_matches_total() {
        let shares = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 2, 5, Digest::ZERO, None),
        ];
        assert!(protocol1_sync_ok(&shares)); // user 1: gctr 5 == 3+2
    }

    #[test]
    fn p1_fails_when_counts_disagree() {
        let shares = vec![
            share(0, 3, 2, Digest::ZERO, None),
            share(1, 3, 5, Digest::ZERO, None),
        ];
        assert!(!protocol1_sync_ok(&shares)); // total 6, nobody saw 6
    }

    #[test]
    fn p2_honest_chain_cancels() {
        // Simulate: initial -> t1 (user 0) -> t2 (user 1).
        let initial = sha256(b"init");
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        let shares = vec![
            share(0, 1, 1, initial ^ t1, Some(t1)),
            share(1, 1, 2, t1 ^ t2, Some(t2)),
        ];
        assert!(protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_fork_does_not_cancel() {
        // Fork: initial -> t1 (user 0); initial -> t2 (user 1).
        let initial = sha256(b"init");
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        let shares = vec![
            share(0, 1, 1, initial ^ t1, Some(t1)),
            share(1, 1, 1, initial ^ t2, Some(t2)),
        ];
        assert!(!protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_zero_ops_trivial() {
        let initial = sha256(b"init");
        let shares = vec![
            share(0, 0, 0, Digest::ZERO, None),
            share(1, 0, 0, Digest::ZERO, None),
        ];
        assert!(protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn p2_zero_ops_with_garbage_sigma_fails() {
        let initial = sha256(b"init");
        let shares = vec![share(0, 0, 0, sha256(b"garbage"), None)];
        assert!(!protocol2_sync_ok(&initial, &shares));
    }

    #[test]
    fn traffic_scales_quadratically() {
        let s = share(0, 0, 0, Digest::ZERO, None);
        let two = sync_traffic_bytes(&[s.clone(), s.clone()]);
        let four = sync_traffic_bytes(&[s.clone(), s.clone(), s.clone(), s.clone()]);
        assert!(four > 2 * two);
    }
}
