//! The CVS database server: the honest core and the transport-facing API.
//!
//! [`ServerCore`] is the deterministic state machine every server (honest or
//! malicious) is built from: the Merkle B+-tree database, the operation
//! counter `ctr`, the last-operating user `j`, the stored Protocol I
//! signature, and the Protocol III deposit boxes. [`ServerApi`] is the
//! interface the transports (simulator, threads) and the adversaries in
//! [`crate::adversary`] implement.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use tcvs_crypto::{Digest, UserId, NO_USER};
use tcvs_merkle::{
    apply_op, batchable, prune_for_op, prune_for_ops, BatchProof, MerkleTree, Op, OpResult,
    VerificationObject,
};
use tcvs_obs::{Event, FlightRecorder};

use crate::msg::{
    BatchResponse, PipelinedResponse, ServerResponse, SignedCheckpoint, SignedEpochState,
    SignedState,
};
use crate::types::{Ctr, Epoch, ProtocolConfig};

/// Cumulative server-side traffic accounting (for the overhead experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Operations processed.
    pub ops: u64,
    /// Messages received from users (requests + signature/state deposits).
    pub msgs_in: u64,
    /// Messages sent to users.
    pub msgs_out: u64,
    /// Bytes sent to users (estimated wire size).
    pub bytes_out: u64,
}

/// The deterministic server state machine.
#[derive(Clone)]
pub struct ServerCore {
    db: MerkleTree,
    ctr: Ctr,
    last_user: UserId,
    /// Protocol I: the most recent `sigⱼ(h(M(D) ‖ ctr))` deposited.
    last_sig: Option<SignedState>,
    /// Protocol III: rounds per epoch.
    epoch_len: u64,
    /// Protocol III: deposited per-user epoch states, keyed by (epoch, user).
    epoch_states: BTreeMap<(Epoch, UserId), SignedEpochState>,
    /// Protocol III: audited epoch-final checkpoints.
    checkpoints: BTreeMap<Epoch, SignedCheckpoint>,
    /// Protocol III: last epoch in which each user was served (drives the
    /// `new_epoch` flag).
    user_epochs: BTreeMap<UserId, Epoch>,
    metrics: ServerMetrics,
    /// Always-on flight recorder, when one is attached: its retained tail
    /// is captured into every [`ServerCore::crash_snapshot`], so the last
    /// moments before a crash survive it.
    recorder: Option<Arc<FlightRecorder>>,
}

impl ServerCore {
    /// Creates a server with an empty database.
    pub fn new(config: &ProtocolConfig) -> ServerCore {
        ServerCore {
            db: MerkleTree::with_order(config.order),
            ctr: 0,
            last_user: NO_USER,
            last_sig: None,
            epoch_len: config.epoch_len,
            epoch_states: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            user_epochs: BTreeMap::new(),
            metrics: ServerMetrics::default(),
            recorder: None,
        }
    }

    /// Attaches an always-on flight recorder. [`ServerCore::crash_snapshot`]
    /// captures its retained timeline, and the recorder itself (the live
    /// ring) survives crash-restarts of the owning server.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.recorder.clone()
    }

    /// Current root digest `M(D)`.
    pub fn root_digest(&self) -> tcvs_crypto::Digest {
        self.db.root_digest()
    }

    /// Current operation counter.
    pub fn ctr(&self) -> Ctr {
        self.ctr
    }

    /// Builds a core from a *verified* database and counter — the landing
    /// point of chunked state sync (client cold start, shard rejoin,
    /// checkpoint restore). Deposited epoch states, checkpoints, and the
    /// last signature start empty: bootstrap transfers the authenticated
    /// database, not peers' audit deposits — users re-deposit on their next
    /// exchange, exactly as with a fresh server that already holds data.
    pub fn from_verified_state(
        db: MerkleTree,
        ctr: Ctr,
        config: &ProtocolConfig,
    ) -> Result<ServerCore, tcvs_merkle::CodecError> {
        if config.epoch_len == 0 {
            return Err(tcvs_merkle::CodecError::Malformed("zero epoch length"));
        }
        Ok(ServerCore {
            db,
            ctr,
            last_user: NO_USER,
            last_sig: None,
            epoch_len: config.epoch_len,
            epoch_states: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            user_epochs: BTreeMap::new(),
            metrics: ServerMetrics::default(),
            recorder: None,
        })
    }

    /// Read access to the database (diagnostics, oracle comparison).
    pub fn db(&self) -> &MerkleTree {
        &self.db
    }

    /// Mutable database access — used only by adversaries to tamper.
    pub fn db_mut(&mut self) -> &mut MerkleTree {
        &mut self.db
    }

    /// Traffic metrics so far.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// The epoch the server is in at `round`.
    pub fn epoch_at(&self, round: u64) -> Epoch {
        round / self.epoch_len
    }

    /// Serializes the durable server state (database + counter + last
    /// user) for backup/restart. Protocol deposit boxes (signatures, epoch
    /// states) are session state and are *not* included: after a restart
    /// the users re-establish them, exactly as after electing a signer at
    /// setup.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"TCVS");
        out.extend_from_slice(&self.ctr.to_le_bytes());
        out.extend_from_slice(&self.last_user.to_le_bytes());
        out.extend_from_slice(&self.epoch_len.to_le_bytes());
        out.extend_from_slice(&self.db.to_bytes());
        out
    }

    /// Restores a server from a [`ServerCore::snapshot`]. The database's
    /// digests are fully re-verified during decode.
    pub fn restore(bytes: &[u8]) -> Result<ServerCore, tcvs_merkle::CodecError> {
        use tcvs_merkle::CodecError;
        if bytes.len() < 24 || &bytes[..4] != b"TCVS" {
            return Err(CodecError::Malformed("bad snapshot header"));
        }
        let ctr = Ctr::from_le_bytes(bytes[4..12].try_into().expect("8"));
        let last_user = UserId::from_le_bytes(bytes[12..16].try_into().expect("4"));
        let epoch_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
        if epoch_len == 0 {
            return Err(CodecError::Malformed("zero epoch length"));
        }
        let db = MerkleTree::from_bytes(&bytes[24..])?;
        Ok(ServerCore {
            db,
            ctr,
            last_user,
            last_sig: None,
            epoch_len,
            epoch_states: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            user_epochs: BTreeMap::new(),
            metrics: ServerMetrics::default(),
            recorder: None,
        })
    }

    /// Processes one operation honestly and produces the response tuple.
    pub fn process(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        let vo = VerificationObject::new(prune_for_op(&self.db, op));
        let result = apply_op(&mut self.db, op).expect("full tree never yields stubs");
        let epoch = self.epoch_at(round);
        let prev_epoch = self.user_epochs.insert(user, epoch);
        let resp = ServerResponse {
            result,
            vo,
            ctr: self.ctr,
            last_user: self.last_user,
            sig: self.last_sig.clone(),
            epoch,
            new_epoch: prev_epoch != Some(epoch),
        };
        self.ctr += 1;
        self.last_user = user;
        self.metrics.ops += 1;
        self.metrics.msgs_in += 1;
        self.metrics.msgs_out += 1;
        self.metrics.bytes_out += resp.encoded_size() as u64;
        resp
    }

    /// Processes a whole window of batchable point operations by `user`
    /// honestly, sharing one union-pruned proof across the window (see
    /// [`tcvs_merkle::prune_for_ops`]). Semantically identical to calling
    /// [`ServerCore::process`] once per op, but the tree spine is pruned
    /// (and the client re-hashes it) once instead of once per op.
    ///
    /// # Panics
    ///
    /// Panics if any op is not [`tcvs_merkle::batchable`] — transports gate
    /// the batch path and fall back to per-op responses otherwise.
    pub fn process_batch(&mut self, user: UserId, ops: &[Op], round: u64) -> BatchResponse {
        let proof = BatchProof::new(prune_for_ops(&self.db, ops));
        let results: Vec<OpResult> = ops
            .iter()
            .map(|op| apply_op(&mut self.db, op).expect("full tree never yields stubs"))
            .collect();
        let epoch = self.epoch_at(round);
        let prev_epoch = self.user_epochs.insert(user, epoch);
        let resp = BatchResponse {
            results,
            proof,
            ctr: self.ctr,
            last_user: self.last_user,
            sig: self.last_sig.clone(),
            epoch,
            new_epoch: prev_epoch != Some(epoch),
        };
        self.ctr += ops.len() as u64;
        if !ops.is_empty() {
            self.last_user = user;
        }
        self.metrics.ops += ops.len() as u64;
        self.metrics.msgs_in += 1;
        self.metrics.msgs_out += 1;
        self.metrics.bytes_out += resp.encoded_size() as u64;
        resp
    }

    /// Rewinds the counter/last-user bookkeeping without touching the
    /// database. Only adversaries use this (counter-reuse attacks).
    pub(crate) fn set_counter_state(&mut self, ctr: Ctr, last_user: UserId) {
        self.ctr = ctr;
        self.last_user = last_user;
    }

    /// The user who performed the most recent operation.
    pub fn last_user(&self) -> UserId {
        self.last_user
    }

    /// Stores a user's signature over the new state (Protocol I step 6).
    /// An untrusted server stores blindly; honest servers overwrite.
    pub fn store_signature(&mut self, s: SignedState) {
        self.metrics.msgs_in += 1;
        self.last_sig = Some(s);
    }

    /// Stores a user's signed per-epoch state (Protocol III).
    pub fn store_epoch_state(&mut self, s: SignedEpochState) {
        self.metrics.msgs_in += 1;
        self.epoch_states.insert((s.epoch, s.user), s);
    }

    /// Returns all deposited states for `epoch` (Protocol III audit).
    pub fn epoch_states(&mut self, epoch: Epoch) -> Vec<SignedEpochState> {
        let out: Vec<SignedEpochState> = self
            .epoch_states
            .range((epoch, 0)..=(epoch, UserId::MAX))
            .map(|(_, v)| v.clone())
            .collect();
        self.metrics.msgs_out += 1;
        self.metrics.bytes_out += out.iter().map(|s| s.encoded_size() as u64).sum::<u64>();
        out
    }

    /// Stores an audited checkpoint (Protocol III).
    pub fn store_checkpoint(&mut self, c: SignedCheckpoint) {
        self.metrics.msgs_in += 1;
        self.checkpoints.insert(c.epoch, c);
    }

    /// Fetches the checkpoint for `epoch`, if deposited.
    pub fn checkpoint(&mut self, epoch: Epoch) -> Option<SignedCheckpoint> {
        self.metrics.msgs_out += 1;
        self.checkpoints.get(&epoch).cloned()
    }

    /// Captures the *full* durable state for a crash-restart: the database
    /// plus the protocol deposit boxes.
    ///
    /// The database capture is an O(1) root-pointer copy: the tree is
    /// copy-on-write, so the snapshot shares every node with the live tree
    /// and later mutations copy only the spine they touch. Capturing is
    /// therefore cheap enough to run on every operation (the fault-injection
    /// harness does exactly that).
    ///
    /// Unlike [`ServerCore::snapshot`] (a planned backup, after which users
    /// re-establish session state), a crash must preserve the deposits:
    /// Protocol I clients verify the stored `last_sig` on the very next
    /// response, and Protocol III audits read epoch states deposited before
    /// the crash. Losing either would make an honest restarted server look
    /// like a deviating one.
    pub fn crash_snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            db: self.db.clone(),
            ctr: self.ctr,
            last_user: self.last_user,
            epoch_len: self.epoch_len,
            last_sig: self.last_sig.clone(),
            epoch_states: self.epoch_states.values().cloned().collect(),
            checkpoints: self.checkpoints.values().cloned().collect(),
            user_epochs: self.user_epochs.iter().map(|(u, e)| (*u, *e)).collect(),
            metrics: self.metrics,
            flight: self
                .recorder
                .as_ref()
                .map(|r| r.snapshot())
                .unwrap_or_default(),
        }
    }

    /// Rebuilds a server from a [`ServerCore::crash_snapshot`]. The deposit
    /// boxes are restored verbatim.
    pub fn crash_restore(snap: &ServerSnapshot) -> Result<ServerCore, tcvs_merkle::CodecError> {
        use tcvs_merkle::CodecError;
        if snap.epoch_len == 0 {
            return Err(CodecError::Malformed("zero epoch length"));
        }
        Ok(ServerCore {
            db: snap.db.clone(),
            ctr: snap.ctr,
            last_user: snap.last_user,
            last_sig: snap.last_sig.clone(),
            epoch_len: snap.epoch_len,
            epoch_states: snap
                .epoch_states
                .iter()
                .map(|s| ((s.epoch, s.user), s.clone()))
                .collect(),
            checkpoints: snap
                .checkpoints
                .iter()
                .map(|c| (c.epoch, c.clone()))
                .collect(),
            user_epochs: snap.user_epochs.iter().copied().collect(),
            metrics: snap.metrics,
            recorder: None,
        })
    }

    /// Publishes an O(1) read snapshot of the current state: a structurally
    /// shared copy of the database plus the counter it is current as of.
    /// Point and range queries served from it are identical to queries
    /// served by the live tree at this instant.
    pub fn read_snapshot(&self) -> ReadSnapshot {
        ReadSnapshot {
            db: self.db.clone(),
            ctr: self.ctr,
            last_user: self.last_user,
        }
    }
}

/// Durable state captured by [`ServerCore::crash_snapshot`]: everything an
/// honest server must carry across a crash-restart to stay indistinguishable
/// from one that never crashed.
///
/// The database is held as a structurally shared tree (captured in O(1));
/// [`ServerSnapshot::core_bytes`] reports what the byte-level persisted form
/// would cost, for diagnostics.
#[derive(Clone, Debug)]
pub struct ServerSnapshot {
    /// The database at capture time (copy-on-write share of the live tree).
    db: MerkleTree,
    /// Operation counter at capture time.
    ctr: Ctr,
    /// Last-operating user at capture time.
    last_user: UserId,
    /// Rounds per epoch.
    epoch_len: u64,
    /// Protocol I: the deposited signature over the latest state.
    last_sig: Option<SignedState>,
    /// Protocol III: deposited per-user epoch states.
    epoch_states: Vec<SignedEpochState>,
    /// Protocol III: audited checkpoints.
    checkpoints: Vec<SignedCheckpoint>,
    /// Per-user epoch bookkeeping (drives the `new_epoch` flag).
    user_epochs: Vec<(UserId, Epoch)>,
    /// Traffic accounting continues across restarts.
    metrics: ServerMetrics,
    /// The flight recorder's retained timeline at capture time (empty when
    /// no recorder was attached): the crash-surviving black box.
    flight: Vec<Event>,
}

impl ServerSnapshot {
    /// Estimated size of the byte-level persisted form (diagnostics).
    pub fn core_bytes(&self) -> usize {
        24 + self.db.encoded_size()
    }

    /// Root digest of the captured database.
    pub fn root_digest(&self) -> Digest {
        self.db.root_digest()
    }

    /// The flight-recorder timeline captured with this snapshot (oldest
    /// first; empty when no recorder was attached).
    pub fn flight_events(&self) -> &[Event] {
        &self.flight
    }

    /// Assembles a snapshot from its parts — the inverse of the accessors
    /// below, for storage engines that persist snapshots field by field and
    /// must rebuild one on recovery. `epoch_len` of zero is rejected, as in
    /// [`ServerCore::crash_restore`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        db: MerkleTree,
        ctr: Ctr,
        last_user: UserId,
        epoch_len: u64,
        last_sig: Option<SignedState>,
        epoch_states: Vec<SignedEpochState>,
        checkpoints: Vec<SignedCheckpoint>,
        user_epochs: Vec<(UserId, Epoch)>,
        metrics: ServerMetrics,
        flight: Vec<Event>,
    ) -> Result<ServerSnapshot, tcvs_merkle::CodecError> {
        if epoch_len == 0 {
            return Err(tcvs_merkle::CodecError::Malformed("zero epoch length"));
        }
        Ok(ServerSnapshot {
            db,
            ctr,
            last_user,
            epoch_len,
            last_sig,
            epoch_states,
            checkpoints,
            user_epochs,
            metrics,
            flight,
        })
    }

    /// The captured database (copy-on-write share).
    pub fn db(&self) -> &MerkleTree {
        &self.db
    }

    /// Operation counter at capture time.
    pub fn ctr(&self) -> Ctr {
        self.ctr
    }

    /// Last-operating user at capture time.
    pub fn last_user(&self) -> UserId {
        self.last_user
    }

    /// Rounds per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Protocol I: the deposited signature over the latest state.
    pub fn last_sig(&self) -> Option<&SignedState> {
        self.last_sig.as_ref()
    }

    /// Protocol III: deposited per-user epoch states.
    pub fn epoch_states(&self) -> &[SignedEpochState] {
        &self.epoch_states
    }

    /// Protocol III: audited checkpoints.
    pub fn checkpoints(&self) -> &[SignedCheckpoint] {
        &self.checkpoints
    }

    /// Per-user epoch bookkeeping.
    pub fn user_epochs(&self) -> &[(UserId, Epoch)] {
        &self.user_epochs
    }

    /// Traffic accounting at capture time.
    pub fn snapshot_metrics(&self) -> ServerMetrics {
        self.metrics
    }
}

/// An immutable, structurally shared view of the server's database as of a
/// particular operation counter, published for the concurrent read path.
///
/// Capturing one is O(1) (tree clone is a root-pointer copy), and serving
/// queries from it never blocks — or is blocked by — the write path: later
/// writes copy the spine they touch, leaving this snapshot's nodes intact.
#[derive(Clone, Debug)]
pub struct ReadSnapshot {
    db: MerkleTree,
    ctr: Ctr,
    last_user: UserId,
}

impl ReadSnapshot {
    /// The operation counter this snapshot is current as of (the next
    /// operation the serialized path will assign).
    pub fn ctr(&self) -> Ctr {
        self.ctr
    }

    /// The user whose operation produced this state ([`NO_USER`] before the
    /// first operation, or on a server restored by verified state sync).
    pub fn last_user(&self) -> UserId {
        self.last_user
    }

    /// The Protocol II state token of this snapshot —
    /// `state_token(root, ctr, last_user)`. A session joining mid-history
    /// at this snapshot anchors its σ fold here
    /// ([`crate::client2::Client2::join`]); the grove epoch rejoin rule is
    /// this token sampled per shard at one epoch.
    pub fn join_token(&self) -> Digest {
        crate::state::state_token(&self.db.root_digest(), self.ctr, self.last_user)
    }

    /// Root digest of the snapshot database.
    pub fn root_digest(&self) -> Digest {
        self.db.root_digest()
    }

    /// The snapshot database itself. Chunked state sync slices this tree
    /// into root-anchored chunks ([`tcvs_merkle::ChunkSource`]).
    pub fn db(&self) -> &MerkleTree {
        &self.db
    }

    /// Serves a read-only operation from the snapshot, with its proof.
    /// Returns `None` for updates: only the serialized write path may
    /// transform state.
    pub fn serve(&self, op: &Op) -> Option<(OpResult, VerificationObject)> {
        if op.is_update() {
            return None;
        }
        let vo = VerificationObject::new(prune_for_op(&self.db, op));
        let result = self.serve_result(op)?;
        Some((result, vo))
    }

    /// Serves a read-only operation without building a proof — for clients
    /// that trust the server (the baseline) and skip verification anyway.
    /// Returns `None` for updates.
    pub fn serve_result(&self, op: &Op) -> Option<OpResult> {
        if op.is_update() {
            return None;
        }
        let mut replay = self.db.clone();
        Some(apply_op(&mut replay, op).expect("full tree never yields stubs"))
    }
}

/// The server interface as seen by clients and transports. Implemented by
/// the honest server and by every adversary in [`crate::adversary`].
pub trait ServerApi {
    /// Handles one operation at (the server's view of) `round`.
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse;

    /// Handles one operation, additionally carrying the client's retry
    /// sequence number `seq` (the exactly-once key the transport journals
    /// replies under).
    ///
    /// The default ignores `seq` and delegates to
    /// [`ServerApi::handle_op`] — in-memory servers have no use for it. A
    /// durable server overrides this to log `(user, seq, op, round)` before
    /// returning, so that after a real crash it can regenerate the reply
    /// journal by replay and the transport keeps its exactly-once promise.
    fn handle_op_seq(&mut self, user: UserId, seq: u64, op: &Op, round: u64) -> ServerResponse {
        let _ = seq;
        self.handle_op(user, op, round)
    }

    /// Handles a whole window of batchable point operations with one shared
    /// proof, or returns `None` if this server does not serve batches.
    ///
    /// The default is `None` — deliberately, and for the same reason as
    /// [`ServerApi::read_snapshot`]: batching is a *performance* feature of
    /// the honest server, and adversaries must exercise the ordinary
    /// per-op detection path unless they opt in explicitly. Transports fall
    /// back to per-op requests when the server declines.
    fn handle_op_batch(
        &mut self,
        user: UserId,
        seq: u64,
        ops: &[Op],
        round: u64,
    ) -> Option<BatchResponse> {
        let _ = (user, seq, ops, round);
        None
    }

    /// Serves one Protocol I operation on the **pipelined-deposit** fast
    /// path: the response may carry a *lagging* stored signature plus the
    /// backfill that re-anchors the served state to it (see
    /// [`PipelinedResponse`]), so the server need not stall on the previous
    /// deposit. Returns `None` when this server cannot pipeline the request
    /// — the depositing user has no anchor signature on file, the anchor has
    /// fallen more than `depth` operations behind, the op (or an intervening
    /// one) is not [`tcvs_merkle::batchable`] — in which case the transport
    /// falls back to the blocking path. A `None` return has **no side
    /// effects**: the operation has not been executed.
    ///
    /// The default is `None` — deliberately, and for the same reason as
    /// [`ServerApi::read_snapshot`]: pipelining is a *performance* feature
    /// of the honest server, and adversaries must exercise the ordinary
    /// blocking detection path unless they opt in explicitly.
    fn handle_op_pipelined(
        &mut self,
        user: UserId,
        seq: u64,
        op: &Op,
        round: u64,
        depth: usize,
    ) -> Option<PipelinedResponse> {
        let _ = (user, seq, op, round, depth);
        None
    }

    /// Number of served operations whose Protocol I signature deposit has
    /// not yet arrived (`ctr` minus the stored signature's counter). The
    /// transport uses this to drain the deposit pipeline before serving a
    /// blocking-path response, whose signature must be exactly current.
    ///
    /// The default is 0: only servers that actually serve the pipelined
    /// path report lag.
    fn deposit_lag(&self) -> u64 {
        0
    }

    /// Protocol I: the client deposits its signature over the new state.
    fn deposit_signature(&mut self, user: UserId, s: SignedState);

    /// Protocol III: the client deposits its signed epoch state.
    fn deposit_epoch_state(&mut self, s: SignedEpochState);

    /// Protocol III: the auditor fetches all epoch states for `epoch`.
    fn fetch_epoch_states(&mut self, requester: UserId, epoch: Epoch) -> Vec<SignedEpochState>;

    /// Protocol III: the auditor deposits the audited checkpoint.
    fn deposit_checkpoint(&mut self, c: SignedCheckpoint);

    /// Protocol III: fetches the checkpoint chaining into `epoch`.
    fn fetch_checkpoint(&mut self, requester: UserId, epoch: Epoch) -> Option<SignedCheckpoint>;

    /// Cumulative traffic metrics.
    fn metrics(&self) -> ServerMetrics;

    /// Simulates a crash followed by a restart from persisted state.
    ///
    /// The default is a no-op: an adversary that survives restarts keeps
    /// whatever malicious state it maintains (a crash must never launder a
    /// deviation). [`HonestServer`] round-trips through
    /// [`ServerCore::crash_snapshot`], modelling a server that loses all
    /// volatile state and recovers only what it persisted.
    fn crash_restart(&mut self) {}

    /// Publishes an O(1) snapshot for the concurrent read path, or `None`
    /// if this server does not support snapshot reads.
    ///
    /// The default is `None` — deliberately. The parallel read path is a
    /// *performance* feature of the honest server; an adversarial server
    /// must never be handed a side channel that answers queries outside the
    /// serialized, countered, detection-bearing request stream. Transports
    /// only spin up reader threads when the server opts in.
    fn read_snapshot(&self) -> Option<ReadSnapshot> {
        None
    }

    /// The reply journal recovered from durable storage, as
    /// `(user, seq, response)` triples — `None` when this server keeps no
    /// durable journal (every in-memory server).
    ///
    /// Transports call this at spawn and after every
    /// [`ServerApi::crash_restart`] to re-seed their exactly-once journal:
    /// a retry of an operation acknowledged before the crash must be
    /// answered from the journal, byte-identical, not re-executed.
    fn recovered_journal(&self) -> Option<Vec<(UserId, u64, ServerResponse)>> {
        None
    }
}

/// How many recent operations the honest server retains (with their O(1)
/// pre-state tree captures) to serve pipelined-deposit backfills. A user
/// whose anchor falls further behind than this is served on the blocking
/// path instead.
const PIPELINE_HISTORY_CAP: usize = 1024;

/// A server that follows the protocol exactly.
pub struct HonestServer {
    core: ServerCore,
    /// Each user's most recent deposited signature: the anchor a pipelined
    /// response for that user is re-anchored to. A user's own deposits are
    /// always at-or-behind its verified frontier, so the client accepts
    /// them as anchors.
    anchors: HashMap<UserId, SignedState>,
    /// The operations at counters `hist_start .. ctr`, oldest first, each
    /// with its performing user — the pool pipelined backfills are cut from.
    history: VecDeque<(UserId, Op)>,
    /// `pre_states[i]` is the database *before* the operation at counter
    /// `hist_start + i` (an O(1) copy-on-write capture per op).
    pre_states: VecDeque<MerkleTree>,
    /// Counter of the oldest retained history entry.
    hist_start: Ctr,
    /// History is recorded only once the first signature deposit arrives:
    /// a deployment that never deposits (Protocols II/III) pays nothing.
    recording: bool,
}

impl HonestServer {
    /// Creates an honest server.
    pub fn new(config: &ProtocolConfig) -> HonestServer {
        HonestServer {
            core: ServerCore::new(config),
            anchors: HashMap::new(),
            history: VecDeque::new(),
            pre_states: VecDeque::new(),
            hist_start: 0,
            recording: false,
        }
    }

    /// Wraps an already-built core — the shard-rejoin path of chunked state
    /// sync: a restarted shard assembles a verified [`ServerCore`] from a
    /// peer's chunks and resumes serving from it. Pipelining history and
    /// deposit anchors start empty (users re-anchor on their next blocking
    /// exchange, exactly as after a crash-restart).
    pub fn from_core(core: ServerCore) -> HonestServer {
        let hist_start = core.ctr();
        HonestServer {
            core,
            anchors: HashMap::new(),
            history: VecDeque::new(),
            pre_states: VecDeque::new(),
            hist_start,
            recording: false,
        }
    }

    /// Captures the pre-op state and appends `op` to the pipelining
    /// history, trimming to the retention cap.
    fn record(&mut self, user: UserId, op: &Op) {
        if !self.recording {
            return;
        }
        self.pre_states.push_back(self.core.db().clone());
        self.history.push_back((user, op.clone()));
        while self.history.len() > PIPELINE_HISTORY_CAP {
            self.history.pop_front();
            self.pre_states.pop_front();
            self.hist_start += 1;
        }
    }

    /// Drops the pipelining history (anchors survive; a user whose anchor
    /// now predates `hist_start` simply falls back to the blocking path).
    fn reset_history(&mut self) {
        self.history.clear();
        self.pre_states.clear();
        self.hist_start = self.core.ctr();
    }

    /// Read access to the core (tests, oracles).
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Attaches an always-on flight recorder to the core (see
    /// [`ServerCore::attach_flight_recorder`]). The live ring survives
    /// crash-restarts; each crash snapshot freezes its tail at that moment.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.core.attach_flight_recorder(recorder);
    }
}

impl ServerApi for HonestServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        self.record(user, op);
        self.core.process(user, op, round)
    }

    fn handle_op_batch(
        &mut self,
        user: UserId,
        _seq: u64,
        ops: &[Op],
        round: u64,
    ) -> Option<BatchResponse> {
        let resp = self.core.process_batch(user, ops, round);
        // Batch windows are applied wholesale; rather than interleave
        // per-op captures into the batch path, invalidate the pipelining
        // history (stale anchors then fall back to the blocking path).
        if self.recording {
            self.reset_history();
        }
        Some(resp)
    }

    fn handle_op_pipelined(
        &mut self,
        user: UserId,
        _seq: u64,
        op: &Op,
        round: u64,
        depth: usize,
    ) -> Option<PipelinedResponse> {
        if !batchable(op) {
            return None;
        }
        let anchor = self.anchors.get(&user)?.clone();
        // The anchor must still be inside the retained history and within
        // the configured in-flight window.
        if anchor.ctr < self.hist_start || anchor.ctr > self.core.ctr() {
            return None;
        }
        let lag = (self.core.ctr() - anchor.ctr) as usize;
        if lag > depth {
            return None;
        }
        let from = (anchor.ctr - self.hist_start) as usize;
        if self.history.iter().skip(from).any(|(_, o)| !batchable(o)) {
            return None;
        }
        let backfill: Vec<(UserId, Op)> = self.history.iter().skip(from).cloned().collect();
        let base = if lag == 0 {
            self.core.db().clone()
        } else {
            self.pre_states[from].clone()
        };
        let window: Vec<Op> = backfill
            .iter()
            .map(|(_, o)| o.clone())
            .chain(std::iter::once(op.clone()))
            .collect();
        let base_proof = BatchProof::new(prune_for_ops(&base, &window));
        self.record(user, op);
        let mut resp = self.core.process(user, op, round);
        resp.sig = Some(anchor);
        let presp = PipelinedResponse {
            resp,
            base_proof,
            backfill,
        };
        // `process` accounted the plain response; add the pipelining extras
        // (backfill + anchored proof) so the overhead experiments see them.
        self.core.metrics.bytes_out += (presp.encoded_size() - presp.resp.encoded_size()) as u64;
        Some(presp)
    }

    fn deposit_lag(&self) -> u64 {
        if !self.recording {
            return 0;
        }
        self.core
            .last_sig
            .as_ref()
            .map_or(self.core.ctr(), |s| self.core.ctr().saturating_sub(s.ctr))
    }

    fn deposit_signature(&mut self, user: UserId, s: SignedState) {
        if !self.recording {
            // First deposit: pipelining history starts here.
            self.recording = true;
            self.reset_history();
        }
        self.anchors.insert(user, s.clone());
        // Deposits can arrive out of counter order once the pipeline is
        // deep; the honest server keeps the most advanced signature so the
        // blocking path's `sig.ctr == resp.ctr` invariant can be restored
        // by draining the pipeline.
        let advances = self.core.last_sig.as_ref().is_none_or(|c| s.ctr >= c.ctr);
        if advances {
            self.core.store_signature(s);
        } else {
            self.core.metrics.msgs_in += 1;
        }
    }

    fn deposit_epoch_state(&mut self, s: SignedEpochState) {
        self.core.store_epoch_state(s);
    }

    fn fetch_epoch_states(&mut self, _requester: UserId, epoch: Epoch) -> Vec<SignedEpochState> {
        self.core.epoch_states(epoch)
    }

    fn deposit_checkpoint(&mut self, c: SignedCheckpoint) {
        self.core.store_checkpoint(c);
    }

    fn fetch_checkpoint(&mut self, _requester: UserId, epoch: Epoch) -> Option<SignedCheckpoint> {
        self.core.checkpoint(epoch)
    }

    fn metrics(&self) -> ServerMetrics {
        self.core.metrics()
    }

    fn crash_restart(&mut self) {
        let snap = self.core.crash_snapshot();
        let recorder = self.core.flight_recorder();
        self.core = ServerCore::crash_restore(&snap)
            .expect("a snapshot the server itself produced decodes");
        // The live ring is host-side infrastructure, not server state: it
        // keeps recording across the crash (that is the whole point).
        if let Some(r) = recorder {
            self.core.attach_flight_recorder(r);
        }
        // Pipelining state is volatile: users fall back to the blocking
        // path until their next deposit re-establishes an anchor.
        self.anchors.clear();
        self.recording = false;
        self.reset_history();
    }

    fn read_snapshot(&self) -> Option<ReadSnapshot> {
        Some(self.core.read_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::{u64_key, OpResult};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn process_advances_counter_and_last_user() {
        let mut s = ServerCore::new(&config());
        let r0 = s.process(7, &Op::Put(u64_key(1), b"a".to_vec()), 0);
        assert_eq!(r0.ctr, 0);
        assert_eq!(r0.last_user, NO_USER);
        let r1 = s.process(9, &Op::Get(u64_key(1)), 1);
        assert_eq!(r1.ctr, 1);
        assert_eq!(r1.last_user, 7);
        assert_eq!(r1.result, OpResult::Value(Some(b"a".to_vec())));
        assert_eq!(s.ctr(), 2);
    }

    #[test]
    fn responses_carry_replayable_proofs() {
        let mut s = ServerCore::new(&config());
        let before = s.root_digest();
        let op = Op::Put(u64_key(5), b"v".to_vec());
        let r = s.process(0, &op, 0);
        let verified = tcvs_merkle::verify_response(
            &before,
            4,
            &r.vo,
            &op,
            Some(&r.result),
            Some(&s.root_digest()),
        )
        .unwrap();
        assert_eq!(verified.new_root, s.root_digest());
    }

    #[test]
    fn epoch_flagging_per_user() {
        let mut s = ServerCore::new(&config());
        let r = s.process(0, &Op::Get(u64_key(0)), 0);
        assert_eq!(r.epoch, 0);
        assert!(r.new_epoch);
        let r = s.process(0, &Op::Get(u64_key(0)), 5);
        assert!(!r.new_epoch, "same epoch, same user");
        let r = s.process(1, &Op::Get(u64_key(0)), 5);
        assert!(r.new_epoch, "first time user 1 is served");
        let r = s.process(0, &Op::Get(u64_key(0)), 10);
        assert_eq!(r.epoch, 1);
        assert!(r.new_epoch, "epoch rolled over");
    }

    #[test]
    fn epoch_state_deposit_and_fetch() {
        let mut s = ServerCore::new(&config());
        let (mut rings, _) = tcvs_crypto::setup_users([1; 32], 2, 3);
        for (u, ring) in rings.iter_mut().enumerate() {
            let sigma = tcvs_crypto::sha256(&[u as u8]);
            let payload = SignedEpochState::payload(u as u32, 3, &sigma, None, 0);
            s.store_epoch_state(SignedEpochState {
                user: u as u32,
                epoch: 3,
                sigma,
                last: None,
                ops: 0,
                sig: ring.sign(&payload).unwrap(),
            });
        }
        assert_eq!(s.epoch_states(3).len(), 2);
        assert!(s.epoch_states(2).is_empty());
    }

    #[test]
    fn metrics_accumulate() {
        let mut s = ServerCore::new(&config());
        s.process(0, &Op::Get(u64_key(0)), 0);
        s.process(1, &Op::Put(u64_key(0), vec![1]), 1);
        let m = s.metrics();
        assert_eq!(m.ops, 2);
        assert_eq!(m.msgs_out, 2);
        assert!(m.bytes_out > 0);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut s = ServerCore::new(&config());
        for i in 0..50u64 {
            s.process((i % 3) as u32, &Op::Put(u64_key(i), vec![i as u8]), i);
        }
        let snap = s.snapshot();
        let mut restored = ServerCore::restore(&snap).unwrap();
        assert_eq!(restored.root_digest(), s.root_digest());
        assert_eq!(restored.ctr(), s.ctr());
        assert_eq!(restored.last_user(), s.last_user());
        // Restored server continues producing identical state transitions.
        let op = Op::Put(u64_key(7), b"after restart".to_vec());
        let ra = s.process(0, &op, 100);
        let rb = restored.process(0, &op, 100);
        assert_eq!(ra.ctr, rb.ctr);
        assert_eq!(s.root_digest(), restored.root_digest());
    }

    #[test]
    fn corrupted_snapshot_rejected() {
        let mut s = ServerCore::new(&config());
        s.process(0, &Op::Put(u64_key(1), vec![1]), 0);
        let mut snap = s.snapshot();
        assert!(ServerCore::restore(&snap[..10]).is_err());
        // Flip a content byte: the digest re-verification must reject it.
        let idx = snap.len() - 5;
        snap[idx] ^= 0xFF;
        assert!(ServerCore::restore(&snap).is_err());
        assert!(ServerCore::restore(b"garbage").is_err());
    }

    #[test]
    fn crash_snapshot_preserves_deposits() {
        let (mut rings, _) = tcvs_crypto::setup_users([3; 32], 1, 4);
        let mut s = ServerCore::new(&config());
        s.process(0, &Op::Put(u64_key(1), vec![1]), 0);
        let root = s.root_digest();
        let payload = crate::state::signed_payload(&root, 1);
        s.store_signature(SignedState {
            signer: 0,
            root,
            ctr: 1,
            sig: rings[0].sign(&payload).unwrap(),
        });
        let sigma = tcvs_crypto::sha256(&[9]);
        let ep_payload = SignedEpochState::payload(0, 2, &sigma, None, 5);
        s.store_epoch_state(SignedEpochState {
            user: 0,
            epoch: 2,
            sigma,
            last: None,
            ops: 5,
            sig: rings[0].sign(&ep_payload).unwrap(),
        });

        let restored = ServerCore::crash_restore(&s.crash_snapshot()).unwrap();
        assert_eq!(restored.root_digest(), s.root_digest());
        assert_eq!(restored.ctr(), s.ctr());
        assert!(restored.last_sig.is_some(), "Protocol I deposit survives");
        assert_eq!(restored.epoch_states.len(), 1, "epoch deposits survive");
        assert_eq!(restored.user_epochs, s.user_epochs);
        assert_eq!(restored.metrics(), s.metrics());
    }

    #[test]
    fn crashed_honest_server_is_indistinguishable() {
        // A client that ran ops before the crash keeps verifying after it.
        let cfg = config();
        let mut s = HonestServer::new(&cfg);
        let root0 = s.core().root_digest();
        let mut alice = crate::Client2::new(0, &root0, cfg);
        for i in 0..5u64 {
            let op = Op::Put(u64_key(i), vec![i as u8]);
            let resp = s.handle_op(0, &op, i);
            alice.handle_response(&op, &resp).expect("honest");
        }
        s.crash_restart();
        for i in 5..10u64 {
            let op = Op::Get(u64_key(i - 5));
            let resp = s.handle_op(0, &op, i);
            alice
                .handle_response(&op, &resp)
                .expect("restart is not a deviation");
        }
    }

    #[test]
    fn plain_restore_drops_session_state_but_crash_restore_keeps_it() {
        let (mut rings, _) = tcvs_crypto::setup_users([4; 32], 1, 4);
        let mut s = ServerCore::new(&config());
        s.process(0, &Op::Put(u64_key(1), vec![1]), 0);
        let root = s.root_digest();
        let payload = crate::state::signed_payload(&root, 1);
        s.store_signature(SignedState {
            signer: 0,
            root,
            ctr: 1,
            sig: rings[0].sign(&payload).unwrap(),
        });
        let planned = ServerCore::restore(&s.snapshot()).unwrap();
        assert!(planned.last_sig.is_none(), "planned backup re-elects");
        let crashed = ServerCore::crash_restore(&s.crash_snapshot()).unwrap();
        assert!(crashed.last_sig.is_some(), "crash recovery keeps deposits");
    }

    #[test]
    fn crash_snapshot_freezes_the_flight_recorder_tail() {
        use tcvs_obs::{EventKind, Tracer};
        let mut s = HonestServer::new(&config());
        let (tracer, recorder) = Tracer::flight(4);
        s.attach_flight_recorder(Arc::clone(&recorder));
        for i in 0..10u64 {
            s.handle_op(0, &Op::Put(u64_key(i), vec![i as u8]), i);
            tracer.emit(|| Event::new(i, EventKind::OpServed, 0));
        }
        // The snapshot holds the ring's tail — the last `capacity` events.
        let snap = s.core().crash_snapshot();
        let ts: Vec<u64> = snap.flight_events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
        // The live ring keeps recording across a crash-restart.
        s.crash_restart();
        tracer.emit(|| Event::new(99, EventKind::OpServed, 0));
        let after = s.core().crash_snapshot();
        assert_eq!(after.flight_events().last().unwrap().t, 99);
        assert!(s.core().flight_recorder().is_some());
        // Without a recorder the capture is empty, not an error.
        let bare = ServerCore::new(&config());
        assert!(bare.crash_snapshot().flight_events().is_empty());
    }

    #[test]
    fn honest_server_implements_api() {
        let mut s = HonestServer::new(&config());
        let r = s.handle_op(0, &Op::Put(u64_key(9), vec![9]), 0);
        assert_eq!(r.ctr, 0);
        assert_eq!(s.metrics().ops, 1);
        assert!(s.fetch_checkpoint(0, 0).is_none());
    }

    mod pipelined {
        use super::*;
        use crate::Client1;

        fn pipeline_setup(n: u32) -> (Vec<Client1>, HonestServer) {
            let cfg = config();
            let (rings, registry) = tcvs_crypto::setup_users([0x55; 32], n, 8);
            let mut clients: Vec<Client1> = rings
                .into_iter()
                .map(|r| Client1::new(r, registry.clone(), cfg))
                .collect();
            let mut server = HonestServer::new(&cfg);
            let root0 = server.core().root_digest();
            let init = clients[0].sign_initial(&root0).unwrap();
            server.deposit_signature(0, init);
            (clients, server)
        }

        /// The full pipelined loop: both users' ops are served without the
        /// server ever waiting for a deposit; deposits are fed back with a
        /// round of lag, the backfills re-anchor every response, and every
        /// client verifies every answer.
        #[test]
        fn pipelined_serving_verifies_with_lagging_deposits() {
            let (mut clients, mut server) = pipeline_setup(2);
            // Each user's first op goes through the blocking path (no
            // anchor on file yet for user 1).
            assert!(server
                .handle_op_pipelined(1, 0, &Op::Get(u64_key(0)), 0, 64)
                .is_none());
            let op = Op::Put(u64_key(100), vec![1]);
            let resp = server.handle_op(1, &op, 0);
            let (_, dep) = clients[1].handle_response(&op, &resp).unwrap();
            server.deposit_signature(1, dep);

            let mut pending: Vec<(UserId, SignedState)> = Vec::new();
            for i in 0..20u64 {
                let u = (i % 2) as usize;
                let op = if i % 3 == 0 {
                    Op::Put(u64_key(i % 8), vec![i as u8])
                } else {
                    Op::Get(u64_key(i % 8))
                };
                let presp = server
                    .handle_op_pipelined(u as UserId, i, &op, i, 64)
                    .expect("anchored, batchable, within depth");
                let (_, dep) = clients[u]
                    .handle_pipelined_response(&op, &presp)
                    .expect("honest pipelined response verifies");
                // Deposits land one op late: the pipeline never drains
                // mid-run.
                pending.push((u as UserId, dep));
                if pending.len() > 1 {
                    let (du, dep) = pending.remove(0);
                    server.deposit_signature(du, dep);
                }
            }
            for (du, dep) in pending {
                server.deposit_signature(du, dep);
            }
            assert_eq!(server.deposit_lag(), 0, "drained pipeline catches up");
            let shares: Vec<crate::SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
            assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
        }

        #[test]
        fn pipelined_declines_without_side_effects() {
            let (mut clients, mut server) = pipeline_setup(2);
            let op = Op::Put(u64_key(1), vec![1]);
            let resp = server.handle_op(0, &op, 0);
            let (_, dep) = clients[0].handle_response(&op, &resp).unwrap();
            server.deposit_signature(0, dep);
            let ctr_before = server.core().ctr();

            // A non-batchable op is declined.
            assert!(server
                .handle_op_pipelined(0, 1, &Op::Delete(u64_key(1)), 1, 64)
                .is_none());
            // A user without an anchor on file is declined.
            assert!(server
                .handle_op_pipelined(1, 0, &Op::Get(u64_key(1)), 1, 64)
                .is_none());
            // An anchor lagging beyond the depth budget is declined: user
            // 0's anchor is 2 behind after two more ops by user 1.
            server.handle_op(1, &Op::Get(u64_key(1)), 1);
            server.handle_op(1, &Op::Get(u64_key(1)), 2);
            assert!(server
                .handle_op_pipelined(0, 2, &Op::Get(u64_key(1)), 3, 1)
                .is_none());
            assert_eq!(
                server.core().ctr(),
                ctr_before + 2,
                "declines execute nothing"
            );
            // Within depth, the same request is served.
            assert!(server
                .handle_op_pipelined(0, 2, &Op::Get(u64_key(1)), 3, 2)
                .is_some());
        }

        #[test]
        fn crash_restart_resets_pipelining_to_the_blocking_path() {
            let (mut clients, mut server) = pipeline_setup(1);
            let op = Op::Put(u64_key(1), vec![1]);
            let resp = server.handle_op(0, &op, 0);
            let (_, dep) = clients[0].handle_response(&op, &resp).unwrap();
            server.deposit_signature(0, dep);
            let op = Op::Get(u64_key(1));
            let presp = server
                .handle_op_pipelined(0, 1, &op, 1, 8)
                .expect("anchored");
            let (_, dep) = clients[0].handle_pipelined_response(&op, &presp).unwrap();
            // Drain the pipeline before the crash so the surviving stored
            // signature is current.
            server.deposit_signature(0, dep);
            server.crash_restart();
            assert_eq!(server.deposit_lag(), 0);
            assert!(
                server
                    .handle_op_pipelined(0, 2, &Op::Get(u64_key(1)), 2, 8)
                    .is_none(),
                "anchors are volatile: fall back until the next deposit"
            );
            // The blocking path still verifies after the crash (the stored
            // signature survived), and its deposit re-arms pipelining.
            let op = Op::Get(u64_key(1));
            let resp = server.handle_op(0, &op, 2);
            let (_, dep) = clients[0].handle_response(&op, &resp).unwrap();
            server.deposit_signature(0, dep);
            assert!(server
                .handle_op_pipelined(0, 3, &Op::Get(u64_key(1)), 3, 8)
                .is_some());
        }

        /// A batch window invalidates the recorded history; pipelined users
        /// fall back (their anchors predate `hist_start`) instead of being
        /// served a hole-y backfill.
        #[test]
        fn batch_windows_invalidate_pipelining_history() {
            let (mut clients, mut server) = pipeline_setup(1);
            let op = Op::Put(u64_key(1), vec![1]);
            let resp = server.handle_op(0, &op, 0);
            let (_, dep) = clients[0].handle_response(&op, &resp).unwrap();
            server.deposit_signature(0, dep);
            server
                .handle_op_batch(9, 0, &[Op::Put(u64_key(2), vec![2])], 1)
                .unwrap();
            assert!(server
                .handle_op_pipelined(0, 1, &Op::Get(u64_key(2)), 2, 64)
                .is_none());
        }
    }
}
