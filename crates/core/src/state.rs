//! State tokens: the hash values the protocols accumulate and sign.
//!
//! * Protocol I signs `h(M(D) ‖ ctr)` — [`signed_payload`].
//! * Protocols II/III accumulate `h(M(D) ‖ ctr ‖ user)` — [`state_token`] —
//!   where `user` tags who performed the transition *into* this state. The
//!   tag is what defeats the replay of Fig. 3 (Lemma 4.1: it forces
//!   in-degree ≤ 1 in the state graph).
//! * The naive strawman of §4.3 uses the untagged [`untagged_token`].
//!
//! The initial database state carries the reserved [`NO_USER`] tag (the
//! paper writes `h(M(D₀) ‖ 0)` / `h(M(D₀) ‖ 1)` inconsistently; we fix the
//! convention as `ctr = 0`, `user = NO_USER`).

use tcvs_crypto::{hash_parts, Digest, UserId, NO_USER};

use crate::types::Ctr;

/// Protocol II/III state token `h(M(D) ‖ ctr ‖ user)`.
pub fn state_token(root: &Digest, ctr: Ctr, user: UserId) -> Digest {
    hash_parts(&[
        b"tcvs-state",
        root.as_bytes(),
        &ctr.to_be_bytes(),
        &user.to_be_bytes(),
    ])
}

/// The token of the initial database state `D₀`.
pub fn initial_token(root0: &Digest) -> Digest {
    state_token(root0, 0, NO_USER)
}

/// Protocol I signing payload `h(M(D) ‖ ctr)`.
pub fn signed_payload(root: &Digest, ctr: Ctr) -> Digest {
    hash_parts(&[b"tcvs-signed-state", root.as_bytes(), &ctr.to_be_bytes()])
}

/// Untagged token `h(M(D) ‖ ctr)` used by the naive-XOR strawman (§4.3's
/// "first attempt", defeated in Fig. 3).
pub fn untagged_token(root: &Digest, ctr: Ctr) -> Digest {
    hash_parts(&[b"tcvs-naive-state", root.as_bytes(), &ctr.to_be_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::sha256;

    #[test]
    fn tokens_bind_all_components() {
        let r1 = sha256(b"root1");
        let r2 = sha256(b"root2");
        let base = state_token(&r1, 5, 2);
        assert_ne!(base, state_token(&r2, 5, 2), "binds root");
        assert_ne!(base, state_token(&r1, 6, 2), "binds ctr");
        assert_ne!(base, state_token(&r1, 5, 3), "binds user");
    }

    #[test]
    fn token_domains_are_separated() {
        let r = sha256(b"root");
        // Even with the same logical inputs, the three token families differ.
        assert_ne!(state_token(&r, 1, NO_USER), untagged_token(&r, 1));
        assert_ne!(signed_payload(&r, 1), untagged_token(&r, 1));
    }

    #[test]
    fn initial_token_uses_reserved_tag() {
        let r = sha256(b"root0");
        assert_eq!(initial_token(&r), state_token(&r, 0, NO_USER));
    }

    #[test]
    fn tokens_are_deterministic() {
        let r = sha256(b"r");
        assert_eq!(state_token(&r, 9, 1), state_token(&r, 9, 1));
        assert_eq!(signed_payload(&r, 9), signed_payload(&r, 9));
    }
}
