//! The counter-reuse attack from the proof of Theorem 4.1: the server
//! presents the same counter value (and previous-user tag) for two
//! consecutive operations, hoping to hide one increment.
//!
//! Protocol I detects this at the very next operation (the stored signature
//! no longer matches the presented state), and the lost increment also shows
//! up at sync-up (`gctr ≠ Σ lctr`). Protocol II detects it at sync-up via
//! the state graph (in-degree 2 at one node, Lemma 4.1) — or immediately if
//! both operations came from the same user (counter monotonicity).

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::ProtocolConfig;

use super::{delegate_deposits_to_core, Trigger};

/// A server that skips one counter increment at the trigger.
pub struct CounterSkipServer {
    core: ServerCore,
    trigger: Trigger,
    skipped: bool,
}

impl CounterSkipServer {
    /// Creates a counter-skip server.
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> CounterSkipServer {
        CounterSkipServer {
            core: ServerCore::new(config),
            trigger,
            skipped: false,
        }
    }

    /// True iff the skip already happened.
    pub fn skipped(&self) -> bool {
        self.skipped
    }
}

impl ServerApi for CounterSkipServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        if !self.skipped && self.trigger.fires(self.core.ctr()) {
            self.skipped = true;
            let ctr = self.core.ctr();
            let last = self.core.last_user();
            let resp = self.core.process(user, op, round);
            // Apply the operation but pretend the counter never moved.
            self.core.set_counter_state(ctr, last);
            return resp;
        }
        self.core.process(user, op, round)
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn counter_repeats_once() {
        let mut s = CounterSkipServer::new(&config(), Trigger::AtCtr(1));
        let r0 = s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        let r1 = s.handle_op(1, &Op::Put(u64_key(2), vec![2]), 1); // skipped
        let r2 = s.handle_op(2, &Op::Get(u64_key(2)), 2);
        assert_eq!(r0.ctr, 0);
        assert_eq!(r1.ctr, 1);
        assert_eq!(r2.ctr, 1, "ctr value 1 presented twice");
        // The database did advance: key 2 is visible.
        assert_eq!(r2.result, tcvs_merkle::OpResult::Value(Some(vec![2])));
        // And the stale last_user tag is presented again.
        assert_eq!(r1.last_user, r2.last_user);
    }

    #[test]
    fn only_one_skip() {
        let mut s = CounterSkipServer::new(&config(), Trigger::AtCtr(0));
        let r0 = s.handle_op(0, &Op::Get(u64_key(0)), 0); // skipped
        let r1 = s.handle_op(0, &Op::Get(u64_key(0)), 1);
        let r2 = s.handle_op(0, &Op::Get(u64_key(0)), 2);
        assert_eq!((r0.ctr, r1.ctr, r2.ctr), (0, 0, 1));
    }
}
