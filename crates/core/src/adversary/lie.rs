//! The lying-answer attack: the server returns an answer inconsistent with
//! the authenticated state — the crudest integrity violation, and the one
//! the Merkle verification object defeats single-handedly (§4.1): the
//! client's replay disagrees immediately.

use tcvs_crypto::UserId;
use tcvs_merkle::{Op, OpResult};

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::ProtocolConfig;

use super::{delegate_deposits_to_core, Trigger};

/// A server that forges one answer at the trigger.
pub struct LieServer {
    core: ServerCore,
    trigger: Trigger,
    lied: bool,
}

impl LieServer {
    /// Creates a lie server.
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> LieServer {
        LieServer {
            core: ServerCore::new(config),
            trigger,
            lied: false,
        }
    }

    /// True iff the forged answer was already served.
    pub fn lied(&self) -> bool {
        self.lied
    }
}

impl ServerApi for LieServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        let mut resp = self.core.process(user, op, round);
        if !self.lied && self.trigger.fires(resp.ctr) {
            self.lied = true;
            resp.result = match resp.result {
                OpResult::Value(_) => OpResult::Value(Some(b"forged".to_vec())),
                OpResult::Entries(mut es) => {
                    es.push((b"forged-key".to_vec(), b"forged".to_vec()));
                    OpResult::Entries(es)
                }
                OpResult::Replaced(_) => OpResult::Replaced(Some(b"forged".to_vec())),
                OpResult::Deleted(_) => OpResult::Deleted(Some(b"forged".to_vec())),
            };
        }
        resp
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn forged_answer_fails_replay() {
        let mut s = LieServer::new(&config(), Trigger::AtCtr(0));
        let op = Op::Get(u64_key(42));
        let r = s.handle_op(0, &op, 0);
        assert!(s.lied());
        let err = tcvs_merkle::replay_unanchored(4, &r.vo, &op, Some(&r.result)).unwrap_err();
        assert_eq!(err, tcvs_merkle::VerifyError::AnswerMismatch);
    }

    #[test]
    fn lies_only_once() {
        let mut s = LieServer::new(&config(), Trigger::AtCtr(0));
        let op = Op::Get(u64_key(1));
        s.handle_op(0, &op, 0); // lie
        let r = s.handle_op(0, &op, 1);
        assert!(tcvs_merkle::replay_unanchored(4, &r.vo, &op, Some(&r.result)).is_ok());
    }
}
