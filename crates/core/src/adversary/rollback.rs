//! The rollback (full replay) attack: the server rewinds the database to an
//! earlier state and serves everyone from there, erasing a suffix of
//! committed operations.

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::{Ctr, ProtocolConfig};

use super::{delegate_deposits_to_core, Trigger};

/// A server that snapshots its state when the trigger fires and rolls back
/// to that snapshot `lag` operations later.
pub struct RollbackServer {
    core: ServerCore,
    trigger: Trigger,
    snapshot: Option<ServerCore>,
    rollback_after: Ctr,
    rolled_back: bool,
    /// Operations to run past the snapshot before rewinding.
    lag: Ctr,
}

impl RollbackServer {
    /// Creates a rollback server (default lag: 3 operations).
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> RollbackServer {
        RollbackServer::with_lag(config, trigger, 3)
    }

    /// Creates a rollback server that rewinds `lag` operations of history.
    pub fn with_lag(config: &ProtocolConfig, trigger: Trigger, lag: Ctr) -> RollbackServer {
        RollbackServer {
            core: ServerCore::new(config),
            trigger,
            snapshot: None,
            rollback_after: 0,
            rolled_back: false,
            lag,
        }
    }

    /// True iff the rewind already happened.
    pub fn rolled_back(&self) -> bool {
        self.rolled_back
    }
}

impl ServerApi for RollbackServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        if self.snapshot.is_none() && self.trigger.fires(self.core.ctr()) {
            self.snapshot = Some(self.core.clone());
            self.rollback_after = self.core.ctr() + self.lag;
        }
        if !self.rolled_back {
            if let Some(snap) = &self.snapshot {
                if self.core.ctr() >= self.rollback_after {
                    self.core = snap.clone();
                    self.rolled_back = true;
                }
            }
        }
        self.core.process(user, op, round)
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::{u64_key, OpResult};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn history_suffix_vanishes() {
        let mut s = RollbackServer::with_lag(&config(), Trigger::AtCtr(1), 2);
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        // Snapshot taken at ctr 1 (before these ops).
        s.handle_op(0, &Op::Put(u64_key(2), vec![2]), 1);
        s.handle_op(0, &Op::Put(u64_key(3), vec![3]), 2);
        // ctr reached 3 >= 1+2: next op is served from the snapshot.
        let r = s.handle_op(1, &Op::Get(u64_key(2)), 3);
        assert!(s.rolled_back());
        assert_eq!(r.result, OpResult::Value(None), "key 2 was erased");
        assert_eq!(r.ctr, 1, "counter rewound to snapshot");
    }

    #[test]
    fn never_trigger_never_rolls_back() {
        let mut s = RollbackServer::new(&config(), Trigger::Never);
        for i in 0..10 {
            s.handle_op(0, &Op::Put(u64_key(i), vec![i as u8]), i);
        }
        assert!(!s.rolled_back());
        let r = s.handle_op(0, &Op::Get(u64_key(5)), 10);
        assert_eq!(r.result, OpResult::Value(Some(vec![5])));
    }
}
