//! The tamper attack: the server silently edits stored data with no user
//! operation — the "single-user integrity violation" of §1.

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::ProtocolConfig;

use super::{delegate_deposits_to_core, Trigger};

/// A server that injects a backdoor value once the trigger fires.
pub struct TamperServer {
    core: ServerCore,
    trigger: Trigger,
    tampered: bool,
    key: Vec<u8>,
    value: Vec<u8>,
}

impl TamperServer {
    /// Creates a tamper server that will plant `"backdoor" = "pwned"`.
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> TamperServer {
        TamperServer::with_payload(config, trigger, b"backdoor".to_vec(), b"pwned".to_vec())
    }

    /// Creates a tamper server with a chosen payload.
    pub fn with_payload(
        config: &ProtocolConfig,
        trigger: Trigger,
        key: Vec<u8>,
        value: Vec<u8>,
    ) -> TamperServer {
        TamperServer {
            core: ServerCore::new(config),
            trigger,
            tampered: false,
            key,
            value,
        }
    }

    /// True iff the silent edit already happened.
    pub fn tampered(&self) -> bool {
        self.tampered
    }
}

impl ServerApi for TamperServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        if !self.tampered && self.trigger.fires(self.core.ctr()) {
            self.tampered = true;
            self.core
                .db_mut()
                .insert(self.key.clone(), self.value.clone())
                .expect("full tree");
        }
        self.core.process(user, op, round)
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn tamper_changes_root_without_an_operation() {
        let mut s = TamperServer::new(&config(), Trigger::AtCtr(1));
        let r0 = s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        // Tamper fires before the next op is processed.
        let op = Op::Get(u64_key(1));
        let r1 = s.handle_op(0, &op, 1);
        assert!(s.tampered());
        // The old root the second proof commits to is NOT the new root the
        // first op produced: the chain is broken.
        let (_, v0) = tcvs_merkle::replay_unanchored(
            4,
            &r0.vo,
            &Op::Put(u64_key(1), vec![1]),
            Some(&r0.result),
        )
        .unwrap();
        let (old1, _) = tcvs_merkle::replay_unanchored(4, &r1.vo, &op, Some(&r1.result)).unwrap();
        assert_ne!(v0.new_root, old1, "tamper broke the state chain");
    }

    #[test]
    fn backdoor_readable_after_tamper() {
        let mut s = TamperServer::new(&config(), Trigger::AtCtr(0));
        let r = s.handle_op(0, &Op::Get(b"backdoor".to_vec()), 0);
        assert_eq!(
            r.result,
            tcvs_merkle::OpResult::Value(Some(b"pwned".to_vec()))
        );
    }
}
