//! Malicious-server behaviours.
//!
//! Each adversary wraps one or more honest [`crate::ServerCore`]s and deviates in a
//! specific, paper-motivated way:
//!
//! | Adversary | Paper artifact | Violation |
//! |---|---|---|
//! | [`ForkServer`] | Fig. 1, §3 | partition attack: two user groups see divergent histories |
//! | [`DropServer`] | §1 "single-user availability" / Fig. 3 setup | acknowledges one update but never applies it |
//! | [`RollbackServer`] | replay of stale states | rewinds the database to an earlier state for everyone |
//! | [`TamperServer`] | §1 "single-user integrity" | silently edits stored data with no user operation |
//! | [`CounterSkipServer`] | Thm. 4.1 proof scenario | presents the same counter value for two operations |
//! | [`LieServer`] | §4.1 | returns an answer inconsistent with the authenticated state |
//! | [`StaleReadServer`] | freshness violation | serves reads from a frozen snapshot while applying writes |
//!
//! All implement [`ServerApi`], so the simulator can swap them in for the
//! honest server without clients knowing.

mod counter_skip;
mod drop_op;
mod fork;
mod lie;
mod rollback;
mod stale_read;
mod tamper;

pub use counter_skip::CounterSkipServer;
pub use drop_op::DropServer;
pub use fork::ForkServer;
pub use lie::LieServer;
pub use rollback::RollbackServer;
pub use stale_read::StaleReadServer;
pub use tamper::TamperServer;

use crate::server::ServerApi;
use crate::types::Ctr;

/// When an adversary switches from honest behaviour to its attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Attack when the server's operation counter reaches this value.
    AtCtr(Ctr),
    /// Never attack (behaves honestly; useful as a control).
    Never,
}

impl Trigger {
    /// True iff the attack should be active at counter `ctr`.
    pub fn fires(&self, ctr: Ctr) -> bool {
        match self {
            Trigger::AtCtr(t) => ctr >= *t,
            Trigger::Never => false,
        }
    }
}

/// Boxed adversary constructor table used by the experiments: name → server.
pub fn all_adversaries(
    config: &crate::types::ProtocolConfig,
    trigger: Trigger,
    n_users: u32,
) -> Vec<(&'static str, Box<dyn ServerApi>)> {
    let half: Vec<u32> = (0..n_users / 2).collect();
    vec![
        (
            "fork",
            Box::new(ForkServer::new(config, trigger, &half)) as Box<dyn ServerApi>,
        ),
        ("drop", Box::new(DropServer::new(config, trigger))),
        ("rollback", Box::new(RollbackServer::new(config, trigger))),
        ("tamper", Box::new(TamperServer::new(config, trigger))),
        (
            "counter-skip",
            Box::new(CounterSkipServer::new(config, trigger)),
        ),
        ("lie", Box::new(LieServer::new(config, trigger))),
        (
            "stale-read",
            Box::new(StaleReadServer::new(config, trigger)),
        ),
    ]
}

/// Shared plumbing: delegate the non-op parts of [`ServerApi`] to a single
/// inner core. (Adversaries with multiple branches implement routing
/// themselves.)
macro_rules! delegate_deposits_to_core {
    ($field:ident) => {
        fn deposit_signature(&mut self, _user: tcvs_crypto::UserId, s: crate::msg::SignedState) {
            self.$field.store_signature(s);
        }
        fn deposit_epoch_state(&mut self, s: crate::msg::SignedEpochState) {
            self.$field.store_epoch_state(s);
        }
        fn fetch_epoch_states(
            &mut self,
            _requester: tcvs_crypto::UserId,
            epoch: crate::types::Epoch,
        ) -> Vec<crate::msg::SignedEpochState> {
            self.$field.epoch_states(epoch)
        }
        fn deposit_checkpoint(&mut self, c: crate::msg::SignedCheckpoint) {
            self.$field.store_checkpoint(c);
        }
        fn fetch_checkpoint(
            &mut self,
            _requester: tcvs_crypto::UserId,
            epoch: crate::types::Epoch,
        ) -> Option<crate::msg::SignedCheckpoint> {
            self.$field.checkpoint(epoch)
        }
        fn metrics(&self) -> crate::server::ServerMetrics {
            self.$field.metrics()
        }
    };
}
pub(crate) use delegate_deposits_to_core;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_semantics() {
        assert!(!Trigger::AtCtr(5).fires(4));
        assert!(Trigger::AtCtr(5).fires(5));
        assert!(Trigger::AtCtr(5).fires(6));
        assert!(!Trigger::Never.fires(u64::MAX));
    }

    #[test]
    fn adversary_table_covers_all_six() {
        let config = crate::types::ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        };
        let advs = all_adversaries(&config, Trigger::AtCtr(3), 4);
        let names: Vec<_> = advs.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "fork",
                "drop",
                "rollback",
                "tamper",
                "counter-skip",
                "lie",
                "stale-read"
            ]
        );
    }
}
