//! The partition (fork) attack of Fig. 1 / §3.
//!
//! Until the trigger, the server is honest. At the trigger it silently
//! clones the database: group A users continue on branch A, everyone else
//! on branch B. Each branch is *internally* perfectly consistent — every
//! per-operation check passes — so without external communication the two
//! groups can never notice that they have diverged (Theorem 3.1). The
//! broadcast sync-up (Protocols I/II) or the epoch audit (Protocol III) is
//! what exposes the fork.

use std::collections::BTreeSet;

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::{ServerResponse, SignedCheckpoint, SignedEpochState, SignedState};
use crate::server::{ServerApi, ServerCore, ServerMetrics};
use crate::types::{Epoch, ProtocolConfig};

use super::Trigger;

/// A server mounting the partition attack.
pub struct ForkServer {
    branch_a: ServerCore,
    branch_b: Option<ServerCore>,
    group_a: BTreeSet<UserId>,
    trigger: Trigger,
}

impl ForkServer {
    /// Creates a fork server; users in `group_a` stay on branch A after the
    /// trigger fires, all others move to branch B.
    pub fn new(config: &ProtocolConfig, trigger: Trigger, group_a: &[UserId]) -> ForkServer {
        ForkServer {
            branch_a: ServerCore::new(config),
            branch_b: None,
            group_a: group_a.iter().copied().collect(),
            trigger,
        }
    }

    /// True iff the database has already been forked.
    pub fn forked(&self) -> bool {
        self.branch_b.is_some()
    }

    fn maybe_fork(&mut self) {
        if self.branch_b.is_none() && self.trigger.fires(self.branch_a.ctr()) {
            self.branch_b = Some(self.branch_a.clone());
        }
    }

    fn branch_for(&mut self, user: UserId) -> &mut ServerCore {
        match &mut self.branch_b {
            Some(b) if !self.group_a.contains(&user) => b,
            _ => &mut self.branch_a,
        }
    }
}

impl ServerApi for ForkServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        self.maybe_fork();
        self.branch_for(user).process(user, op, round)
    }

    fn deposit_signature(&mut self, user: UserId, s: SignedState) {
        self.branch_for(user).store_signature(s);
    }

    fn deposit_epoch_state(&mut self, s: SignedEpochState) {
        let user = s.user;
        self.branch_for(user).store_epoch_state(s);
    }

    fn fetch_epoch_states(&mut self, requester: UserId, epoch: Epoch) -> Vec<SignedEpochState> {
        self.branch_for(requester).epoch_states(epoch)
    }

    fn deposit_checkpoint(&mut self, c: SignedCheckpoint) {
        let user = c.checker;
        self.branch_for(user).store_checkpoint(c);
    }

    fn fetch_checkpoint(&mut self, requester: UserId, epoch: Epoch) -> Option<SignedCheckpoint> {
        self.branch_for(requester).checkpoint(epoch)
    }

    fn metrics(&self) -> ServerMetrics {
        let mut m = self.branch_a.metrics();
        if let Some(b) = &self.branch_b {
            let mb = b.metrics();
            m.ops += mb.ops;
            m.msgs_in += mb.msgs_in;
            m.msgs_out += mb.msgs_out;
            m.bytes_out += mb.bytes_out;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn pre_fork_everyone_shares_one_history() {
        let mut s = ForkServer::new(&config(), Trigger::AtCtr(100), &[0]);
        let r0 = s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        let r1 = s.handle_op(1, &Op::Get(u64_key(1)), 1);
        assert_eq!(r0.ctr, 0);
        assert_eq!(r1.ctr, 1);
        assert_eq!(r1.last_user, 0);
        assert!(!s.forked());
    }

    #[test]
    fn post_fork_branches_diverge_silently() {
        let mut s = ForkServer::new(&config(), Trigger::AtCtr(2), &[0]);
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        s.handle_op(1, &Op::Get(u64_key(1)), 1);
        // Trigger fires at ctr 2: user 0 writes on branch A.
        let ra = s.handle_op(0, &Op::Put(u64_key(9), vec![9]), 2);
        assert!(s.forked());
        assert_eq!(ra.ctr, 2);
        // User 1's next op lands on branch B, which never saw key 9 and
        // whose counter continues from the fork point — internally valid.
        let rb = s.handle_op(1, &Op::Get(u64_key(9)), 3);
        assert_eq!(rb.ctr, 2, "branch B counter continues from fork point");
        assert_eq!(rb.result, tcvs_merkle::OpResult::Value(None));
    }

    #[test]
    fn branches_remain_internally_consistent() {
        // Each branch's responses still verify as a correct chain: the
        // per-operation replay cannot expose the fork.
        let mut s = ForkServer::new(&config(), Trigger::AtCtr(1), &[0]);
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        let op = Op::Put(u64_key(2), vec![2]);
        let r = s.handle_op(1, &op, 1); // branch B
        let (_, verified) = tcvs_merkle::replay_unanchored(4, &r.vo, &op, Some(&r.result)).unwrap();
        // Next B op chains from that new root.
        let op2 = Op::Get(u64_key(2));
        let r2 = s.handle_op(1, &op2, 2);
        let (old_root, _) =
            tcvs_merkle::replay_unanchored(4, &r2.vo, &op2, Some(&r2.result)).unwrap();
        assert_eq!(old_root, verified.new_root);
    }

    #[test]
    fn never_trigger_stays_honest() {
        let mut s = ForkServer::new(&config(), Trigger::Never, &[0]);
        for i in 0..20 {
            s.handle_op((i % 3) as u32, &Op::Put(u64_key(i), vec![i as u8]), i);
        }
        assert!(!s.forked());
        assert_eq!(s.metrics().ops, 20);
    }
}
