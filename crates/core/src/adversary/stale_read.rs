//! The stale-read attack: after the trigger, the server answers *read*
//! operations from an old snapshot (complete with the old counter and, for
//! Protocol I, the old — perfectly legitimate — signature it archived),
//! while applying updates to the live database honestly.
//!
//! This models a freshness violation rather than a data forgery: every
//! stale response is internally consistent and was once true. Protocol II's
//! counter-monotonicity check catches a victim's *second* stale read (or
//! the first one after the victim has advanced); Protocol I has no per-op
//! counter check — the paper's protocol relies on the sync-up, where the
//! duplicated counting shows up in `gctr ≠ Σ lctr`.

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::ProtocolConfig;

use super::{delegate_deposits_to_core, Trigger};

/// A server that freezes reads at a snapshot once the trigger fires.
pub struct StaleReadServer {
    core: ServerCore,
    trigger: Trigger,
    snapshot: Option<ServerCore>,
}

impl StaleReadServer {
    /// Creates a stale-read server.
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> StaleReadServer {
        StaleReadServer {
            core: ServerCore::new(config),
            trigger,
            snapshot: None,
        }
    }

    /// True iff reads are being served stale already.
    pub fn frozen(&self) -> bool {
        self.snapshot.is_some()
    }
}

impl ServerApi for StaleReadServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        if self.snapshot.is_none() && self.trigger.fires(self.core.ctr()) {
            self.snapshot = Some(self.core.clone());
        }
        match (&mut self.snapshot, op.is_update()) {
            (Some(snap), false) => {
                // Serve the read from the frozen past. Cloning keeps the
                // snapshot replayable for every victim.
                let mut stale = snap.clone();
                stale.process(user, op, round)
            }
            _ => self.core.process(user, op, round),
        }
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::{u64_key, OpResult};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn reads_freeze_but_writes_proceed() {
        let mut s = StaleReadServer::new(&config(), Trigger::AtCtr(1));
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        // Frozen from here: write goes through...
        let r = s.handle_op(0, &Op::Put(u64_key(1), vec![2]), 1);
        assert_eq!(r.ctr, 1);
        assert!(s.frozen());
        // ...but the read shows the old value and the old counter.
        let r = s.handle_op(1, &Op::Get(u64_key(1)), 2);
        assert_eq!(r.result, OpResult::Value(Some(vec![1])), "stale value");
        assert_eq!(r.ctr, 1, "stale counter");
    }

    #[test]
    fn every_stale_read_replays_the_same_counter() {
        let mut s = StaleReadServer::new(&config(), Trigger::AtCtr(1));
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        let r1 = s.handle_op(1, &Op::Get(u64_key(1)), 1);
        let r2 = s.handle_op(2, &Op::Get(u64_key(1)), 2);
        assert_eq!(r1.ctr, r2.ctr, "both victims see the same frozen ctr");
    }

    #[test]
    fn protocol2_client_detects_on_second_stale_read() {
        use crate::client2::tests_support::fresh_client;
        let cfg = config();
        let mut server = StaleReadServer::new(&cfg, Trigger::AtCtr(1));
        let mut c = fresh_client(0, &cfg);
        // op 0: honest put.
        let op = Op::Put(u64_key(1), vec![1]);
        let resp = server.handle_op(0, &op, 0);
        c.handle_response(&op, &resp).unwrap();
        // op 1: stale read — ctr repeats what the client already advanced
        // past (gctr = 1, stale ctr = 1 is still acceptable ≥ gctr? No:
        // frozen ctr equals the client's gctr here, so the FIRST stale read
        // passes; the second one regresses).
        let op = Op::Get(u64_key(1));
        let resp = server.handle_op(0, &op, 1);
        c.handle_response(&op, &resp).unwrap();
        let resp = server.handle_op(0, &op, 2);
        assert!(matches!(
            c.handle_response(&op, &resp),
            Err(crate::types::Deviation::CounterRegression { .. })
        ));
    }
}
