//! The drop attack: the server acknowledges one update but never applies it.
//!
//! At the trigger, the victim's operation is processed on a throwaway clone
//! of the database — the victim receives a perfectly valid-looking response
//! (proof, counter, answer) — while the real database is left untouched.
//! This is the "single-user availability violation" of §1, and it is also
//! the mechanism behind the Fig. 3 replay scenario: if another user later
//! issues an identical update, the untagged XOR strawman cancels the two
//! and misses the drop, while Protocol II's user tags expose it.

use tcvs_crypto::UserId;
use tcvs_merkle::Op;

use crate::msg::ServerResponse;
use crate::server::{ServerApi, ServerCore};
use crate::types::ProtocolConfig;

use super::{delegate_deposits_to_core, Trigger};

/// A server that drops exactly one operation (the one at the trigger).
pub struct DropServer {
    core: ServerCore,
    trigger: Trigger,
    dropped: bool,
}

impl DropServer {
    /// Creates a drop server.
    pub fn new(config: &ProtocolConfig, trigger: Trigger) -> DropServer {
        DropServer {
            core: ServerCore::new(config),
            trigger,
            dropped: false,
        }
    }

    /// True iff the drop already happened.
    pub fn dropped(&self) -> bool {
        self.dropped
    }
}

impl ServerApi for DropServer {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        if !self.dropped && self.trigger.fires(self.core.ctr()) && op.is_update() {
            self.dropped = true;
            // Serve from a throwaway clone; the real core never applies it.
            let mut scratch = self.core.clone();
            return scratch.process(user, op, round);
        }
        self.core.process(user, op, round)
    }

    delegate_deposits_to_core!(core);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::{u64_key, OpResult};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    #[test]
    fn dropped_update_invisible_to_others() {
        let mut s = DropServer::new(&config(), Trigger::AtCtr(1));
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0);
        // Victim's update at ctr 1: acknowledged but dropped.
        let r = s.handle_op(1, &Op::Put(u64_key(2), vec![2]), 1);
        assert_eq!(r.ctr, 1);
        assert_eq!(r.result, OpResult::Replaced(None));
        assert!(s.dropped());
        // A later reader never sees key 2, and the counter shows the drop's
        // shadow: it is still 1.
        let r = s.handle_op(0, &Op::Get(u64_key(2)), 2);
        assert_eq!(r.ctr, 1);
        assert_eq!(r.result, OpResult::Value(None));
    }

    #[test]
    fn only_one_drop_happens() {
        let mut s = DropServer::new(&config(), Trigger::AtCtr(0));
        s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 0); // dropped
        s.handle_op(0, &Op::Put(u64_key(3), vec![3]), 1); // applied
        let r = s.handle_op(1, &Op::Get(u64_key(3)), 2);
        assert_eq!(r.result, OpResult::Value(Some(vec![3])));
    }

    #[test]
    fn reads_are_never_dropped() {
        let mut s = DropServer::new(&config(), Trigger::AtCtr(0));
        let r = s.handle_op(0, &Op::Get(u64_key(1)), 0);
        assert_eq!(r.ctr, 0);
        assert!(!s.dropped(), "drop waits for an update");
        let r = s.handle_op(0, &Op::Put(u64_key(1), vec![1]), 1);
        assert_eq!(r.ctr, 1);
        assert!(s.dropped());
    }
}
