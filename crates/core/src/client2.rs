//! Protocol II client (§4.3): signature-free XOR state accumulators.
//!
//! Per operation, the server returns `(Q(D), v(Q,D), ctr, j)` — no
//! signature, no extra blocking message. The client maintains
//!
//! * `σᵢ` — XOR of every state token it has witnessed, where a state token
//!   is `h(M(D) ‖ ctr ‖ user)` with `user` the user who *created* the state
//!   (the tag that forces in-degree ≤ 1 in the state graph, Lemma 4.1, and
//!   defeats the Fig. 3 replay that breaks the untagged strawman);
//! * `lastᵢ` — the most recent state token it created;
//! * `gctrᵢ` — the last seen counter + 1 (counter must be strictly
//!   increasing across this user's operations);
//! * `lctrᵢ` — its own operation count (sync-up trigger).
//!
//! At sync-up all users broadcast `σᵢ`; in an honest run every intermediate
//! state token appears exactly twice (once created, once consumed) and
//! cancels, leaving `initial ⊕ final`. Exactly the user who performed the
//! final operation finds `initial ⊕ lastᵢ == ⊕ₖ σₖ` and announces success.
//!
//! Note: the paper's step 4 reads "error if `ctr ≤ gctrᵢ`", which would
//! reject a user's own back-to-back operations (its step 6 sets
//! `gctrᵢ = ctr + 1`); we implement the evidently intended check
//! `ctr < gctrᵢ` ⇒ error.

use tcvs_crypto::{Digest, UserId};
use tcvs_merkle::{replay_batch_unanchored, replay_unanchored, Op, OpResult};
use tcvs_obs::{stage, Event, EventKind, SpanContext, Tracer};

use crate::forensics::{LoggedTransition, TransitionLog};
use crate::msg::{BatchResponse, ServerResponse, SyncShare};
use crate::state::{initial_token, state_token};
use crate::types::{Ctr, Deviation, ProtocolConfig};

/// Protocol II client state machine. Constant-size state (§2.2.5).
pub struct Client2 {
    user: UserId,
    config: ProtocolConfig,
    /// Token of the initial database state (common knowledge).
    initial: Digest,
    /// XOR accumulator `σᵢ`.
    sigma: Digest,
    /// Last state token created by this user.
    last: Option<Digest>,
    /// Last seen counter + 1.
    gctr: Ctr,
    /// Own operation count.
    lctr: u64,
    ops_since_sync: u64,
    /// Optional transition log for post-mortem fault localization (the
    /// future-work extension in [`crate::forensics`]). `None` keeps the
    /// paper's constant-memory guarantee (§2.2.5).
    log: Option<TransitionLog>,
    /// Event tracer (disabled by default; see [`Client2::set_tracer`]).
    tracer: Tracer,
    /// Trace context of the operation currently being verified (set by the
    /// transport layer before `handle_response`); emitted events link to it.
    current_span: Option<SpanContext>,
}

impl Client2 {
    /// Creates a client knowing the initial root digest `M(D₀)`.
    pub fn new(user: UserId, root0: &Digest, config: ProtocolConfig) -> Client2 {
        Client2 {
            user,
            config,
            initial: initial_token(root0),
            sigma: Digest::ZERO,
            last: None,
            gctr: 0,
            lctr: 0,
            ops_since_sync: 0,
            log: None,
            tracer: Tracer::disabled(),
            current_span: None,
        }
    }

    /// A session that joins **mid-history**, anchored at a published state
    /// `(root, ctr, last_user)` — e.g. a grove epoch, or a server restored
    /// by verified state sync.
    ///
    /// The σ fold telescopes from the join-point state token instead of
    /// the genesis token: at sync-up, `initial ⊕ lastᵢ` cancels exactly the
    /// transitions witnessed *since the join*, so a late joiner (or a
    /// client rejoining a bootstrapped shard) evaluates the Protocol II
    /// predicate over its own era without replaying history. The join
    /// anchor must come from a trusted source (a published epoch the user
    /// verified, or the anchor of a verified bootstrap); joining at a lie
    /// surfaces as a failed sync-up, same as any fork.
    pub fn join(
        user: UserId,
        root: &Digest,
        ctr: Ctr,
        last_user: UserId,
        config: ProtocolConfig,
    ) -> Client2 {
        Client2 {
            user,
            config,
            initial: state_token(root, ctr, last_user),
            sigma: Digest::ZERO,
            last: None,
            gctr: ctr,
            lctr: 0,
            ops_since_sync: 0,
            log: None,
            tracer: Tracer::disabled(),
            current_span: None,
        }
    }

    /// Attaches an event tracer: accumulation, sync-up, and verdict events
    /// are emitted with this client's counter values. Events carry logical
    /// time (`gctr`), so traced runs stay deterministic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets (or clears) the wire trace context subsequent verdict events
    /// attach to. The transport handle calls this once per operation with
    /// the same root context it put on the wire, so the client's verdict
    /// spans land in the same trace as the server's handling.
    pub fn set_current_span(&mut self, ctx: Option<SpanContext>) {
        self.current_span = ctx;
    }

    /// Enables transition logging (trades constant memory for exact fault
    /// localization via [`crate::forensics::diagnose`]).
    pub fn enable_logging(&mut self) {
        self.log = Some(TransitionLog::new());
    }

    /// The transition log, if logging was enabled.
    pub fn transition_log(&self) -> Option<&TransitionLog> {
        self.log.as_ref()
    }

    /// This user's id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// `lctrᵢ`.
    pub fn lctr(&self) -> u64 {
        self.lctr
    }

    /// `gctrᵢ`.
    pub fn gctr(&self) -> Ctr {
        self.gctr
    }

    /// Current accumulator (exposed for the simulator's diagnostics).
    pub fn sigma(&self) -> Digest {
        self.sigma
    }

    /// The session's anchor token — the genesis token for a from-genesis
    /// session, the join-point token for a mid-history join. This is the
    /// `initial` of the sync-up predicate, and what an evidence bundle
    /// embeds so a cold audit can re-run it.
    pub fn initial_token(&self) -> Digest {
        self.initial
    }

    /// Processes the server's response to `op`, returning the authenticated
    /// answer.
    pub fn handle_response(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<OpResult, Deviation> {
        let out = self.handle_response_inner(op, resp);
        match &out {
            Ok(_) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Deposit, self.user)
                        .detail(format!("accum lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::DEPOSIT)))
                });
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Detection, self.user)
                        .detail(format!("{dev} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
        out
    }

    fn handle_response_inner(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
    ) -> Result<OpResult, Deviation> {
        // Step 4: counters this user sees must be strictly increasing.
        if resp.ctr < self.gctr {
            return Err(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: self.gctr,
            });
        }
        // Step 5: compute M(D) and M(D') by replaying the proof.
        let (old_root, verified) =
            replay_unanchored(self.config.order, &resp.vo, op, Some(&resp.result))
                .map_err(Deviation::BadProof)?;

        // Step 6: accumulate the witnessed transition.
        let old_token = state_token(&old_root, resp.ctr, resp.last_user);
        let new_token = state_token(&verified.new_root, resp.ctr + 1, self.user);
        self.sigma ^= old_token;
        self.sigma ^= new_token;
        self.last = Some(new_token);
        self.gctr = resp.ctr + 1;
        self.lctr += 1;
        self.ops_since_sync += 1;
        if let Some(log) = &mut self.log {
            log.record(LoggedTransition {
                old_token,
                new_token,
                ctr: resp.ctr,
                user: self.user,
            });
        }
        Ok(verified.result)
    }

    /// Processes the server's response to a batched window of `ops`,
    /// returning the authenticated per-op answers.
    ///
    /// Verification replays the whole window on the single shared proof,
    /// checking every claimed answer; the accumulator update *telescopes*:
    /// within the window every intermediate state is both created and
    /// consumed by this user at consecutive counters, so the intermediate
    /// tokens cancel in XOR and only the pre-window and post-window tokens
    /// touch `σᵢ`. The result is bit-identical to calling
    /// [`Client2::handle_response`] once per op — experiment-visible state
    /// (`σᵢ`, `lastᵢ`, counters) cannot tell the two paths apart.
    pub fn handle_batch_response(
        &mut self,
        ops: &[Op],
        resp: &BatchResponse,
    ) -> Result<Vec<OpResult>, Deviation> {
        let out = self.handle_batch_response_inner(ops, resp);
        match &out {
            Ok(results) => {
                let n = results.len();
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Deposit, self.user)
                        .detail(format!(
                            "accum batch={n} lctr={} gctr={}",
                            self.lctr, self.gctr
                        ))
                        .span_opt(self.current_span.map(|c| c.child(stage::DEPOSIT)))
                });
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Detection, self.user)
                        .detail(format!("{dev} lctr={} gctr={}", self.lctr, self.gctr))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
        out
    }

    fn handle_batch_response_inner(
        &mut self,
        ops: &[Op],
        resp: &BatchResponse,
    ) -> Result<Vec<OpResult>, Deviation> {
        if ops.is_empty() && resp.results.is_empty() {
            return Ok(Vec::new());
        }
        // Step 4, windowed: the pre-window counter must not regress.
        if resp.ctr < self.gctr {
            return Err(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: self.gctr,
            });
        }
        // Step 5, windowed: one replay of the whole window yields M(D)
        // before the window and every intermediate root after it.
        let (old_root, steps) =
            replay_batch_unanchored(self.config.order, &resp.proof, ops, Some(&resp.results))
                .map_err(Deviation::BadProof)?;

        // Step 6, telescoped: intermediate tokens are created and consumed
        // by this user at consecutive counters and cancel under XOR.
        let n = ops.len() as u64;
        let first_token = state_token(&old_root, resp.ctr, resp.last_user);
        let final_root = steps.last().expect("non-empty window").new_root;
        let last_token = state_token(&final_root, resp.ctr + n, self.user);
        self.sigma ^= first_token;
        self.sigma ^= last_token;
        if let Some(log) = &mut self.log {
            // The forensic log keeps per-op granularity: record every
            // intermediate transition, not just the telescoped ends.
            let mut old_token = first_token;
            for (i, step) in steps.iter().enumerate() {
                let ctr = resp.ctr + i as u64;
                let new_token = state_token(&step.new_root, ctr + 1, self.user);
                log.record(LoggedTransition {
                    old_token,
                    new_token,
                    ctr,
                    user: self.user,
                });
                old_token = new_token;
            }
        }
        self.last = Some(last_token);
        self.gctr = resp.ctr + n;
        self.lctr += n;
        self.ops_since_sync += n;
        Ok(steps.into_iter().map(|s| s.result).collect())
    }

    /// True iff this user should announce a sync-up (`k` ops completed since
    /// the last one).
    pub fn wants_sync(&self) -> bool {
        self.ops_since_sync >= self.config.k
    }

    /// This user's broadcast share.
    pub fn sync_share(&self) -> SyncShare {
        SyncShare {
            user: self.user,
            lctr: self.lctr,
            gctr: self.gctr,
            sigma: self.sigma,
            last: self.last,
        }
    }

    /// This user's success predicate:
    /// `h(M(D₀) ‖ 0 ‖ ⊥) ⊕ lastᵢ == ⊕ₖ σₖ` — or, if no operation has ever
    /// happened anywhere, the trivial all-zero check.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        let x = shares.iter().fold(Digest::ZERO, |acc, s| acc ^ s.sigma);
        let ok = if shares.iter().all(|s| s.lctr == 0) {
            x == Digest::ZERO
        } else {
            match self.last {
                Some(last) => self.initial ^ last == x,
                None => false,
            }
        };
        self.tracer.emit(|| {
            Event::new(self.gctr, EventKind::SyncUp, self.user)
                .detail(format!(
                    "{} lctr={} gctr={}",
                    if ok { "ok" } else { "fail" },
                    self.lctr,
                    self.gctr
                ))
                .span_opt(self.current_span.map(|c| c.child(stage::SYNC)))
        });
        ok
    }

    /// Records a completed sync-up round.
    pub fn sync_done(&mut self) {
        self.ops_since_sync = 0;
    }
}

/// Helpers for sibling modules' tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use tcvs_merkle::MerkleTree;

    /// A Client2 for `user` over the canonical empty initial root.
    pub(crate) fn fresh_client(user: UserId, config: &ProtocolConfig) -> Client2 {
        let root0 = MerkleTree::with_order(config.order).root_digest();
        Client2::new(user, &root0, *config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_merkle::u64_key;

    fn setup(n: u32) -> (Vec<Client2>, HonestServer, ProtocolConfig) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 100,
        };
        let server = HonestServer::new(&config);
        let root0 = server.core().root_digest();
        let clients = (0..n).map(|u| Client2::new(u, &root0, config)).collect();
        (clients, server, config)
    }

    fn run_op(c: &mut Client2, s: &mut HonestServer, op: Op, round: u64) -> OpResult {
        let resp = s.handle_op(c.user(), &op, round);
        c.handle_response(&op, &resp).unwrap()
    }

    fn sync_outcome(clients: &[Client2]) -> bool {
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        clients.iter().any(|c| c.sync_succeeds(&shares))
    }

    #[test]
    fn honest_run_sync_succeeds_for_exactly_the_last_operator() {
        let (mut clients, mut server, _) = setup(3);
        for i in 0..24u64 {
            let u = ((i * 2 + 1) % 3) as usize;
            let op = if i % 3 == 0 {
                Op::Put(u64_key(i % 5), vec![i as u8])
            } else {
                Op::Get(u64_key(i % 5))
            };
            run_op(&mut clients[u], &mut server, op, i);
        }
        let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        let successes: Vec<bool> = clients.iter().map(|c| c.sync_succeeds(&shares)).collect();
        assert_eq!(successes.iter().filter(|&&b| b).count(), 1);
        // The last op (i = 23) was by user ((23*2+1) % 3) = 2.
        assert!(successes[2]);
    }

    #[test]
    fn back_to_back_own_ops_accepted() {
        // Regression guard for the paper's off-by-one: a user's consecutive
        // ops see ctr == gctr and must be accepted.
        let (mut clients, mut server, _) = setup(1);
        for i in 0..5 {
            run_op(
                &mut clients[0],
                &mut server,
                Op::Put(u64_key(1), vec![i]),
                i as u64,
            );
        }
        assert_eq!(clients[0].lctr(), 5);
        assert!(sync_outcome(&clients));
    }

    #[test]
    fn counter_regression_detected_immediately() {
        let (mut clients, mut server, _) = setup(1);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(0, &op, 1);
        resp.ctr = 0; // replayed counter
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::CounterRegression {
                seen: 0,
                expected_at_least: 1
            })
        ));
    }

    #[test]
    fn zero_op_sync_trivially_succeeds() {
        let (clients, _, _) = setup(4);
        assert!({
            let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
            clients.iter().all(|c| c.sync_succeeds(&shares))
        });
    }

    #[test]
    fn dropped_state_breaks_sync() {
        // Two users operate; we then erase one user's accumulator as if the
        // server had hidden that user's transition from the chain.
        let (mut clients, mut server, _) = setup(2);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        run_op(
            &mut clients[1],
            &mut server,
            Op::Put(u64_key(2), vec![2]),
            1,
        );
        let mut shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
        shares[0].sigma = Digest::ZERO; // user 0's transition vanishes
        assert!(!clients.iter().any(|c| c.sync_succeeds(&shares)));
    }

    #[test]
    fn tampered_answer_rejected() {
        let (mut clients, mut server, _) = setup(1);
        run_op(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(3), vec![3]),
            0,
        );
        let op = Op::Get(u64_key(3));
        let mut resp = server.handle_op(0, &op, 1);
        resp.result = tcvs_merkle::OpResult::Value(Some(vec![99]));
        assert!(matches!(
            clients[0].handle_response(&op, &resp),
            Err(Deviation::BadProof(_))
        ));
    }

    #[test]
    fn wants_sync_after_k_ops() {
        let (mut clients, mut server, config) = setup(1);
        for i in 0..config.k {
            assert!(!clients[0].wants_sync());
            run_op(&mut clients[0], &mut server, Op::Get(u64_key(0)), i);
        }
        assert!(clients[0].wants_sync());
        clients[0].sync_done();
        assert!(!clients[0].wants_sync());
    }

    #[test]
    fn batched_window_is_bitwise_equivalent_to_per_op_path() {
        // Same op stream, two transcripts: one per-op, one batched in
        // windows. All verifier-visible state must match exactly.
        let ops: Vec<Op> = (0..16u64)
            .map(|i| {
                if i % 3 == 0 {
                    Op::Put(u64_key(i % 5), vec![i as u8; 4])
                } else {
                    Op::Get(u64_key(i % 5))
                }
            })
            .collect();

        let (mut per_op, mut sa, _) = setup(1);
        for (i, op) in ops.iter().enumerate() {
            run_op(&mut per_op[0], &mut sa, op.clone(), i as u64);
        }

        let (mut batched, mut sb, _) = setup(1);
        let mut expected = Vec::new();
        for window in ops.chunks(4) {
            let resp = sb.handle_op_batch(0, 0, window, 0).unwrap();
            expected.extend(batched[0].handle_batch_response(window, &resp).unwrap());
        }
        assert_eq!(per_op[0].sigma(), batched[0].sigma());
        assert_eq!(per_op[0].gctr(), batched[0].gctr());
        assert_eq!(per_op[0].lctr(), batched[0].lctr());
        assert_eq!(per_op[0].last, batched[0].last);
        assert_eq!(sa.core().root_digest(), sb.core().root_digest());
        assert!(sync_outcome(&batched));
    }

    #[test]
    fn batched_forged_result_detected() {
        let (mut clients, mut server, _) = setup(1);
        let window = vec![Op::Put(u64_key(1), vec![1]), Op::Get(u64_key(1))];
        let mut resp = server.handle_op_batch(0, 0, &window, 0).unwrap();
        resp.results[1] = tcvs_merkle::OpResult::Value(Some(vec![99]));
        assert!(matches!(
            clients[0].handle_batch_response(&window, &resp),
            Err(Deviation::BadProof(_))
        ));
    }

    #[test]
    fn batched_counter_regression_detected() {
        let (mut clients, mut server, _) = setup(1);
        let w1 = vec![Op::Put(u64_key(1), vec![1]), Op::Put(u64_key(2), vec![2])];
        let r1 = server.handle_op_batch(0, 0, &w1, 0).unwrap();
        clients[0].handle_batch_response(&w1, &r1).unwrap();
        let w2 = vec![Op::Get(u64_key(1))];
        let mut r2 = server.handle_op_batch(0, 0, &w2, 0).unwrap();
        r2.ctr = 0; // replayed pre-window counter
        assert!(matches!(
            clients[0].handle_batch_response(&w2, &r2),
            Err(Deviation::CounterRegression { .. })
        ));
    }

    #[test]
    fn batched_dropped_result_detected() {
        let (mut clients, mut server, _) = setup(1);
        let window = vec![Op::Put(u64_key(1), vec![1]), Op::Get(u64_key(1))];
        let mut resp = server.handle_op_batch(0, 0, &window, 0).unwrap();
        resp.results.pop();
        assert!(matches!(
            clients[0].handle_batch_response(&window, &resp),
            Err(Deviation::BadProof(
                tcvs_merkle::VerifyError::BatchLengthMismatch
            ))
        ));
    }

    #[test]
    fn batched_windows_interleave_with_per_op_users() {
        // One user batches, another uses the per-op path; the sync-up
        // algebra must still close.
        let (mut clients, mut server, _) = setup(2);
        let window = vec![
            Op::Put(u64_key(1), vec![1]),
            Op::Put(u64_key(2), vec![2]),
            Op::Get(u64_key(1)),
        ];
        let resp = server.handle_op_batch(0, 0, &window, 0).unwrap();
        clients[0].handle_batch_response(&window, &resp).unwrap();
        run_op(&mut clients[1], &mut server, Op::Get(u64_key(2)), 3);
        let window2 = vec![Op::Get(u64_key(2)), Op::Put(u64_key(3), vec![3])];
        let resp2 = server.handle_op_batch(0, 0, &window2, 4).unwrap();
        clients[0].handle_batch_response(&window2, &resp2).unwrap();
        assert!(sync_outcome(&clients));
    }

    #[test]
    fn sigma_is_order_sensitive_but_content_exact() {
        // Two honest interleavings of the same ops produce different sigmas
        // per user, yet both pass the global check.
        let (mut ca, mut sa, _) = setup(2);
        run_op(&mut ca[0], &mut sa, Op::Put(u64_key(1), vec![1]), 0);
        run_op(&mut ca[1], &mut sa, Op::Put(u64_key(2), vec![2]), 1);
        assert!(sync_outcome(&ca));

        let (mut cb, mut sb, _) = setup(2);
        run_op(&mut cb[1], &mut sb, Op::Put(u64_key(2), vec![2]), 0);
        run_op(&mut cb[0], &mut sb, Op::Put(u64_key(1), vec![1]), 1);
        assert!(sync_outcome(&cb));
        assert_ne!(ca[0].sigma(), cb[0].sigma());
    }
}
