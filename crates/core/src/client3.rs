//! Protocol III client (§4.4): epoch-based detection with **no external
//! communication** — the untrusted server itself relays the users' signed
//! accumulator states.
//!
//! Time is divided into epochs of `t` rounds. The permitted workload is
//! restricted: every user performs at least two operations per epoch. Then:
//!
//! * During an epoch, each user accumulates Protocol II state tokens into
//!   an epoch-scoped `σᵢ` / `lastᵢ`.
//! * On its **first** operation in a new epoch, the user snapshots the
//!   finished epoch's `(σᵢ, lastᵢ)` (Fig. 4, point A).
//! * On its **second** operation, it deposits the snapshot — signed — on
//!   the server (point B).
//! * In epoch `e + 2`, the epoch-`e` **checker** (user `e mod n`) fetches
//!   all users' signed epoch-`e` states and runs the Protocol II
//!   synchronization check against the epoch's initial token (point C); the
//!   epoch's initial token is the previous epoch's audited final token,
//!   carried in a checker-signed [`SignedCheckpoint`] stored on the server.
//!
//! Signatures make deposited states unforgeable; *withholding* them is
//! itself detectable (the checker reports a missing state). Theorem 4.3:
//! every deviation is detected within two epochs — a **time** bound, unlike
//! the operation-count bounds of Protocols I and II.
//!
//! The client additionally cross-checks the server's announced epoch
//! against its own partially-synchronous clock (±1 epoch tolerance): a
//! server that freezes or skips epochs is itself deviating.

use tcvs_crypto::{Digest, KeyRegistry, Keyring, UserId};
use tcvs_merkle::{replay_unanchored, Op, OpResult};
use tcvs_obs::{stage, Event, EventKind, SpanContext, Tracer};

use crate::msg::{ServerResponse, SignedCheckpoint, SignedEpochState};
use crate::state::{initial_token, state_token};
use crate::types::{Ctr, Deviation, Epoch, ProtocolConfig};

/// Protocol III client state machine.
pub struct Client3 {
    keyring: Keyring,
    registry: KeyRegistry,
    n_users: u32,
    config: ProtocolConfig,
    /// `M(D₀)`'s token (epoch 0's initial token).
    initial0: Digest,
    /// Epoch-scoped accumulator.
    sigma: Digest,
    /// Epoch-scoped last-created token.
    last: Option<Digest>,
    /// Operations performed in the current epoch.
    ops_in_epoch: u64,
    /// The epoch this client believes it is in.
    cur_epoch: Epoch,
    /// Last seen counter + 1.
    gctr: Ctr,
    /// Total own operations.
    lctr: u64,
    /// Signed snapshots awaiting deposit (sent with the 2nd op of an epoch).
    pending_deposits: Vec<SignedEpochState>,
    /// The next epoch this user is the designated checker for.
    audit_cursor: Epoch,
    /// Event tracer (disabled by default; see [`Client3::set_tracer`]).
    tracer: Tracer,
    /// Trace context of the operation currently being verified (set by the
    /// transport layer before `handle_response`); emitted events link to it.
    current_span: Option<SpanContext>,
}

impl Client3 {
    /// Creates a client. `n_users` drives the checker rotation; `root0` is
    /// the common-knowledge initial root digest.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        n_users: u32,
        root0: &Digest,
        config: ProtocolConfig,
    ) -> Client3 {
        let audit_cursor = keyring.user as Epoch;
        Client3 {
            keyring,
            registry,
            n_users,
            config,
            initial0: initial_token(root0),
            sigma: Digest::ZERO,
            last: None,
            ops_in_epoch: 0,
            cur_epoch: 0,
            gctr: 0,
            lctr: 0,
            pending_deposits: Vec::new(),
            audit_cursor,
            tracer: Tracer::disabled(),
            current_span: None,
        }
    }

    /// Attaches an event tracer: epoch-state deposits, audits, and verdict
    /// events are emitted with counter / epoch values. Events carry logical
    /// time (`gctr` or the audited epoch), so traced runs stay deterministic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets (or clears) the wire trace context subsequent verdict events
    /// attach to. The transport handle calls this once per operation with
    /// the same root context it put on the wire, so the client's deposit /
    /// detection spans land in the same trace as the server's handling.
    pub fn set_current_span(&mut self, ctx: Option<SpanContext>) {
        self.current_span = ctx;
    }

    /// This user's id.
    pub fn user(&self) -> UserId {
        self.keyring.user
    }

    /// Total operations performed.
    pub fn lctr(&self) -> u64 {
        self.lctr
    }

    /// The epoch this client is currently accumulating for.
    pub fn cur_epoch(&self) -> Epoch {
        self.cur_epoch
    }

    /// Signs the epoch snapshot for deposit.
    fn sign_epoch_state(
        &mut self,
        epoch: Epoch,
        sigma: Digest,
        last: Option<Digest>,
        ops: u64,
    ) -> Result<SignedEpochState, Deviation> {
        let payload =
            SignedEpochState::payload(self.keyring.user, epoch, &sigma, last.as_ref(), ops);
        let sig = self
            .keyring
            .sign(&payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        Ok(SignedEpochState {
            user: self.keyring.user,
            epoch,
            sigma,
            last,
            ops,
            sig,
        })
    }

    /// Processes the server's response to `op`. `round` is the client's own
    /// clock reading (partial synchrony).
    ///
    /// Returns the authenticated answer plus any signed epoch states that
    /// must now be deposited on the server (non-empty on the second
    /// operation of a new epoch).
    pub fn handle_response(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
        round: u64,
    ) -> Result<(OpResult, Vec<SignedEpochState>), Deviation> {
        let out = self.handle_response_inner(op, resp, round);
        match &out {
            Ok((_, deposits)) => {
                for d in deposits {
                    let (epoch, ops) = (d.epoch, d.ops);
                    self.tracer.emit(|| {
                        Event::new(self.gctr, EventKind::Deposit, self.keyring.user)
                            .detail(format!("epoch={epoch} ops={ops} gctr={}", self.gctr))
                            .span_opt(self.current_span.map(|c| c.child(stage::DEPOSIT)))
                    });
                }
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(self.gctr, EventKind::Detection, self.keyring.user)
                        .detail(format!(
                            "{dev} epoch={} lctr={} gctr={}",
                            self.cur_epoch, self.lctr, self.gctr
                        ))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
        out
    }

    fn handle_response_inner(
        &mut self,
        op: &Op,
        resp: &ServerResponse,
        round: u64,
    ) -> Result<(OpResult, Vec<SignedEpochState>), Deviation> {
        // Partial-synchrony cross-check of the server's epoch claim.
        let expected = round / self.config.epoch_len;
        if resp.epoch.abs_diff(expected) > 1 {
            return Err(Deviation::EpochSkew {
                claimed: resp.epoch,
                expected,
            });
        }
        // Epochs may only move forward.
        if resp.epoch < self.cur_epoch {
            return Err(Deviation::EpochSkew {
                claimed: resp.epoch,
                expected: self.cur_epoch,
            });
        }
        // Counter monotonicity (same as Protocol II).
        if resp.ctr < self.gctr {
            return Err(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: self.gctr,
            });
        }

        // Epoch rollover: snapshot the finished epoch before accumulating
        // anything for the new one (Fig. 4, point A).
        if resp.epoch > self.cur_epoch {
            let sigma = std::mem::replace(&mut self.sigma, Digest::ZERO);
            let last = self.last.take();
            let ops = std::mem::replace(&mut self.ops_in_epoch, 0);
            let finished = self.cur_epoch;
            let snap = self.sign_epoch_state(finished, sigma, last, ops)?;
            self.pending_deposits.push(snap);
            // Epochs this user slept through entirely (workload violations
            // in honest runs, but deposit empty states so the audit can
            // distinguish "no ops" from "state withheld").
            for e in finished + 1..resp.epoch {
                let empty = self.sign_epoch_state(e, Digest::ZERO, None, 0)?;
                self.pending_deposits.push(empty);
            }
            self.cur_epoch = resp.epoch;
        }

        // The operation itself: Protocol II token accumulation.
        let (old_root, verified) =
            replay_unanchored(self.config.order, &resp.vo, op, Some(&resp.result))
                .map_err(Deviation::BadProof)?;
        let old_token = state_token(&old_root, resp.ctr, resp.last_user);
        let new_token = state_token(&verified.new_root, resp.ctr + 1, self.keyring.user);
        self.sigma ^= old_token;
        self.sigma ^= new_token;
        self.last = Some(new_token);
        self.gctr = resp.ctr + 1;
        self.lctr += 1;
        self.ops_in_epoch += 1;

        // Deposit snapshots with the second operation of the epoch
        // (Fig. 4, point B).
        let deposits = if self.ops_in_epoch >= 2 {
            std::mem::take(&mut self.pending_deposits)
        } else {
            Vec::new()
        };
        Ok((verified.result, deposits))
    }

    /// If this user currently owes an audit, the epoch to audit.
    ///
    /// User `u` audits epochs `u, u + n, u + 2n, …`; the audit of epoch `e`
    /// runs during epoch `e + 2` or later (point C).
    pub fn pending_audit(&self) -> Option<Epoch> {
        (self.audit_cursor + 2 <= self.cur_epoch).then_some(self.audit_cursor)
    }

    /// Performs the audit of `epoch` over the states fetched from the
    /// server. `prev_checkpoint` is the server-stored checkpoint of
    /// `epoch - 1` (`None` is valid only for epoch 0).
    ///
    /// On success returns the signed checkpoint to deposit; on failure the
    /// deviation that was detected.
    pub fn audit(
        &mut self,
        epoch: Epoch,
        states: &[SignedEpochState],
        prev_checkpoint: Option<&SignedCheckpoint>,
    ) -> Result<SignedCheckpoint, Deviation> {
        let out = self.audit_inner(epoch, states, prev_checkpoint);
        match &out {
            Ok(_) => {
                self.tracer.emit(|| {
                    Event::new(epoch, EventKind::Audit, self.keyring.user)
                        .detail(format!("ok epoch={epoch}"))
                        .span_opt(self.current_span.map(|c| c.child(stage::SYNC)))
                });
            }
            Err(dev) => {
                self.tracer.emit(|| {
                    Event::new(epoch, EventKind::Detection, self.keyring.user)
                        .detail(format!("audit {dev} epoch={epoch}"))
                        .span_opt(self.current_span.map(|c| c.child(stage::VERDICT)))
                });
            }
        }
        out
    }

    fn audit_inner(
        &mut self,
        epoch: Epoch,
        states: &[SignedEpochState],
        prev_checkpoint: Option<&SignedCheckpoint>,
    ) -> Result<SignedCheckpoint, Deviation> {
        // Establish the epoch's initial token.
        let initial = if epoch == 0 {
            self.initial0
        } else {
            let cp = prev_checkpoint.ok_or(Deviation::EpochCheckFailed(epoch))?;
            if cp.epoch != epoch - 1 {
                return Err(Deviation::EpochCheckFailed(epoch));
            }
            let expected_checker = ((epoch - 1) % self.n_users as Epoch) as UserId;
            if cp.checker != expected_checker {
                return Err(Deviation::BadEpochSignature(epoch - 1));
            }
            let payload = SignedCheckpoint::payload(cp.epoch, cp.checker, &cp.final_token);
            if !self.registry.verify(cp.checker, &payload, &cp.sig) {
                return Err(Deviation::BadEpochSignature(epoch - 1));
            }
            cp.final_token
        };

        // Every user's signed state must be present and authentic.
        let mut x = Digest::ZERO;
        let mut lasts: Vec<Digest> = Vec::new();
        let mut total_ops = 0u64;
        for u in 0..self.n_users {
            let s = states
                .iter()
                .find(|s| s.user == u && s.epoch == epoch)
                .ok_or(Deviation::MissingEpochState { epoch, user: u })?;
            let payload =
                SignedEpochState::payload(s.user, s.epoch, &s.sigma, s.last.as_ref(), s.ops);
            if !self.registry.verify(s.user, &payload, &s.sig) {
                return Err(Deviation::BadEpochSignature(epoch));
            }
            x ^= s.sigma;
            total_ops += s.ops;
            if let Some(l) = s.last {
                lasts.push(l);
            }
        }

        // The Protocol II synchronization check, scoped to this epoch.
        let final_token = if total_ops == 0 {
            if x != Digest::ZERO {
                return Err(Deviation::EpochCheckFailed(epoch));
            }
            initial
        } else {
            *lasts
                .iter()
                .find(|&&l| initial ^ l == x)
                .ok_or(Deviation::EpochCheckFailed(epoch))?
        };

        // Sign and return the checkpoint for the next epoch's audit.
        let payload = SignedCheckpoint::payload(epoch, self.keyring.user, &final_token);
        let sig = self
            .keyring
            .sign(&payload)
            .map_err(|_| Deviation::KeyExhausted)?;
        self.audit_cursor += self.n_users as Epoch;
        Ok(SignedCheckpoint {
            epoch,
            checker: self.keyring.user,
            final_token,
            sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HonestServer, ServerApi};
    use tcvs_crypto::setup_users;
    use tcvs_merkle::u64_key;

    const EPOCH_LEN: u64 = 10;

    fn setup(n: u32) -> (Vec<Client3>, HonestServer) {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: EPOCH_LEN,
        };
        let server = HonestServer::new(&config);
        let root0 = server.core().root_digest();
        let (rings, registry) = setup_users([4u8; 32], n, 5);
        let clients = rings
            .into_iter()
            .map(|r| Client3::new(r, registry.clone(), n, &root0, config))
            .collect();
        (clients, server)
    }

    /// Runs one op through server + client, forwarding deposits and audits.
    fn step(c: &mut Client3, s: &mut HonestServer, op: Op, round: u64) -> OpResult {
        let resp = s.handle_op(c.user(), &op, round);
        let (result, deposits) = c.handle_response(&op, &resp, round).unwrap();
        for d in deposits {
            s.deposit_epoch_state(d);
        }
        if let Some(e) = c.pending_audit() {
            let states = s.fetch_epoch_states(c.user(), e);
            let prev = if e == 0 {
                None
            } else {
                s.fetch_checkpoint(c.user(), e - 1)
            };
            let cp = c.audit(e, &states, prev.as_ref()).unwrap();
            s.deposit_checkpoint(cp);
        }
        result
    }

    /// Drives `epochs` epochs with every user doing `ops_per_epoch` ops.
    fn drive(clients: &mut [Client3], server: &mut HonestServer, epochs: u64, ops_per_epoch: u64) {
        let n = clients.len() as u64;
        for e in 0..epochs {
            for j in 0..ops_per_epoch {
                for u in 0..n {
                    // Spread ops across the epoch's rounds.
                    let round = e * EPOCH_LEN + (j * n + u) % EPOCH_LEN;
                    let op = Op::Put(u64_key((u * 17 + j) % 23), vec![e as u8, j as u8]);
                    step(&mut clients[u as usize], server, op, round);
                }
            }
        }
    }

    #[test]
    fn honest_epochs_audit_cleanly() {
        let (mut clients, mut server) = setup(3);
        drive(&mut clients, &mut server, 6, 2);
        // Audits for epochs 0..=3 must have produced checkpoints.
        for e in 0..4 {
            assert!(
                server.fetch_checkpoint(0, e).is_some(),
                "missing checkpoint for epoch {e}"
            );
        }
    }

    #[test]
    fn checkpoints_chain_final_tokens() {
        let (mut clients, mut server) = setup(2);
        drive(&mut clients, &mut server, 5, 2);
        let c0 = server.fetch_checkpoint(0, 0).unwrap();
        let c1 = server.fetch_checkpoint(0, 1).unwrap();
        assert_eq!(c0.epoch, 0);
        assert_eq!(c1.epoch, 1);
        assert_ne!(c0.final_token, c1.final_token);
        // Checker rotation: epoch e checked by user e mod n.
        assert_eq!(c0.checker, 0);
        assert_eq!(c1.checker, 1);
    }

    #[test]
    fn epoch_skew_detected() {
        let (mut clients, mut server) = setup(1);
        let op = Op::Get(u64_key(0));
        let mut resp = server.handle_op(0, &op, 0);
        resp.epoch = 7; // server lies wildly about the epoch
        assert!(matches!(
            clients[0].handle_response(&op, &resp, 0),
            Err(Deviation::EpochSkew {
                claimed: 7,
                expected: 0
            })
        ));
    }

    #[test]
    fn stuck_epoch_detected_by_local_clock() {
        let (mut clients, mut server) = setup(1);
        // Server processes at round 0 forever; client's clock says epoch 5.
        let op = Op::Get(u64_key(0));
        let resp = server.handle_op(0, &op, 0);
        let round = 5 * EPOCH_LEN;
        assert!(matches!(
            clients[0].handle_response(&op, &resp, round),
            Err(Deviation::EpochSkew { .. })
        ));
    }

    #[test]
    fn missing_state_detected_at_audit() {
        let (mut clients, mut server) = setup(2);
        drive(&mut clients, &mut server, 4, 2);
        // Audit epoch 2 manually with user 1's state withheld.
        let states: Vec<SignedEpochState> = server
            .fetch_epoch_states(0, 2)
            .into_iter()
            .filter(|s| s.user != 1)
            .collect();
        let prev = server.fetch_checkpoint(0, 1);
        // Force user 0 to audit epoch 2 (not its turn; bypass via fresh client).
        let err = clients[0].audit(2, &states, prev.as_ref()).unwrap_err();
        assert_eq!(err, Deviation::MissingEpochState { epoch: 2, user: 1 });
    }

    #[test]
    fn forged_epoch_state_detected_at_audit() {
        let (mut clients, mut server) = setup(2);
        drive(&mut clients, &mut server, 4, 2);
        let mut states = server.fetch_epoch_states(0, 2);
        states[0].sigma.0[0] ^= 1; // server tampers with a stored state
        let prev = server.fetch_checkpoint(0, 1);
        let err = clients[0].audit(2, &states, prev.as_ref()).unwrap_err();
        assert_eq!(err, Deviation::BadEpochSignature(2));
    }

    #[test]
    fn missing_checkpoint_fails_audit() {
        let (mut clients, mut server) = setup(2);
        drive(&mut clients, &mut server, 4, 2);
        let states = server.fetch_epoch_states(0, 2);
        let err = clients[0].audit(2, &states, None).unwrap_err();
        assert_eq!(err, Deviation::EpochCheckFailed(2));
    }

    #[test]
    fn wrong_checker_checkpoint_rejected() {
        let (mut clients, mut server) = setup(2);
        drive(&mut clients, &mut server, 4, 2);
        let states = server.fetch_epoch_states(0, 2);
        let mut prev = server.fetch_checkpoint(0, 1).unwrap();
        prev.checker = 0; // epoch 1's checker must be user 1
        let err = clients[0].audit(2, &states, Some(&prev)).unwrap_err();
        assert_eq!(err, Deviation::BadEpochSignature(1));
    }

    #[test]
    fn counter_regression_detected() {
        let (mut clients, mut server) = setup(1);
        step(
            &mut clients[0],
            &mut server,
            Op::Put(u64_key(1), vec![1]),
            0,
        );
        let op = Op::Get(u64_key(1));
        let mut resp = server.handle_op(0, &op, 1);
        resp.ctr = 0;
        assert!(matches!(
            clients[0].handle_response(&op, &resp, 1),
            Err(Deviation::CounterRegression { .. })
        ));
    }

    #[test]
    fn deposits_happen_on_second_op_of_epoch() {
        let (mut clients, mut server) = setup(1);
        // Epoch 0: two ops, no deposits yet (nothing finished).
        let op = Op::Get(u64_key(0));
        for round in [0, 1] {
            let resp = server.handle_op(0, &op, round);
            let (_, deps) = clients[0].handle_response(&op, &resp, round).unwrap();
            assert!(deps.is_empty());
        }
        // First op of epoch 1: snapshot taken, not yet deposited.
        let resp = server.handle_op(0, &op, EPOCH_LEN);
        let (_, deps) = clients[0].handle_response(&op, &resp, EPOCH_LEN).unwrap();
        assert!(deps.is_empty(), "deposit must wait for the second op");
        // Second op of epoch 1: deposit released.
        let resp = server.handle_op(0, &op, EPOCH_LEN + 1);
        let (_, deps) = clients[0]
            .handle_response(&op, &resp, EPOCH_LEN + 1)
            .unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].epoch, 0);
        assert_eq!(deps[0].ops, 2);
    }
}
