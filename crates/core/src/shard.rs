//! Deterministic keyspace partitioning for the sharded grove.
//!
//! A grove deployment splits the database across N shard servers, each
//! owning its own Merkle B+-tree; the shard roots fold into one top-level
//! grove root (`tcvs_merkle::grove_root`). Everything downstream — clients,
//! the simulator's per-shard oracles, crash recovery — depends on every
//! party routing every key to the *same* shard, forever. [`ShardRouter`]
//! therefore hashes the key bytes alone: no RNG, no clock, no spawn-order
//! input, nothing process-local. The same `(key, n_shards)` pair routes
//! identically across crash-restarts, process restarts, and machines.

use tcvs_merkle::{Key, Op};

use crate::fault::splitmix64;

/// FNV-1a over the key bytes, finished with a splitmix64 mix so the low
/// bits (which `% n_shards` consumes) are well distributed even for short
/// or structured keys.
fn route_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// The deterministic, restart-stable keyspace partitioner.
///
/// Routing is a pure function of the key bytes and the shard count —
/// see the module docs for why nothing else may enter the hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    /// A router over `n_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ShardRouter {
        assert!(n_shards > 0, "a grove needs at least one shard");
        ShardRouter { n_shards }
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard that owns `key`.
    pub fn route_key(&self, key: &[u8]) -> usize {
        (route_hash(key) % self.n_shards as u64) as usize
    }

    /// The single shard `op` routes to, or `None` for operations that span
    /// shards ([`Op::Range`] — the caller scatter-gathers those).
    pub fn route_op(&self, op: &Op) -> Option<usize> {
        match op {
            Op::Get(k) | Op::Put(k, _) | Op::Delete(k) => Some(self.route_key(k)),
            Op::Range(..) => None,
        }
    }

    /// Splits keyed operations into per-shard groups, preserving order
    /// within each group and remembering every op's original position.
    /// Returns `None` if any op is a cross-shard [`Op::Range`].
    pub fn partition<'a>(&self, ops: &'a [Op]) -> Option<Vec<Vec<(usize, &'a Op)>>> {
        let mut groups: Vec<Vec<(usize, &'a Op)>> = vec![Vec::new(); self.n_shards];
        for (i, op) in ops.iter().enumerate() {
            groups[self.route_op(op)?].push((i, op));
        }
        Some(groups)
    }
}

/// Convenience: owned-key routing for callers holding [`Key`]s.
pub fn route(n_shards: usize, key: &Key) -> usize {
    ShardRouter::new(n_shards).route_key(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    /// Restart stability, pinned: the routing of these keys is frozen into
    /// the test as literal values, so any change to the hash — across
    /// process restarts, dependency bumps, refactors — fails loudly instead
    /// of silently re-homing every key in every deployed grove.
    #[test]
    fn routing_is_pinned_across_processes() {
        let r = ShardRouter::new(4);
        let got: Vec<usize> = (0..16).map(|i| r.route_key(&u64_key(i))).collect();
        assert_eq!(got, [3, 3, 0, 0, 2, 0, 0, 1, 3, 0, 1, 3, 1, 2, 3, 0]);
        let r8 = ShardRouter::new(8);
        let got8: Vec<usize> = (0..8).map(|i| r8.route_key(&u64_key(i))).collect();
        assert_eq!(got8, [3, 3, 0, 0, 6, 0, 4, 5]);
    }

    /// The seeded-exhaustive stability property: over a large pseudo-random
    /// key sample, two independently constructed routers agree everywhere,
    /// routing is insensitive to *when* or *in what order* shards were
    /// spawned (there is no such input), and every shard receives a
    /// reasonable share of the keyspace.
    #[test]
    fn routing_is_deterministic_and_balanced() {
        let mut rng = tcvs_crypto::SeedRng::from_label(b"shard-router-proptest");
        for n in [1usize, 2, 3, 4, 7, 8, 16] {
            let a = ShardRouter::new(n);
            let b = ShardRouter::new(n);
            let mut counts = vec![0u64; n];
            for _ in 0..2000 {
                let len = 1 + rng.next_below(24) as usize;
                let key: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
                let s = a.route_key(&key);
                assert_eq!(s, b.route_key(&key), "independent routers agree");
                assert!(s < n);
                counts[s] += 1;
            }
            if n > 1 {
                let min = *counts.iter().min().unwrap();
                let max = *counts.iter().max().unwrap();
                assert!(
                    min * 2 > max / 2,
                    "n={n}: grossly unbalanced routing {counts:?}"
                );
            }
        }
    }

    #[test]
    fn ops_route_by_their_key() {
        let r = ShardRouter::new(4);
        let k = u64_key(42);
        let s = r.route_key(&k);
        assert_eq!(r.route_op(&Op::Get(k.clone())), Some(s));
        assert_eq!(r.route_op(&Op::Put(k.clone(), vec![1])), Some(s));
        assert_eq!(r.route_op(&Op::Delete(k)), Some(s));
        assert_eq!(r.route_op(&Op::Range(None, None)), None);
    }

    #[test]
    fn partition_preserves_positions_and_order() {
        let r = ShardRouter::new(3);
        let ops: Vec<Op> = (0..20).map(|i| Op::Get(u64_key(i))).collect();
        let groups = r.partition(&ops).unwrap();
        let mut seen = vec![false; ops.len()];
        for (shard, group) in groups.iter().enumerate() {
            let mut last = None;
            for (pos, op) in group {
                assert_eq!(r.route_op(op), Some(shard));
                assert!(last.is_none_or(|l| l < *pos), "in-order within a shard");
                last = Some(*pos);
                assert!(!seen[*pos]);
                seen[*pos] = true;
            }
        }
        assert!(
            seen.iter().all(|s| *s),
            "every op lands in exactly one group"
        );
        assert!(r
            .partition(&[Op::Get(u64_key(0)), Op::Range(None, None)])
            .is_none());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }
}
