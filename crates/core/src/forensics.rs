//! Fault localization — the paper's future-work item (1): "extend these
//! protocols to detect exactly *when* the fault occurred".
//!
//! The constant-space accumulators of Protocols II/III can only say *that*
//! the history is not a single path. If users are willing to keep their
//! full transition logs (trading §2.2.5's constant-memory requirement for
//! diagnosability — an explicit extension, not part of the base protocols),
//! the state graph of Lemma 4.1 can be reconstructed exactly and the first
//! anomaly pinpointed: the counter value where the history stops being a
//! path, and the users affected.
//!
//! After a sync-up fails, users exchange logs over the broadcast channel
//! (or hand them to an investigator — the paper's "external mechanism,
//! e.g. law enforcement") and run [`diagnose`].

use std::collections::{BTreeMap, BTreeSet};

use tcvs_crypto::{Digest, UserId};
use tcvs_obs::{render_log, Event};

use crate::types::Ctr;

/// One witnessed state transition, as logged by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedTransition {
    /// Token of the state the operation consumed.
    pub old_token: Digest,
    /// Token of the state the operation produced.
    pub new_token: Digest,
    /// Counter value the server presented (`ctr` of the old state).
    pub ctr: Ctr,
    /// The user who performed the operation.
    pub user: UserId,
}

/// A client-side transition log (the unbounded-memory extension).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransitionLog {
    entries: Vec<LoggedTransition>,
}

impl TransitionLog {
    /// Empty log.
    pub fn new() -> TransitionLog {
        TransitionLog::default()
    }

    /// Records one transition.
    pub fn record(&mut self, t: LoggedTransition) {
        self.entries.push(t);
    }

    /// All entries.
    pub fn entries(&self) -> &[LoggedTransition] {
        &self.entries
    }

    /// Number of logged transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The verdict of a forensic analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All logged transitions form a single path from the initial state:
    /// the server behaved (w.r.t. these logs).
    CleanPath {
        /// Token of the final state.
        final_token: Digest,
        /// Number of transitions on the path.
        length: usize,
    },
    /// The history forks: one state was consumed by two different
    /// transitions — the partition/replay attack, located.
    Fork {
        /// Counter at which the fork happened.
        at_ctr: Ctr,
        /// The state token that was served twice.
        forked_state: Digest,
        /// The users on the two sides of the fork.
        users: Vec<UserId>,
    },
    /// A transition consumed a state that no logged transition (nor the
    /// initial state) ever produced — fabricated or tampered state.
    OrphanState {
        /// Counter the orphan transition presented.
        at_ctr: Ctr,
        /// The user whose operation consumed the fabricated state.
        victim: UserId,
        /// The fabricated state's token.
        token: Digest,
    },
    /// No transitions were logged and no anomaly exists.
    Empty,
}

/// Reconstructs the state graph from all users' logs and locates the first
/// anomaly (by counter value).
///
/// `initial` is the initial-state token `h(M(D₀) ‖ 0 ‖ ⊥)`, which is
/// common knowledge.
pub fn diagnose(logs: &[TransitionLog], initial: &Digest) -> Verdict {
    let mut all: Vec<&LoggedTransition> = logs.iter().flat_map(|l| l.entries()).collect();
    if all.is_empty() {
        return Verdict::Empty;
    }
    all.sort_by_key(|t| t.ctr);

    // Producers: initial state plus every new_token.
    let mut produced: BTreeSet<Digest> = BTreeSet::new();
    produced.insert(*initial);
    for t in &all {
        produced.insert(t.new_token);
    }

    // First anomaly by counter: a state consumed twice (fork) or a consumed
    // state nobody produced (orphan).
    let mut consumed_by: BTreeMap<Digest, &LoggedTransition> = BTreeMap::new();
    for t in &all {
        if let Some(first) = consumed_by.get(&t.old_token) {
            // Same user consuming the same state twice is a replay the
            // client-side ctr check would have caught; across users it is
            // the fork.
            return Verdict::Fork {
                at_ctr: t.ctr,
                forked_state: t.old_token,
                users: vec![first.user, t.user],
            };
        }
        if !produced.contains(&t.old_token) {
            return Verdict::OrphanState {
                at_ctr: t.ctr,
                victim: t.user,
                token: t.old_token,
            };
        }
        consumed_by.insert(t.old_token, t);
    }

    // No fork, no orphan: check that the transitions chain into one path
    // starting at the initial state.
    let mut cur = *initial;
    let mut length = 0usize;
    let by_old: BTreeMap<Digest, &LoggedTransition> =
        all.iter().map(|t| (t.old_token, *t)).collect();
    while let Some(t) = by_old.get(&cur) {
        cur = t.new_token;
        length += 1;
    }
    if length == all.len() {
        Verdict::CleanPath {
            final_token: cur,
            length,
        }
    } else {
        // Some transitions are unreachable from the initial state even
        // though each old token was produced *somewhere*: a cycle cannot
        // occur (ctr increases), so this means a disconnected segment whose
        // producer link was walked differently; report the earliest
        // unreachable transition as orphaned from the main history.
        let mut reachable: BTreeSet<Digest> = BTreeSet::new();
        let mut c = *initial;
        reachable.insert(c);
        while let Some(t) = by_old.get(&c) {
            c = t.new_token;
            reachable.insert(c);
        }
        let first_bad = all
            .iter()
            .find(|t| !reachable.contains(&t.old_token))
            .expect("length mismatch implies an unreachable transition");
        Verdict::OrphanState {
            at_ctr: first_bad.ctr,
            victim: first_bad.user,
            token: first_bad.old_token,
        }
    }
}

/// A forensic verdict together with the observability timeline that led up
/// to it — the input an investigator actually receives after a failed
/// sync-up: the localized anomaly *and* the event log around it.
#[derive(Clone, Debug)]
pub struct DiagnosisReport {
    /// The graph-reconstruction verdict.
    pub verdict: Verdict,
    /// The traced events preceding the failed sync-up, in emission order.
    pub timeline: Vec<Event>,
}

impl DiagnosisReport {
    /// Renders the report as diffable text: the verdict line followed by
    /// the timeline (one event per line).
    pub fn render(&self) -> String {
        let mut out = format!("verdict: {:?}\n", self.verdict);
        if !self.timeline.is_empty() {
            out.push_str("timeline:\n");
            out.push_str(&render_log(&self.timeline));
        }
        out
    }
}

/// [`diagnose`], with the traced event timeline attached to the result.
///
/// When a sync-up fails, the caller hands over both the transition logs and
/// whatever events its tracer sink collected; the report pairs the located
/// anomaly with that timeline so the handoff to the paper's "external
/// mechanism" carries the full run context.
pub fn diagnose_with_timeline(
    logs: &[TransitionLog],
    initial: &Digest,
    timeline: Vec<Event>,
) -> DiagnosisReport {
    DiagnosisReport {
        verdict: diagnose(logs, initial),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::sha256;

    fn tok(s: &str) -> Digest {
        sha256(s.as_bytes())
    }

    fn t(old: &str, new: &str, ctr: Ctr, user: UserId) -> LoggedTransition {
        LoggedTransition {
            old_token: tok(old),
            new_token: tok(new),
            ctr,
            user,
        }
    }

    fn logs(entries: Vec<LoggedTransition>) -> Vec<TransitionLog> {
        // Split across two "users'" logs to exercise merging.
        let mut a = TransitionLog::new();
        let mut b = TransitionLog::new();
        for (i, e) in entries.into_iter().enumerate() {
            if i % 2 == 0 {
                a.record(e);
            } else {
                b.record(e);
            }
        }
        vec![a, b]
    }

    #[test]
    fn clean_path_recognized() {
        let ls = logs(vec![
            t("s0", "s1", 0, 0),
            t("s1", "s2", 1, 1),
            t("s2", "s3", 2, 0),
        ]);
        assert_eq!(
            diagnose(&ls, &tok("s0")),
            Verdict::CleanPath {
                final_token: tok("s3"),
                length: 3
            }
        );
    }

    #[test]
    fn empty_logs() {
        assert_eq!(
            diagnose(&[TransitionLog::new()], &tok("s0")),
            Verdict::Empty
        );
    }

    #[test]
    fn fork_located_at_exact_ctr() {
        // s1 served to both user 1 and user 2 (partition attack at ctr 1).
        let ls = logs(vec![
            t("s0", "s1", 0, 0),
            t("s1", "s2a", 1, 1),
            t("s1", "s2b", 1, 2),
            t("s2a", "s3a", 2, 1),
        ]);
        match diagnose(&ls, &tok("s0")) {
            Verdict::Fork {
                at_ctr,
                forked_state,
                users,
            } => {
                assert_eq!(at_ctr, 1);
                assert_eq!(forked_state, tok("s1"));
                let mut users = users;
                users.sort();
                assert_eq!(users, vec![1, 2]);
            }
            other => panic!("expected fork, got {other:?}"),
        }
    }

    #[test]
    fn fabricated_state_located() {
        let ls = logs(vec![
            t("s0", "s1", 0, 0),
            // Server invents "evil" out of thin air for user 1's op.
            t("evil", "s2", 1, 1),
        ]);
        match diagnose(&ls, &tok("s0")) {
            Verdict::OrphanState {
                at_ctr,
                victim,
                token,
            } => {
                assert_eq!(at_ctr, 1);
                assert_eq!(victim, 1);
                assert_eq!(token, tok("evil"));
            }
            other => panic!("expected orphan, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_segment_located() {
        // A correct-looking island (sX -> sY) that never connects to the
        // main history — e.g. a rollback where ops continued on a ghost.
        let ls = logs(vec![
            t("s0", "s1", 0, 0),
            t("sX", "sY", 5, 2),
            t("sY", "sX", 6, 2), // even a 2-cycle: still disconnected
        ]);
        match diagnose(&ls, &tok("s0")) {
            Verdict::Fork { .. } => panic!("not a fork"),
            Verdict::OrphanState { victim, .. } => assert_eq!(victim, 2),
            other => panic!("expected orphan, got {other:?}"),
        }
    }

    #[test]
    fn timeline_attaches_to_report() {
        use tcvs_obs::EventKind;
        let ls = logs(vec![t("s0", "s1", 0, 0), t("evil", "s2", 1, 1)]);
        let timeline = vec![
            Event::new(1, EventKind::SyncUp, 0).detail("fail"),
            Event::new(2, EventKind::Detection, 1).detail("orphan"),
        ];
        let report = diagnose_with_timeline(&ls, &tok("s0"), timeline);
        assert!(matches!(report.verdict, Verdict::OrphanState { .. }));
        assert_eq!(report.timeline.len(), 2);
        let text = report.render();
        assert!(text.starts_with("verdict: OrphanState"));
        assert!(text.contains("timeline:"));
        assert!(text.contains("sync-up"));
    }

    #[test]
    fn single_transition_path() {
        let mut l = TransitionLog::new();
        l.record(t("s0", "s1", 0, 0));
        assert_eq!(
            diagnose(&[l], &tok("s0")),
            Verdict::CleanPath {
                final_token: tok("s1"),
                length: 1
            }
        );
    }
}
