//! Cold, independent re-verification of an [`EvidenceBundle`].
//!
//! The paper's detection guarantee ends with a client *knowing* the server
//! deviated; convincing a third party (the other users, an operator, the
//! paper's "external mechanism") requires that the third party re-derive
//! the verdict from the signed materials alone, without trusting the
//! reporter or talking to the accused server. [`audit`] does exactly that:
//! starting from nothing but bundle bytes it re-verifies every embedded
//! signature against the embedded public keys, re-decodes every
//! verification object (which re-checks its internal hash chain),
//! recomputes the grove spine from the per-shard roots, re-runs the
//! broadcast sync-up predicates, re-localizes the deviating shards, and
//! re-runs [`crate::forensics::diagnose`] over the opt-in transition logs
//! to name the first bad counter — then cross-checks its own conclusions
//! against what the reporter claimed.
//!
//! Tampered or forged artifacts never reach the re-derivation: the framing
//! layer ([`EvidenceBundle::from_bytes`]) rejects them at the exact
//! offending field, and [`audit_bytes`] surfaces that as a rejected
//! [`AuditReport`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tcvs_crypto::{mss_verify, Digest, MssPublicKey, UserId};
use tcvs_merkle::{grove_root, VerificationObject};

use crate::evidence::{EvidenceBundle, EvidenceError};
use crate::forensics::{diagnose, TransitionLog, Verdict};
use crate::msg::{SignedCheckpoint, SignedEpochState};
use crate::state::signed_payload;
use crate::sync::{
    protocol1_grove_sync_ok, protocol1_sync_ok, protocol2_deviating_shards,
    protocol2_grove_sync_ok, protocol2_sync_ok,
};
use crate::types::Ctr;

/// One named re-verification step. `passed` means the *honest-server
/// property* the step checks held on the embedded materials — so a failed
/// check inside an authentic bundle is confirmation of deviation, not a
/// defect in the bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditCheck {
    /// Stable step name (e.g. `"deposit-signatures"`).
    pub name: &'static str,
    /// Whether the honesty property held.
    pub passed: bool,
    /// Human-readable explanation of the outcome.
    pub detail: String,
}

/// The first deviation the audit could localize from transition logs: the
/// shard, counter, and users on the wrong side of history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Culprit {
    /// Shard whose logs contain the anomaly.
    pub shard: u32,
    /// Counter at which history first went bad.
    pub at_ctr: Ctr,
    /// Users involved (both fork sides, or the orphan's victim).
    pub users: Vec<UserId>,
    /// Anomaly class: `"fork"` or `"orphan-state"`.
    pub class: &'static str,
    /// The offending state token (forked or fabricated).
    pub token: Digest,
}

/// The machine-readable outcome of a cold audit.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// True iff the artifact was authentic and well-formed (magic,
    /// integrity digest, every field decoded). A rejected bundle proves
    /// nothing about the server.
    pub accepted: bool,
    /// Why the artifact was rejected, when `accepted` is false.
    pub rejection: Option<String>,
    /// The bundle's detection-site label, once decoded.
    pub kind: Option<String>,
    /// The bundle's seed (0 when rejected before decoding).
    pub seed: u64,
    /// The detecting client's protocol label.
    pub protocol: String,
    /// The re-verification steps, in execution order.
    pub checks: Vec<AuditCheck>,
    /// Shards the audit itself re-localized from the embedded shares.
    pub deviating_shards: Vec<u32>,
    /// Per-shard transition-log verdict summaries `(shard, summary)`.
    pub shard_verdicts: Vec<(u32, String)>,
    /// The first localized deviation, when transition logs pin one down.
    pub culprit: Option<Culprit>,
    /// True iff the audit independently confirmed a deviation: some
    /// honesty check failed, a shard's sync-up predicate failed, or a
    /// transition-log verdict was non-clean.
    pub confirmed: bool,
}

impl AuditReport {
    fn rejected(err: &EvidenceError) -> AuditReport {
        AuditReport {
            accepted: false,
            rejection: Some(err.to_string()),
            kind: None,
            seed: 0,
            protocol: String::new(),
            checks: Vec::new(),
            deviating_shards: Vec::new(),
            shard_verdicts: Vec::new(),
            culprit: None,
            confirmed: false,
        }
    }

    /// True iff every honesty check passed (only meaningful when
    /// `accepted`).
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the report for a human operator.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.accepted {
            let why = self.rejection.as_deref().unwrap_or("unknown");
            let _ = writeln!(out, "REJECTED: {why}");
            let _ = writeln!(
                out,
                "the artifact is not authentic evidence; it proves nothing about the server"
            );
            return out;
        }
        let kind = self.kind.as_deref().unwrap_or("?");
        let _ = writeln!(
            out,
            "evidence bundle: {kind} (protocol {}, seed {})",
            self.protocol, self.seed
        );
        for c in &self.checks {
            let mark = if c.passed { "  ok " } else { "FAIL " };
            let _ = writeln!(out, "  [{mark}] {} — {}", c.name, c.detail);
        }
        if !self.deviating_shards.is_empty() {
            let _ = writeln!(
                out,
                "  deviating shards (re-localized): {:?}",
                self.deviating_shards
            );
        }
        for (shard, summary) in &self.shard_verdicts {
            let _ = writeln!(out, "  shard {shard} logs: {summary}");
        }
        if let Some(c) = &self.culprit {
            let _ = writeln!(
                out,
                "  culprit: shard {} {} at ctr {} involving users {:?} (state {})",
                c.shard,
                c.class,
                c.at_ctr,
                c.users,
                c.token.short()
            );
        }
        if self.confirmed {
            let _ = writeln!(out, "verdict: DEVIATION CONFIRMED");
        } else {
            let _ = writeln!(out, "verdict: no deviation re-derivable from this bundle");
        }
        out
    }

    /// Renders the report as a stable JSON document (hand-rolled, like the
    /// bench results writer — no serde in the workspace).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"tcvs-audit-report/v1\",");
        let _ = writeln!(out, "  \"accepted\": {},", self.accepted);
        match &self.rejection {
            Some(r) => {
                let _ = writeln!(out, "  \"rejection\": \"{}\",", json_escape(r));
            }
            None => {
                let _ = writeln!(out, "  \"rejection\": null,");
            }
        }
        match &self.kind {
            Some(k) => {
                let _ = writeln!(out, "  \"kind\": \"{}\",", json_escape(k));
            }
            None => {
                let _ = writeln!(out, "  \"kind\": null,");
            }
        }
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"protocol\": \"{}\",", json_escape(&self.protocol));
        out.push_str("  \"checks\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            let comma = if i + 1 == self.checks.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"passed\": {}, \"detail\": \"{}\"}}{comma}",
                c.name,
                c.passed,
                json_escape(&c.detail)
            );
        }
        out.push_str("  ],\n");
        let shards: Vec<String> = self.deviating_shards.iter().map(u32::to_string).collect();
        let _ = writeln!(out, "  \"deviating_shards\": [{}],", shards.join(", "));
        match &self.culprit {
            Some(c) => {
                let users: Vec<String> = c.users.iter().map(u32::to_string).collect();
                let _ = writeln!(
                    out,
                    "  \"culprit\": {{\"shard\": {}, \"at_ctr\": {}, \"class\": \"{}\", \
                     \"users\": [{}], \"token\": \"{}\"}},",
                    c.shard,
                    c.at_ctr,
                    c.class,
                    users.join(", "),
                    c.token
                );
            }
            None => {
                let _ = writeln!(out, "  \"culprit\": null,");
            }
        }
        let _ = writeln!(out, "  \"confirmed\": {}", self.confirmed);
        out.push_str("}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Decodes and audits raw bundle bytes. Framing-level tampering (bad
/// magic, digest mismatch, malformed field) yields a rejected report
/// naming the offending layer; an authentic bundle proceeds to [`audit`].
pub fn audit_bytes(bytes: &[u8]) -> AuditReport {
    match EvidenceBundle::from_bytes(bytes) {
        Ok(bundle) => audit(&bundle),
        Err(err) => AuditReport::rejected(&err),
    }
}

/// Re-derives the deviation verdict from an (already authenticated)
/// bundle's embedded materials. See the module docs for the steps.
pub fn audit(bundle: &EvidenceBundle) -> AuditReport {
    let mut checks = Vec::new();
    let keys: BTreeMap<UserId, MssPublicKey> = bundle.keys.iter().copied().collect();

    checks.push(check_deposit_signatures(bundle, &keys));
    if !bundle.epoch_states.is_empty() {
        checks.push(check_epoch_signatures(bundle, &keys));
    }
    if !bundle.checkpoints.is_empty() {
        checks.push(check_checkpoint_signatures(bundle, &keys));
    }
    if !bundle.vos.is_empty() {
        checks.push(check_vos(bundle));
    }
    if let Some(c) = check_grove(bundle) {
        checks.push(c);
    }

    let mut deviating_shards: Vec<u32> = Vec::new();
    if !bundle.shares.is_empty() {
        let (check, shards) = check_sync(bundle);
        checks.push(check);
        deviating_shards = shards;
        checks.push(check_localization(bundle, &deviating_shards));
    }

    let (shard_verdicts, culprit) = run_diagnosis(bundle);

    let honesty_failed = checks
        .iter()
        .any(|c| !c.passed && c.name != "localization-consistent");
    let confirmed = honesty_failed || culprit.is_some();

    AuditReport {
        accepted: true,
        rejection: None,
        kind: Some(bundle.kind.label().to_string()),
        seed: bundle.seed,
        protocol: bundle.protocol.clone(),
        checks,
        deviating_shards,
        shard_verdicts,
        culprit,
        confirmed,
    }
}

/// Verifies every Protocol I signed deposit against the embedded keys.
fn check_deposit_signatures(
    bundle: &EvidenceBundle,
    keys: &BTreeMap<UserId, MssPublicKey>,
) -> AuditCheck {
    let mut bad: Vec<String> = Vec::new();
    for (i, s) in bundle.signed_states.iter().enumerate() {
        match keys.get(&s.signer) {
            None => bad.push(format!("[{i}] signer {} has no key", s.signer)),
            Some(pk) => {
                let payload = signed_payload(&s.root, s.ctr);
                if !mss_verify(pk, &payload, &s.sig) {
                    bad.push(format!("[{i}] signer {} ctr {} invalid", s.signer, s.ctr));
                }
            }
        }
    }
    finish_sig_check("deposit-signatures", bundle.signed_states.len(), bad)
}

/// Verifies every Protocol III epoch state against the embedded keys.
fn check_epoch_signatures(
    bundle: &EvidenceBundle,
    keys: &BTreeMap<UserId, MssPublicKey>,
) -> AuditCheck {
    let mut bad: Vec<String> = Vec::new();
    for (i, s) in bundle.epoch_states.iter().enumerate() {
        match keys.get(&s.user) {
            None => bad.push(format!("[{i}] user {} has no key", s.user)),
            Some(pk) => {
                let payload =
                    SignedEpochState::payload(s.user, s.epoch, &s.sigma, s.last.as_ref(), s.ops);
                if !mss_verify(pk, &payload, &s.sig) {
                    bad.push(format!("[{i}] user {} epoch {} invalid", s.user, s.epoch));
                }
            }
        }
    }
    finish_sig_check("epoch-signatures", bundle.epoch_states.len(), bad)
}

/// Verifies every Protocol III audited checkpoint against the embedded keys.
fn check_checkpoint_signatures(
    bundle: &EvidenceBundle,
    keys: &BTreeMap<UserId, MssPublicKey>,
) -> AuditCheck {
    let mut bad: Vec<String> = Vec::new();
    for (i, c) in bundle.checkpoints.iter().enumerate() {
        match keys.get(&c.checker) {
            None => bad.push(format!("[{i}] checker {} has no key", c.checker)),
            Some(pk) => {
                let payload = SignedCheckpoint::payload(c.epoch, c.checker, &c.final_token);
                if !mss_verify(pk, &payload, &c.sig) {
                    bad.push(format!(
                        "[{i}] checker {} epoch {} invalid",
                        c.checker, c.epoch
                    ));
                }
            }
        }
    }
    finish_sig_check("checkpoint-signatures", bundle.checkpoints.len(), bad)
}

fn finish_sig_check(name: &'static str, total: usize, bad: Vec<String>) -> AuditCheck {
    if bad.is_empty() {
        AuditCheck {
            name,
            passed: true,
            detail: format!("{total}/{total} signatures verify"),
        }
    } else {
        AuditCheck {
            name,
            passed: false,
            detail: format!("{}/{total} invalid: {}", bad.len(), bad.join("; ")),
        }
    }
}

/// Re-decodes every embedded verification object; `from_bytes` re-verifies
/// the VO's internal digests, so a successful decode re-checks the proof's
/// hash chain.
fn check_vos(bundle: &EvidenceBundle) -> AuditCheck {
    let mut bad: Vec<String> = Vec::new();
    for (i, v) in bundle.vos.iter().enumerate() {
        if let Err(e) = VerificationObject::from_bytes(v) {
            bad.push(format!("[{i}] {e:?}"));
        }
    }
    if bad.is_empty() {
        AuditCheck {
            name: "vo-hash-chains",
            passed: true,
            detail: format!("{0}/{0} verification objects re-verify", bundle.vos.len()),
        }
    } else {
        AuditCheck {
            name: "vo-hash-chains",
            passed: false,
            detail: format!(
                "{}/{} invalid: {}",
                bad.len(),
                bundle.vos.len(),
                bad.join("; ")
            ),
        }
    }
}

/// Recomputes the grove spine from the embedded per-shard roots and
/// compares it to the claimed combined root.
fn check_grove(bundle: &EvidenceBundle) -> Option<AuditCheck> {
    let g = bundle.grove.as_ref()?;
    if g.shard_roots.is_empty() {
        return Some(AuditCheck {
            name: "grove-root",
            passed: false,
            detail: "grove evidence has zero shard roots".into(),
        });
    }
    let recomputed = grove_root(&g.shard_roots);
    if recomputed == g.grove_root {
        Some(AuditCheck {
            name: "grove-root",
            passed: true,
            detail: format!(
                "recomputed root over {} shard roots matches (epoch {})",
                g.shard_roots.len(),
                g.epoch
            ),
        })
    } else {
        Some(AuditCheck {
            name: "grove-root",
            passed: false,
            detail: format!(
                "recomputed {} != claimed {} (epoch {})",
                recomputed.short(),
                g.grove_root.short(),
                g.epoch
            ),
        })
    }
}

/// Re-runs the broadcast sync-up predicate appropriate to the bundle's
/// protocol, and (for XOR-accumulator protocols) re-localizes the
/// deviating shards.
fn check_sync(bundle: &EvidenceBundle) -> (AuditCheck, Vec<u32>) {
    let protocol1 = bundle.protocol == "protocol-1";
    let sharded = bundle.shares.len() > 1;
    let (ok, shards): (bool, Vec<u32>) = if protocol1 {
        let ok = if sharded {
            protocol1_grove_sync_ok(&bundle.shares)
        } else {
            protocol1_sync_ok(&bundle.shares[0])
        };
        // Protocol I's counter predicate localizes too: a shard whose
        // shares fail the per-shard predicate is deviating.
        let shards = bundle
            .shares
            .iter()
            .enumerate()
            .filter(|(_, s)| !protocol1_sync_ok(s))
            .map(|(i, _)| i as u32)
            .collect();
        (ok, shards)
    } else if bundle.initials.len() == bundle.shares.len() {
        let ok = if sharded {
            protocol2_grove_sync_ok(&bundle.initials, &bundle.shares)
        } else {
            protocol2_sync_ok(&bundle.initials[0], &bundle.shares[0])
        };
        let shards = protocol2_deviating_shards(&bundle.initials, &bundle.shares)
            .into_iter()
            .map(|s| s as u32)
            .collect();
        (ok, shards)
    } else {
        return (
            AuditCheck {
                name: "sync-predicate",
                passed: false,
                detail: format!(
                    "{} initial tokens for {} shard share-sets",
                    bundle.initials.len(),
                    bundle.shares.len()
                ),
            },
            Vec::new(),
        );
    };
    let check = if ok {
        AuditCheck {
            name: "sync-predicate",
            passed: true,
            detail: "broadcast sync-up predicate holds on embedded shares".into(),
        }
    } else {
        AuditCheck {
            name: "sync-predicate",
            passed: false,
            detail: format!("sync-up predicate fails; shards {shards:?} deviate"),
        }
    };
    (check, shards)
}

/// Cross-checks the reporter's claimed deviating shards against the
/// audit's own localization. A mismatch does not clear the server — the
/// recomputed set is authoritative — but it flags a reporter whose claims
/// overreach the evidence.
fn check_localization(bundle: &EvidenceBundle, recomputed: &[u32]) -> AuditCheck {
    if bundle.claimed_deviating_shards == recomputed {
        AuditCheck {
            name: "localization-consistent",
            passed: true,
            detail: format!("reporter and audit agree: {recomputed:?}"),
        }
    } else {
        AuditCheck {
            name: "localization-consistent",
            passed: false,
            detail: format!(
                "reporter claimed {:?}, audit re-derived {:?}",
                bundle.claimed_deviating_shards, recomputed
            ),
        }
    }
}

/// Runs `diagnose` per shard over the opt-in transition logs; the first
/// non-clean verdict (lowest shard index) becomes the culprit.
fn run_diagnosis(bundle: &EvidenceBundle) -> (Vec<(u32, String)>, Option<Culprit>) {
    let mut verdicts = Vec::new();
    let mut culprit: Option<Culprit> = None;
    for (shard, users) in &bundle.transition_logs {
        let Some(initial) = bundle.initials.get(*shard as usize) else {
            verdicts.push((*shard, "no initial token for shard".to_string()));
            continue;
        };
        let logs: Vec<TransitionLog> = users.iter().map(|(_, l)| l.clone()).collect();
        let verdict = diagnose(&logs, initial);
        let summary = match &verdict {
            Verdict::CleanPath { length, .. } => {
                format!("clean path of {length} transitions")
            }
            Verdict::Fork {
                at_ctr,
                forked_state,
                users,
            } => format!(
                "FORK at ctr {at_ctr}: state {} served twice, users {users:?}",
                forked_state.short()
            ),
            Verdict::OrphanState {
                at_ctr,
                victim,
                token,
            } => format!(
                "ORPHAN at ctr {at_ctr}: user {victim} consumed fabricated state {}",
                token.short()
            ),
            Verdict::Empty => "no transitions logged".to_string(),
        };
        verdicts.push((*shard, summary));
        if culprit.is_none() {
            culprit = match verdict {
                Verdict::Fork {
                    at_ctr,
                    forked_state,
                    users,
                } => Some(Culprit {
                    shard: *shard,
                    at_ctr,
                    users,
                    class: "fork",
                    token: forked_state,
                }),
                Verdict::OrphanState {
                    at_ctr,
                    victim,
                    token,
                } => Some(Culprit {
                    shard: *shard,
                    at_ctr,
                    users: vec![victim],
                    class: "orphan-state",
                    token,
                }),
                _ => None,
            };
        }
    }
    (verdicts, culprit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_crypto::{setup_users, sha256};
    use tcvs_obs::MetricsRegistry;

    use crate::evidence::{EvidenceBuilder, EvidenceKind, GroveEvidence};
    use crate::forensics::LoggedTransition;
    use crate::msg::{SignedState, SyncShare};
    use crate::state::{signed_payload, state_token};

    /// A two-shard incident where shard 1's accumulator was corrupted by a
    /// lying server: shares that XOR to garbage, plus transition logs that
    /// contain a fork at ctr 3.
    fn forked_bundle() -> EvidenceBundle {
        let (mut rings, registry) = setup_users([9; 32], 3, 4);
        let initials = [sha256(b"shard0-init"), sha256(b"shard1-init")];

        // Shard 0: one honest op by user 0 — σ telescopes to
        // `initial ⊕ t1`, so the per-shard predicate holds.
        let t1 = state_token(&sha256(b"r1"), 1, 0);
        let shard0 = vec![
            SyncShare {
                user: 0,
                lctr: 1,
                gctr: 1,
                sigma: initials[0] ^ t1,
                last: Some(t1),
            },
            SyncShare {
                user: 1,
                lctr: 0,
                gctr: 1,
                sigma: Digest::ZERO,
                last: None,
            },
        ];

        // Shard 1: the server equivocated — the XOR of shares can't close.
        let shard1 = vec![
            SyncShare {
                user: 0,
                lctr: 1,
                gctr: 1,
                sigma: sha256(b"lie-a"),
                last: Some(sha256(b"lie-a-last")),
            },
            SyncShare {
                user: 2,
                lctr: 1,
                gctr: 1,
                sigma: sha256(b"lie-b"),
                last: Some(sha256(b"lie-b-last")),
            },
        ];

        // Transition logs for shard 1: both users were shown histories
        // that consume the same parent state — a fork at ctr 3.
        let forked = sha256(b"forked-parent");
        let mut log_a = TransitionLog::new();
        log_a.record(LoggedTransition {
            old_token: initials[1],
            new_token: forked,
            ctr: 2,
            user: 0,
        });
        log_a.record(LoggedTransition {
            old_token: forked,
            new_token: sha256(b"side-a"),
            ctr: 3,
            user: 0,
        });
        let mut log_b = TransitionLog::new();
        log_b.record(LoggedTransition {
            old_token: forked,
            new_token: sha256(b"side-b"),
            ctr: 3,
            user: 2,
        });

        // A valid deposit rides along (evidence of what *was* signed).
        let root = sha256(b"deposit-root");
        let payload = signed_payload(&root, 7);
        let sig = rings[0].sign(&payload).unwrap();

        let metrics = MetricsRegistry::new();
        metrics.counter("sync.rounds").add(2);

        EvidenceBuilder::new(EvidenceKind::ShardLocalization, 99, "protocol-2")
            .captured_at(12)
            .description("seeded 1-of-2 shard fork")
            .deviation(&crate::types::Deviation::SyncFailed)
            .initials(&initials)
            .grove(GroveEvidence {
                epoch: 1,
                shard_roots: vec![sha256(b"gr0"), sha256(b"gr1")],
                shard_ctrs: vec![1, 3],
                shard_last_users: vec![0, 2],
                grove_root: grove_root(&[sha256(b"gr0"), sha256(b"gr1")]),
            })
            .claimed_shards([1usize])
            .shares(vec![shard0, shard1])
            .signed_state(SignedState {
                signer: 0,
                root,
                ctr: 7,
                sig,
            })
            .keys_from(&registry)
            .transition_log(1, 0, &log_a)
            .transition_log(1, 2, &log_b)
            .metrics(&metrics.snapshot())
            .build()
    }

    #[test]
    fn confirms_fork_and_names_shard_and_counter() {
        let bundle = forked_bundle();
        let report = audit(&bundle);
        assert!(report.accepted);
        assert!(report.confirmed, "deviation must be re-derived");
        assert_eq!(report.deviating_shards, vec![1]);
        let culprit = report
            .culprit
            .clone()
            .expect("transition logs pin the culprit");
        assert_eq!(culprit.shard, 1);
        assert_eq!(culprit.at_ctr, 3);
        assert_eq!(culprit.class, "fork");
        assert_eq!(culprit.users, vec![0, 2]);
        // Reporter and audit agree on localization.
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "localization-consistent" && c.passed));
        // The honest materials still verify.
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "deposit-signatures" && c.passed));
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "grove-root" && c.passed));
        let text = report.render_text();
        assert!(text.contains("DEVIATION CONFIRMED"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"confirmed\": true"), "{json}");
        assert!(json.contains("\"at_ctr\": 3"), "{json}");
    }

    #[test]
    fn audit_bytes_round_trip_matches_in_memory_audit() {
        let bundle = forked_bundle();
        let report = audit_bytes(&bundle.to_bytes());
        assert!(report.accepted);
        assert!(report.confirmed);
        assert_eq!(report.deviating_shards, vec![1]);
    }

    #[test]
    fn every_byte_flip_is_rejected_by_audit() {
        let bytes = forked_bundle().to_bytes();
        // Exhaustive over a prefix + stride over the rest keeps the test
        // fast while still crossing every section of the payload.
        let positions = (0..bytes.len()).filter(|i| *i < 64 || i % 7 == 0);
        for i in positions {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let report = audit_bytes(&bad);
            assert!(!report.accepted, "flip at byte {i} accepted");
            assert!(!report.confirmed, "rejected artifact must confirm nothing");
            assert!(report.rejection.is_some());
        }
    }

    #[test]
    fn tampered_deposit_signature_fails_that_check() {
        let mut bundle = forked_bundle();
        bundle.signed_states[0].ctr += 1; // payload no longer matches sig
        let report = audit(&bundle);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "deposit-signatures" && !c.passed));
        assert!(report.confirmed);
    }

    #[test]
    fn honest_bundle_confirms_nothing() {
        let (_, registry) = setup_users([3; 32], 2, 3);
        let initial = sha256(b"init");
        let t1 = state_token(&sha256(b"r1"), 1, 0);
        let shares = vec![
            SyncShare {
                user: 0,
                lctr: 1,
                gctr: 1,
                sigma: initial ^ t1,
                last: Some(t1),
            },
            SyncShare {
                user: 1,
                lctr: 0,
                gctr: 1,
                sigma: Digest::ZERO,
                last: None,
            },
        ];
        let bundle = EvidenceBuilder::new(EvidenceKind::ProtocolVerdict, 5, "protocol-2")
            .description("false alarm probe")
            .initials(&[initial])
            .shares(vec![shares])
            .keys_from(&registry)
            .build();
        let report = audit(&bundle);
        assert!(report.accepted);
        assert!(!report.confirmed, "{}", report.render_text());
        assert!(report.deviating_shards.is_empty());
        assert!(report.render_text().contains("no deviation"));
    }

    #[test]
    fn overclaiming_reporter_is_flagged() {
        let mut bundle = forked_bundle();
        bundle.claimed_deviating_shards = vec![0, 1]; // shard 0 was honest
        let report = audit(&bundle);
        // Still confirmed (shard 1 really deviated) but the claim mismatch
        // is surfaced.
        assert!(report.confirmed);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "localization-consistent" && !c.passed));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
