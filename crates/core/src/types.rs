//! Shared protocol types: counters, configuration, and deviation verdicts.

use std::fmt;

use tcvs_crypto::UserId;
use tcvs_merkle::VerifyError;

/// The server's global operation counter `ctr`.
pub type Ctr = u64;

/// An epoch number (Protocol III): `round / epoch_len`.
pub type Epoch = u64;

/// Static protocol configuration, common knowledge among all users.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Merkle B+-tree branching order.
    pub order: usize,
    /// Sync-up threshold `k`: the first user to complete `k` operations
    /// since the last sync-up triggers one (Protocols I and II).
    pub k: u64,
    /// Epoch length `t` in rounds (Protocol III).
    pub epoch_len: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            order: tcvs_merkle::DEFAULT_ORDER,
            k: 16,
            epoch_len: 100,
        }
    }
}

/// Why a client concluded that the server deviated (§2: integrity or
/// availability violation). Detection of *any* deviation is the protocols'
/// sole guarantee; the variants record the evidence class for diagnostics
/// and the detection-delay experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Deviation {
    /// The signed root digest failed signature verification (Protocol I).
    BadSignature,
    /// The verification object or claimed answer failed replay verification.
    BadProof(VerifyError),
    /// The server presented a counter that regressed or repeated.
    CounterRegression {
        /// Counter value the server presented.
        seen: Ctr,
        /// Minimum acceptable value.
        expected_at_least: Ctr,
    },
    /// The periodic sync-up check failed: no user's local view explains the
    /// global state (Protocols I and II).
    SyncFailed,
    /// The epoch audit failed for this epoch (Protocol III).
    EpochCheckFailed(Epoch),
    /// A user's signed epoch state was missing from the server during an
    /// audit (Protocol III availability violation, or workload violation).
    MissingEpochState {
        /// The audited epoch.
        epoch: Epoch,
        /// The user whose state is missing.
        user: UserId,
    },
    /// A stored epoch state or checkpoint carried an invalid signature
    /// (Protocol III).
    BadEpochSignature(Epoch),
    /// The server's announced epoch disagrees with the client's local clock
    /// beyond the partial-synchrony tolerance (Protocol III).
    EpochSkew {
        /// Epoch the server claimed.
        claimed: Epoch,
        /// Epoch the client's clock implies.
        expected: Epoch,
    },
    /// The signing key ran out of one-time keys (operational, not an attack,
    /// but the client must stop rather than continue unverified).
    KeyExhausted,
}

impl fmt::Display for Deviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Deviation::BadSignature => write!(f, "illegitimate state signature"),
            Deviation::BadProof(e) => write!(f, "proof verification failed: {e}"),
            Deviation::CounterRegression {
                seen,
                expected_at_least,
            } => write!(
                f,
                "counter regression: saw {seen}, expected at least {expected_at_least}"
            ),
            Deviation::SyncFailed => write!(f, "sync-up check failed for every user"),
            Deviation::EpochCheckFailed(e) => write!(f, "epoch {e} audit failed"),
            Deviation::MissingEpochState { epoch, user } => {
                write!(f, "epoch {epoch}: user {user}'s state missing")
            }
            Deviation::BadEpochSignature(e) => {
                write!(f, "epoch {e}: invalid signature on stored state")
            }
            Deviation::EpochSkew { claimed, expected } => {
                write!(f, "server epoch {claimed} vs local clock epoch {expected}")
            }
            Deviation::KeyExhausted => write!(f, "signing key exhausted"),
        }
    }
}

impl std::error::Error for Deviation {}

/// Which protocol a component speaks (used by the simulator and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Baseline: fully trusted server, no verification.
    Trusted,
    /// Protocol I: signed roots + counter + broadcast sync-up.
    One,
    /// Protocol II: XOR state accumulators + broadcast sync-up.
    Two,
    /// Protocol III: epoch-based, server-mediated audit.
    Three,
    /// §2.2.3 strawman: token-ring turn passing.
    TokenRing,
    /// §4.3 strawman: untagged XOR accumulator.
    NaiveXor,
}

impl ProtocolKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Trusted => "trusted",
            ProtocolKind::One => "protocol-1",
            ProtocolKind::Two => "protocol-2",
            ProtocolKind::Three => "protocol-3",
            ProtocolKind::TokenRing => "token-ring",
            ProtocolKind::NaiveXor => "naive-xor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ProtocolConfig::default();
        assert!(c.order >= tcvs_merkle::MIN_ORDER);
        assert!(c.k > 0);
        assert!(c.epoch_len > 0);
    }

    #[test]
    fn deviation_display_is_informative() {
        let d = Deviation::CounterRegression {
            seen: 3,
            expected_at_least: 5,
        };
        let s = d.to_string();
        assert!(s.contains('3') && s.contains('5'));
        assert!(Deviation::SyncFailed.to_string().contains("sync"));
    }

    #[test]
    fn protocol_labels_unique() {
        use ProtocolKind::*;
        let all = [Trusted, One, Two, Three, TokenRing, NaiveXor];
        let mut labels: Vec<_> = all.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
