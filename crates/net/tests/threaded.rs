//! End-to-end tests of the threaded deployment: concurrency safety,
//! blocking semantics, adversary detection over channels, and resilience —
//! benign faults, crash-restarts, and graceful shutdown.

use std::time::Duration;

use tcvs_core::adversary::{LieServer, TamperServer, Trigger};
use tcvs_core::{
    Deviation, FaultKind, FaultPlan, FaultRates, HonestServer, Op, ProtocolConfig, ProtocolKind,
    SyncShare,
};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{
    run_throughput, FaultLink, NetClient1, NetClient2, NetClient3, NetError, NetServer,
    NetServerOptions, RetryPolicy,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

/// A policy that keeps fault-heavy tests fast without sacrificing retries.
fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_timeout: Duration::from_millis(40),
        max_jitter: Duration::from_millis(5),
    }
}

#[test]
fn protocol2_concurrent_clients_stay_consistent() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let mut handles = Vec::new();
    for u in 0..4u32 {
        let mut c = NetClient2::new(u, &r0, cfg, &server);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let op = if i % 2 == 0 {
                    Op::Put(u64_key(u as u64 * 100 + i), vec![i as u8])
                } else {
                    Op::Get(u64_key(u as u64 * 100 + i - 1))
                };
                c.execute(&op).expect("honest server");
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Post-hoc sync-up over the collected clients must succeed.
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    server.shutdown();
}

#[test]
fn protocol1_blocking_server_serializes_concurrent_clients() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x22; 32], 3, 7);
    let mut clients: Vec<NetClient1> = rings
        .into_iter()
        .map(|r| NetClient1::new(r, registry.clone(), cfg, &server))
        .collect();
    clients[0].deposit_initial(&r0).unwrap();
    let mut handles = Vec::new();
    for (u, mut c) in clients.into_iter().enumerate() {
        handles.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                c.execute(&Op::Put(u64_key(u as u64 * 64 + i), vec![i as u8]))
                    .expect("honest server");
            }
            c
        }));
    }
    let clients: Vec<NetClient1> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    assert_eq!(server.missed_deposits(), 0, "every deposit arrived");
    server.shutdown();
}

#[test]
fn lie_server_detected_over_the_wire() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(3))), false);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    let mut detected = None;
    for i in 0..10u64 {
        if let Err(e) = c.execute(&Op::Get(u64_key(i))) {
            detected = Some((i, e));
            break;
        }
    }
    let (at, err) = detected.expect("lie must be detected");
    assert_eq!(at, 3, "detected at the forged answer itself");
    assert!(matches!(err, NetError::Deviation(Deviation::BadProof(_))));
    server.shutdown();
}

#[test]
fn tamper_detected_by_protocol1_signature_chain() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(TamperServer::new(&cfg, Trigger::AtCtr(2))), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x33; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.deposit_initial(&r0).unwrap();
    let mut detected = None;
    for i in 0..10u64 {
        if let Err(e) = c.execute(&Op::Put(u64_key(i), vec![1])) {
            detected = Some((i, e));
            break;
        }
    }
    let (at, err) = detected.expect("tamper must be detected");
    assert_eq!(at, 2, "first op after the silent edit exposes it");
    // The stored signature attests the pre-tamper root; the proof no longer
    // matches it (either surfaces as a root mismatch or a bad signature).
    assert!(matches!(
        err,
        NetError::Deviation(
            Deviation::BadSignature | Deviation::BadProof(tcvs_merkle::VerifyError::RootMismatch)
        )
    ));
    server.shutdown();
}

#[test]
fn protocol3_runs_over_the_wire_with_audits() {
    let cfg = ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 8,
    };
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x44; 32], 2, 7);
    let mut clients: Vec<NetClient3> = rings
        .into_iter()
        .map(|r| NetClient3::new(r, registry.clone(), 2, &r0, cfg, &server))
        .collect();
    // Drive 6 epochs, 2 ops per user per epoch, sequentially (the round is
    // the shared clock).
    for e in 0..6u64 {
        for j in 0..2u64 {
            for (u, c) in clients.iter_mut().enumerate() {
                let round = e * cfg.epoch_len + j * 4 + u as u64;
                c.execute_at(&Op::Put(u64_key((u as u64) * 10 + j), vec![e as u8]), round)
                    .expect("honest epochs");
            }
        }
    }
    server.shutdown();
}

#[test]
fn throughput_rig_runs_all_protocols() {
    let cfg = config();
    for p in [ProtocolKind::Trusted, ProtocolKind::One, ProtocolKind::Two] {
        let r = run_throughput(p, 2, 20, 50, &cfg);
        assert_eq!(r.ops, 40, "{p:?}");
        assert_eq!(r.failed_ops, 0, "{p:?}");
        assert!(r.ops_per_sec() > 0.0);
        assert_eq!(r.latencies_ns.len(), 40);
        assert!(r.latency_quantile(0.5) <= r.latency_quantile(0.99));
    }
}

// ---------------------------------------------------------------------------
// Resilience: crash-restarts, shutdown lifecycle, dead servers.
// ---------------------------------------------------------------------------

#[test]
fn killed_server_yields_server_gone_not_a_panic() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    c.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    server.shutdown();
    assert_eq!(
        c.execute(&Op::Put(u64_key(2), vec![2])),
        Err(NetError::ServerGone),
        "requests after shutdown fail cleanly"
    );
    assert_eq!(c.ops_done(), 1);
}

#[test]
fn honest_server_survives_crash_restart_mid_run() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    for i in 0..5u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8])).unwrap();
    }
    server.crash_restart().expect("server is alive");
    for i in 5..10u64 {
        // The restarted server must answer from the *same* verified history,
        // or the client's root/ctr tracking raises a (false) deviation.
        c.execute(&Op::Get(u64_key(i - 5))).expect("no false alarm");
    }
    server.shutdown();
}

#[test]
fn protocol1_crash_restart_preserves_the_signature_chain() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x66; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.deposit_initial(&r0).unwrap();
    for i in 0..4u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8])).unwrap();
    }
    server.crash_restart().expect("server is alive");
    for i in 4..8u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("restored last_sig keeps the chain verifiable");
    }
    server.shutdown();
}

#[test]
fn shutdown_unblocks_a_server_stuck_in_signature_wait() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            blocking_signatures: true,
            deposit_timeout: Duration::from_secs(30),
            ..NetServerOptions::default()
        },
    );
    let r0 = root0(&cfg);
    // A Protocol II client never deposits signatures, so after its first op
    // the blocking server waits for a deposit that will never come.
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    c.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown must not wait out the deposit timeout"
    );
}

#[test]
fn drop_unblocks_a_server_stuck_in_signature_wait() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            blocking_signatures: true,
            deposit_timeout: Duration::from_secs(30),
            ..NetServerOptions::default()
        },
    );
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    c.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    let start = std::time::Instant::now();
    drop(server);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "Drop joins the thread promptly"
    );
}

#[test]
fn shutdown_drains_requests_backlogged_behind_a_block() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            blocking_signatures: true,
            deposit_timeout: Duration::from_secs(30),
            ..NetServerOptions::default()
        },
    );
    let r0 = root0(&cfg);
    // Client A blocks the server (no deposit will come).
    let mut a = NetClient2::new(0, &r0, cfg, &server);
    a.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    // Client B's request lands in the backlog behind the block.
    let mut b = NetClient2::new(1, &r0, cfg, &server);
    let waiter = std::thread::spawn(move || b.execute(&Op::Put(u64_key(2), vec![2])));
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();
    waiter
        .join()
        .unwrap()
        .expect("the graceful drain serves the backlogged op");
}

#[test]
fn deposit_timeout_unblocks_protocol1_and_counts_the_miss() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            blocking_signatures: true,
            deposit_timeout: Duration::from_millis(50),
            ..NetServerOptions::default()
        },
    );
    let r0 = root0(&cfg);
    // A depositing-less client: each op blocks the server until the timeout.
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    c.set_retry_policy(quick_retries());
    for i in 0..3u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("the timeout keeps the server serving");
    }
    assert!(
        server.missed_deposits() >= 2,
        "each unblocked wait is recorded, got {}",
        server.missed_deposits()
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Fault injection: benign faults are invisible to the detectors.
// ---------------------------------------------------------------------------

#[test]
fn explicit_fault_kinds_cause_no_false_alarms() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let mut plan = FaultPlan::none();
    plan.schedule(1, FaultKind::DropRequest)
        .schedule(2, FaultKind::DropReply)
        .schedule(3, FaultKind::Delay(2))
        .schedule(4, FaultKind::Duplicate)
        .schedule(6, FaultKind::CrashRestart);
    let scheduled = plan.len() as u64;
    let link = FaultLink::interpose(&server, plan);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &link);
    c.set_retry_policy(quick_retries());
    for i in 0..10u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .unwrap_or_else(|e| panic!("benign fault raised an alarm at op {i}: {e}"));
    }
    assert_eq!(c.ops_done(), 10);
    assert_eq!(link.applied().total(), scheduled, "every fault fired");
    server.shutdown();
}

#[test]
fn seeded_fault_storm_protocol2_zero_false_alarms() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let plan = FaultPlan::seeded(0xfeed, 60, &FaultRates::heavy());
    assert!(!plan.is_empty());
    let link = FaultLink::interpose(&server, plan);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &link);
    c.set_retry_policy(quick_retries());
    for i in 0..60u64 {
        let op = if i % 3 == 0 {
            Op::Get(u64_key(i % 16))
        } else {
            Op::Put(u64_key(i % 16), vec![i as u8])
        };
        c.execute(&op)
            .unwrap_or_else(|e| panic!("benign fault raised an alarm at op {i}: {e}"));
    }
    assert!(link.applied().total() > 0, "the storm actually hit");
    server.shutdown();
}

#[test]
fn seeded_fault_storm_protocol1_zero_false_alarms() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), true);
    let plan = FaultPlan::seeded(0xbead, 40, &FaultRates::light());
    let link = FaultLink::interpose(&server, plan);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x77; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &link);
    c.set_retry_policy(quick_retries());
    c.deposit_initial(&r0).unwrap();
    for i in 0..40u64 {
        c.execute(&Op::Put(u64_key(i % 32), vec![i as u8]))
            .unwrap_or_else(|e| panic!("benign fault raised an alarm at op {i}: {e}"));
    }
    server.shutdown();
}

#[test]
fn faults_do_not_mask_a_lying_server() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(3))), false);
    let plan = FaultPlan::seeded(0xabcd, 20, &FaultRates::light());
    let link = FaultLink::interpose(&server, plan);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &link);
    c.set_retry_policy(quick_retries());
    let mut detected = None;
    for i in 0..20u64 {
        if let Err(e) = c.execute(&Op::Get(u64_key(i))) {
            detected = Some((i, e));
            break;
        }
    }
    let (at, err) = detected.expect("deviation detected despite benign noise");
    assert_eq!(at, 3, "exactly-once delivery preserves the detection index");
    assert!(matches!(err, NetError::Deviation(Deviation::BadProof(_))));
    server.shutdown();
}

#[test]
fn faulty_link_to_a_dead_server_reports_gone_or_timeout() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let link = FaultLink::interpose(&server, FaultPlan::none());
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &link);
    c.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        base_timeout: Duration::from_millis(30),
        max_jitter: Duration::ZERO,
    });
    c.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    server.shutdown();
    match c.execute(&Op::Put(u64_key(2), vec![2])) {
        Err(NetError::ServerGone) | Err(NetError::Timeout { .. }) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn wire_trace_links_client_and_server_spans_of_one_operation() {
    use tcvs_net::{NetServerOptions, NetStats};
    use tcvs_obs::{EventKind, MetricsRegistry, SpanContext, Tracer};

    let cfg = config();
    let (tracer, sink) = Tracer::memory();
    let stats = NetStats::new(std::sync::Arc::new(MetricsRegistry::new()), tracer);
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions::default(),
        stats.clone(),
    );
    // Route through a (quiet) fault link too: pass-through must preserve
    // the trace context it forwards.
    let link = FaultLink::interpose_observed(&server, FaultPlan::none(), stats.clone());
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &link);
    c.set_stats(stats.clone());
    for i in 0..5u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8])).unwrap();
    }
    server.shutdown();

    // One logical operation, one trace: the server's op-served span and the
    // client's deposit span for (user 0, seq 3) both descend from the same
    // deterministic root.
    let root = SpanContext::root(0, 3);
    let events = sink.events();
    let served = events
        .iter()
        .find(|e| e.kind == EventKind::OpServed && e.span.is_some_and(|sp| sp.trace == root.trace))
        .expect("server-side span for seq 3 recorded");
    let deposit = events
        .iter()
        .find(|e| e.kind == EventKind::Deposit && e.span.is_some_and(|sp| sp.trace == root.trace))
        .expect("client-side span for seq 3 recorded");
    let served_span = served.span.unwrap();
    let deposit_span = deposit.span.unwrap();
    assert_eq!(
        served_span.parent,
        Some(root.span),
        "server hop links to the root"
    );
    assert_eq!(
        deposit_span.parent,
        Some(root.span),
        "client verdict links to the root"
    );
    assert_ne!(
        served_span.span, deposit_span.span,
        "distinct spans, one trace"
    );
    // Spans from a different operation live in a different trace.
    let other = SpanContext::root(0, 4);
    assert_ne!(other.trace, root.trace);
    assert!(events
        .iter()
        .any(|e| e.span.is_some_and(|sp| sp.trace == other.trace)));
}
