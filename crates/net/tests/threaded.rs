//! End-to-end tests of the threaded deployment: concurrency safety,
//! blocking semantics, and adversary detection over channels.

use tcvs_core::adversary::{LieServer, TamperServer, Trigger};
use tcvs_core::{Deviation, HonestServer, Op, ProtocolConfig, ProtocolKind, SyncShare};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{run_throughput, NetClient1, NetClient2, NetClient3, NetServer};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

#[test]
fn protocol2_concurrent_clients_stay_consistent() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let mut handles = Vec::new();
    for u in 0..4u32 {
        let mut c = NetClient2::new(u, &r0, cfg, &server);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let op = if i % 2 == 0 {
                    Op::Put(u64_key(u as u64 * 100 + i), vec![i as u8])
                } else {
                    Op::Get(u64_key(u as u64 * 100 + i - 1))
                };
                c.execute(&op).expect("honest server");
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Post-hoc sync-up over the collected clients must succeed.
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    server.shutdown();
}

#[test]
fn protocol1_blocking_server_serializes_concurrent_clients() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x22; 32], 3, 7);
    let mut clients: Vec<NetClient1> = rings
        .into_iter()
        .map(|r| NetClient1::new(r, registry.clone(), cfg, &server))
        .collect();
    clients[0].deposit_initial(&r0).unwrap();
    let mut handles = Vec::new();
    for (u, mut c) in clients.into_iter().enumerate() {
        handles.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                c.execute(&Op::Put(u64_key(u as u64 * 64 + i), vec![i as u8]))
                    .expect("honest server");
            }
            c
        }));
    }
    let clients: Vec<NetClient1> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    server.shutdown();
}

#[test]
fn lie_server_detected_over_the_wire() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(3))), false);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    let mut detected = None;
    for i in 0..10u64 {
        if let Err(d) = c.execute(&Op::Get(u64_key(i))) {
            detected = Some((i, d));
            break;
        }
    }
    let (at, dev) = detected.expect("lie must be detected");
    assert_eq!(at, 3, "detected at the forged answer itself");
    assert!(matches!(dev, Deviation::BadProof(_)));
    server.shutdown();
}

#[test]
fn tamper_detected_by_protocol1_signature_chain() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(TamperServer::new(&cfg, Trigger::AtCtr(2))), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x33; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.deposit_initial(&r0).unwrap();
    let mut detected = None;
    for i in 0..10u64 {
        if let Err(d) = c.execute(&Op::Put(u64_key(i), vec![1])) {
            detected = Some((i, d));
            break;
        }
    }
    let (at, dev) = detected.expect("tamper must be detected");
    assert_eq!(at, 2, "first op after the silent edit exposes it");
    // The stored signature attests the pre-tamper root; the proof no longer
    // matches it (either surfaces as a root mismatch or a bad signature).
    assert!(matches!(
        dev,
        Deviation::BadSignature | Deviation::BadProof(tcvs_merkle::VerifyError::RootMismatch)
    ));
    server.shutdown();
}

#[test]
fn protocol3_runs_over_the_wire_with_audits() {
    let cfg = ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 8,
    };
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x44; 32], 2, 7);
    let mut clients: Vec<NetClient3> = rings
        .into_iter()
        .map(|r| NetClient3::new(r, registry.clone(), 2, &r0, cfg, &server))
        .collect();
    // Drive 6 epochs, 2 ops per user per epoch, sequentially (the round is
    // the shared clock).
    for e in 0..6u64 {
        for j in 0..2u64 {
            for (u, c) in clients.iter_mut().enumerate() {
                let round = e * cfg.epoch_len + j * 4 + u as u64;
                c.execute_at(&Op::Put(u64_key((u as u64) * 10 + j), vec![e as u8]), round)
                    .expect("honest epochs");
            }
        }
    }
    server.shutdown();
}

#[test]
fn throughput_rig_runs_all_protocols() {
    let cfg = config();
    for p in [ProtocolKind::Trusted, ProtocolKind::One, ProtocolKind::Two] {
        let r = run_throughput(p, 2, 20, 50, &cfg);
        assert_eq!(r.ops, 40, "{p:?}");
        assert!(r.ops_per_sec() > 0.0);
        assert_eq!(r.latencies_ns.len(), 40);
        assert!(r.latency_quantile(0.5) <= r.latency_quantile(0.99));
    }
}
