//! End-to-end evidence capture over the wire: a per-op rejection stashes a
//! portable bundle, a failed grove sync-up seals the localization (and the
//! grafted transition logs let the cold audit name the forked shard and
//! counter), and the sealed bytes survive the independent verifier while
//! any single-byte mutation is rejected.

use tcvs_core::adversary::{ForkServer, LieServer, Trigger};
use tcvs_core::{
    audit_bytes, diagnose_with_timeline, EvidenceKind, HonestServer, Op, ProtocolConfig, ServerApi,
    SyncShare, Verdict,
};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{NetClient2, NetServer, NetServerOptions, NetStats, ShardedClient2, ShardedServer};
use tcvs_obs::{Event, EventKind};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0s(n: usize, config: &ProtocolConfig) -> Vec<tcvs_core::Digest> {
    vec![MerkleTree::with_order(config.order).root_digest(); n]
}

/// A lying server's rejected response leaves an auditable bundle on the
/// client: the independent verifier accepts the sealed bytes and reads the
/// exact verdict out of them, and every single-byte mutation is rejected.
#[test]
fn per_op_rejection_captures_an_auditable_bundle() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(3))), false);
    let root0 = MerkleTree::with_order(cfg.order).root_digest();
    let mut c = NetClient2::new(0, &root0, cfg, &server);
    c.enable_logging();
    c.set_evidence_seed(0xDEC0DE);

    let mut verdict = None;
    for i in 0..16u64 {
        if let Err(e) = c.execute(&Op::Put(u64_key(i), vec![i as u8])) {
            verdict = Some((i, e));
            break;
        }
    }
    let (at, _err) = verdict.expect("the lie went undetected");
    assert_eq!(at, 3, "caught on the very response that carried the lie");

    let bundle = c.take_evidence().expect("rejection captured evidence");
    assert!(c.take_evidence().is_none(), "the stash holds one bundle");
    assert_eq!(bundle.kind, EvidenceKind::ProtocolVerdict);
    assert_eq!(bundle.seed, 0xDEC0DE);
    assert_eq!(bundle.trigger.deviation, "bad-proof");
    assert_eq!(bundle.vos.len(), 1, "the offending VO rides along");
    assert_eq!(
        bundle.transition_logs.len(),
        1,
        "the client's accepted-transition history rides along"
    );

    let bytes = bundle.to_bytes();
    let report = audit_bytes(&bytes);
    assert!(report.accepted, "authentic bundle: {:?}", report.rejection);
    assert_eq!(report.kind.as_deref(), Some("protocol-verdict"));
    assert_eq!(report.protocol, "protocol-2");

    // Any single mutated byte is rejected — sample every 11th position to
    // keep the integration test quick (the exhaustive sweep lives in the
    // core unit tests).
    for at in (0..bytes.len()).step_by(11) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        assert!(
            !audit_bytes(&bad).accepted,
            "flipped byte {at} must reject the artifact"
        );
    }
    server.shutdown();
}

/// A fork confined to one shard of a grove: per-op exchanges stay clean on
/// both branches, the sync-up localizes the forked shard, and the captured
/// bundle — with both users' transition logs grafted in — lets the cold
/// audit independently confirm the deviation, re-localize the same shard,
/// and name the exact forked counter.
#[test]
fn grove_fork_bundle_names_the_shard_and_counter() {
    const FORK_AT: u64 = 4;
    let cfg = config();
    let n = 4;
    let bad_shard = 2;
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..n)
        .map(|i| -> Box<dyn ServerApi + Send> {
            if i == bad_shard {
                // Partition user 0 onto branch A; user 1 continues on B.
                Box::new(ForkServer::new(&cfg, Trigger::AtCtr(FORK_AT), &[0]))
            } else {
                Box::new(HonestServer::new(&cfg))
            }
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions::default(),
        NetStats::disabled(),
    );
    let r0 = root0s(n, &cfg);
    let mut alice = ShardedClient2::new(0, &r0, cfg, &grove);
    let mut bob = ShardedClient2::new(1, &r0, cfg, &grove);
    alice.enable_logging();
    bob.enable_logging();

    // Interleave writes; each branch of the fork stays self-consistent, so
    // no per-op exchange alarms — the fork only surfaces at sync-up.
    for i in 0..40u64 {
        alice
            .execute(&Op::Put(u64_key(2 * i), vec![1]))
            .expect("branch A self-consistent");
        bob.execute(&Op::Put(u64_key(2 * i + 1), vec![2]))
            .expect("branch B self-consistent");
    }
    let a = alice.sync_shares();
    let b = bob.sync_shares();
    let per_shard: Vec<Vec<SyncShare>> = (0..n).map(|i| vec![a[i].clone(), b[i].clone()]).collect();
    assert!(!alice.sync_succeeds(&per_shard), "the fork fails sync-up");
    assert_eq!(alice.deviating_shards(&per_shard), vec![bad_shard]);

    // Capture: alice's builder carries her whole view; the harness grafts
    // bob's log and seals.
    let builder = alice
        .localization_evidence(77, &per_shard, None)
        .expect("localization fired");
    let bob_log = bob
        .client(bad_shard)
        .transition_log()
        .expect("logging enabled")
        .clone();
    let bundle = builder.transition_log(bad_shard, 1, &bob_log).build();
    assert_eq!(bundle.kind, EvidenceKind::ShardLocalization);
    assert_eq!(bundle.claimed_deviating_shards, vec![bad_shard as u32]);

    let report = audit_bytes(&bundle.to_bytes());
    assert!(report.accepted, "authentic bundle: {:?}", report.rejection);
    assert!(report.confirmed, "the audit re-derives the deviation cold");
    assert_eq!(
        report.deviating_shards,
        vec![bad_shard as u32],
        "re-localized to the same shard with no live server"
    );
    let culprit = report.culprit.expect("transition logs pin the fork");
    assert_eq!(culprit.shard, bad_shard as u32);
    assert_eq!(culprit.class, "fork");
    assert_eq!(
        culprit.at_ctr, FORK_AT,
        "the audit names the exact forked counter"
    );
    // Determinism: sealing the same capture twice is byte-identical.
    let builder2 = alice
        .localization_evidence(77, &per_shard, None)
        .expect("localization is repeatable");
    let bundle2 = builder2.transition_log(bad_shard, 1, &bob_log).build();
    assert_eq!(bundle.to_bytes(), bundle2.to_bytes());
    grove.shutdown();
}

/// Forensics under a sharded grove: pooling both users' per-shard transition
/// logs and running [`diagnose_with_timeline`] shard by shard names the
/// forked shard's first bad counter — and *only* that shard's. Every honest
/// shard's pooled history reconstructs as a single clean path, so a lie
/// confined to one shard cannot smear the diagnosis onto its neighbours.
#[test]
fn sharded_diagnosis_names_only_the_forked_shards_counter() {
    const FORK_AT: u64 = 5;
    let cfg = config();
    let n = 4;
    let bad_shard = 3;
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..n)
        .map(|i| -> Box<dyn ServerApi + Send> {
            if i == bad_shard {
                Box::new(ForkServer::new(&cfg, Trigger::AtCtr(FORK_AT), &[0]))
            } else {
                Box::new(HonestServer::new(&cfg))
            }
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions::default(),
        NetStats::disabled(),
    );
    let r0 = root0s(n, &cfg);
    let mut alice = ShardedClient2::new(0, &r0, cfg, &grove);
    let mut bob = ShardedClient2::new(1, &r0, cfg, &grove);
    alice.enable_logging();
    bob.enable_logging();
    for i in 0..32u64 {
        alice
            .execute(&Op::Put(u64_key(2 * i), vec![1]))
            .expect("branch A self-consistent");
        bob.execute(&Op::Put(u64_key(2 * i + 1), vec![2]))
            .expect("branch B self-consistent");
    }
    let a = alice.sync_shares();
    let b = bob.sync_shares();
    let per_shard: Vec<Vec<SyncShare>> = (0..n).map(|i| vec![a[i].clone(), b[i].clone()]).collect();
    assert!(!alice.sync_succeeds(&per_shard), "the fork fails sync-up");

    // Every shard's keyspace shares the same empty initial tree, so the
    // common-knowledge initial token is the same for all of them.
    let initial = tcvs_core::state::initial_token(&r0[0]);
    for shard in 0..n {
        let logs = vec![
            alice
                .client(shard)
                .transition_log()
                .expect("logging enabled")
                .clone(),
            bob.client(shard)
                .transition_log()
                .expect("logging enabled")
                .clone(),
        ];
        let timeline = vec![
            Event::new(shard as u64, EventKind::SyncTriggered, 0),
            Event::new(shard as u64, EventKind::SyncUp, 0)
                .detail(format!("shard {shard}: grove sync-up failed")),
        ];
        let report = diagnose_with_timeline(&logs, &initial, timeline);
        if shard == bad_shard {
            match &report.verdict {
                Verdict::Fork { at_ctr, users, .. } => {
                    assert_eq!(
                        *at_ctr, FORK_AT,
                        "the forked shard's diagnosis names the first bad counter"
                    );
                    let mut u = users.clone();
                    u.sort_unstable();
                    assert_eq!(u, vec![0, 1], "both sides of the partition are named");
                }
                other => panic!("expected a fork on shard {shard}, got {other:?}"),
            }
            let rendered = report.render();
            assert!(rendered.contains("Fork"), "{rendered}");
            assert!(rendered.contains("timeline:"), "{rendered}");
            assert!(rendered.contains("sync-up failed"), "{rendered}");
        } else {
            assert!(
                matches!(report.verdict, Verdict::CleanPath { .. }),
                "honest shard {shard} must stay clean, got {:?}",
                report.verdict
            );
        }
    }
    grove.shutdown();
}

/// An honest grove captures nothing: no per-op stash, no localization
/// builder — evidence capture is free on the honest path.
#[test]
fn honest_grove_captures_no_evidence() {
    let cfg = config();
    let n = 3;
    let grove = ShardedServer::spawn(n, &cfg, NetServerOptions::default());
    let mut c = ShardedClient2::new(0, &root0s(n, &cfg), cfg, &grove);
    c.enable_logging();
    for i in 0..30u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("honest grove");
    }
    assert!(c.take_evidence().is_none());
    let per_shard: Vec<Vec<SyncShare>> = c.sync_shares().into_iter().map(|s| vec![s]).collect();
    assert!(c.sync_succeeds(&per_shard));
    assert!(c.localization_evidence(0, &per_shard, None).is_none());
    grove.shutdown();
}
