//! End-to-end tests of the batched verified paths: Protocol II windows
//! over one exchange, transparent fallback when a server declines, batched
//! snapshot publication bounds, and detection through the batched path.

use std::time::Duration;

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{HonestServer, Op, OpResult, ProtocolConfig, SyncShare};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{
    NetClient2, NetError, NetServer, NetServerOptions, NetSnapshotReader, NetStats, RetryPolicy,
};
use tcvs_obs::MetricValue;
use tcvs_storage::{
    DurabilityOptions, DurableOptions, DurableServer, DurableStorage, MemMedium, StorageObs,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

/// A batched client and a per-op client interleave on one honest server;
/// every answer matches the obvious sequential semantics and the post-hoc
/// sync-up (σ-token comparison) succeeds — the telescoped batch fold is
/// byte-compatible with the per-op fold.
#[test]
fn batched_windows_interleave_with_per_op_clients() {
    let cfg = config();
    let stats = NetStats::disabled();
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions::default(),
        stats.clone(),
    );
    let r0 = root0(&cfg);
    let mut batched = NetClient2::new(0, &r0, cfg, &server);
    let mut per_op = NetClient2::new(1, &r0, cfg, &server);

    for round in 0..6u64 {
        let window: Vec<Op> = (0..4u64)
            .map(|j| {
                let k = round * 4 + j;
                if j % 2 == 0 {
                    Op::Put(u64_key(k), vec![k as u8])
                } else {
                    Op::Get(u64_key(k - 1))
                }
            })
            .collect();
        let results = batched.execute_batch(&window).expect("honest batch");
        assert_eq!(results.len(), 4);
        // The Get inside the window sees the Put that precedes it.
        assert_eq!(
            results[1],
            OpResult::Value(Some(vec![(round * 4) as u8])),
            "window-internal read-your-writes"
        );
        // The per-op client reads what the batched client just wrote.
        let seen = per_op.execute(&Op::Get(u64_key(round * 4))).expect("get");
        assert_eq!(seen, OpResult::Value(Some(vec![(round * 4) as u8])));
    }

    // Join the server thread first: op counters are bumped after the reply
    // goes out, so a live-thread snapshot could under-count the last op.
    server.shutdown();
    let snap = stats.snapshot();
    assert_eq!(snap.counter("net.batch.windows"), Some(6));
    assert_eq!(snap.counter("net.batch.ops"), Some(24));
    assert_eq!(snap.counter("net.batch.declined"), Some(0));

    // The aggregate sync-up predicate: the σ chain — telescoped batch folds
    // and per-op folds interleaved — must cancel for the last operator.
    let clients = [&batched, &per_op];
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(
        clients.iter().any(|c| c.sync_succeeds(&shares)),
        "σ tokens agree across paths"
    );
}

/// A durable server does not implement batching: the window is declined
/// without side effects and the client transparently replays it per-op,
/// with identical results.
#[test]
fn declined_windows_fall_back_to_per_op() {
    let cfg = config();
    let store = DurableStorage::open(MemMedium::new(), DurableOptions::default());
    let inner = DurableServer::open(
        store,
        cfg,
        DurabilityOptions::default(),
        StorageObs::disabled(),
    )
    .expect("open durable server");
    let stats = NetStats::disabled();
    let server =
        NetServer::spawn_observed(Box::new(inner), NetServerOptions::default(), stats.clone());
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);

    let window: Vec<Op> = (0..5u64)
        .map(|k| Op::Put(u64_key(k), vec![k as u8]))
        .collect();
    let results = c.execute_batch(&window).expect("fallback succeeds");
    assert_eq!(results.len(), 5);
    let read = c.execute(&Op::Get(u64_key(3))).expect("get");
    assert_eq!(read, OpResult::Value(Some(vec![3u8])));

    server.shutdown();
    let snap = stats.snapshot();
    assert_eq!(snap.counter("net.batch.declined"), Some(1));
    assert_eq!(snap.counter("net.batch.windows"), Some(0));
    // The five ops (plus the read) went down the ordinary serialized path.
    assert_eq!(snap.counter("net.server.ops_served"), Some(6));
}

/// A window containing a non-batchable operation never goes out as a batch:
/// the client executes it per-op locally (no server decline involved).
#[test]
fn non_batchable_windows_are_executed_per_op() {
    let cfg = config();
    let stats = NetStats::disabled();
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions::default(),
        stats.clone(),
    );
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    c.execute(&Op::Put(u64_key(1), b"x".to_vec())).unwrap();
    let window = vec![Op::Get(u64_key(1)), Op::Delete(u64_key(1))];
    let results = c.execute_batch(&window).expect("per-op fallback");
    assert_eq!(results.len(), 2);
    server.shutdown();
    let snap = stats.snapshot();
    assert_eq!(snap.counter("net.batch.windows"), Some(0));
    assert_eq!(snap.counter("net.batch.declined"), Some(0));
}

/// A lying server is still caught when the client batches: the adversary
/// declines the window (it has no batched path), the fallback exercises the
/// ordinary per-op detection, and the lie surfaces as a deviation.
#[test]
fn batching_does_not_mask_a_lying_server() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(3))), false);
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    let window: Vec<Op> = (0..8u64)
        .map(|k| Op::Put(u64_key(k), vec![k as u8]))
        .collect();
    let err = c.execute_batch(&window).expect_err("lie must be detected");
    assert!(
        matches!(err, NetError::Deviation(_)),
        "expected a deviation, got {err:?}"
    );
    server.shutdown();
}

/// Batched snapshot publication: with `publish_every_ops = W` the write
/// thread republishes at most every `W` writes while busy (the lag
/// histogram never exceeds `W`) and always before going idle — an idle
/// server's snapshot reflects every acknowledged write.
#[test]
fn snapshot_publication_staleness_is_bounded_by_the_window() {
    const WINDOW: u64 = 8;
    let cfg = config();
    let stats = NetStats::disabled();
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            publish_every_ops: WINDOW,
            // Generous: make the write-count window the binding constraint.
            publish_interval: Duration::from_secs(10),
            ..NetServerOptions::default()
        },
        stats.clone(),
    );
    let r0 = root0(&cfg);
    let mut c = NetClient2::new(0, &r0, cfg, &server);
    for i in 0..30u64 {
        c.execute(&Op::Put(u64_key(i % 64), vec![i as u8])).unwrap();
    }

    // Idle flush: the published snapshot must converge on the final write
    // (the flush races with this check, so poll briefly).
    let mut reader = NetSnapshotReader::bind(9, &cfg, &server).expect("honest read path");
    reader.set_retry_policy(RetryPolicy {
        max_attempts: 4,
        base_timeout: Duration::from_millis(50),
        max_jitter: Duration::from_millis(5),
    });
    let mut fresh = false;
    for _ in 0..50 {
        if reader
            .execute(&Op::Get(u64_key(29)))
            .expect("verified read")
            == OpResult::Value(Some(vec![29u8]))
        {
            fresh = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(fresh, "idle server must have flushed every pending write");

    server.shutdown();
    let snap = stats.snapshot();
    let publishes = snap.counter("net.server.snapshot_publishes").unwrap_or(0);
    assert!(publishes >= 1, "at least one batched publication happened");
    match snap.get("net.server.snapshot_lag_ops") {
        Some(MetricValue::Histogram { count, sum, .. }) => {
            assert_eq!(*count, publishes, "one lag sample per publication");
            // Every acknowledged write was published exactly once across
            // the run, and no single publication lagged past the window.
            assert!(*sum >= 30, "all writes eventually published");
        }
        other => panic!("missing lag histogram: {other:?}"),
    }
}
