//! End-to-end tests of chunked verified state sync: a cold client
//! bootstrapping a verified reader from nothing, bootstrap traffic riding
//! a seeded fault storm with zero false alarms, and a killed shard
//! rejoining the grove from a peer's chunks with the Protocol II sync-up
//! passing afterwards.

use std::time::Duration;

use tcvs_core::{
    FaultPlan, FaultRates, HonestServer, Op, OpResult, ProtocolConfig, ServerCore, SyncShare,
    NO_USER,
};
use tcvs_merkle::u64_key;
use tcvs_net::{
    BootstrapClient, BootstrapError, FaultLink, NetClient2, NetClientTrusted, NetServer,
    NetServerOptions, NetSnapshotReader, RetryPolicy, ShardedClient2, ShardedServer,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 4,
        k: 16,
        epoch_len: 10,
    }
}

fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_timeout: Duration::from_millis(40),
        max_jitter: Duration::from_millis(5),
    }
}

/// A cold client reaches verified state through the chunk protocol alone:
/// no history replay, no trusted snapshot — bootstrap, then serve verified
/// reads that must agree with what was written.
#[test]
fn cold_reader_bootstraps_and_serves_verified_reads() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            // A small budget forces a genuinely chunked transfer.
            bootstrap_chunk_bytes: 256,
            ..NetServerOptions::default()
        },
    );
    let mut writer = NetClientTrusted::new(0, &server);
    for i in 0..150u64 {
        writer
            .execute(&Op::Put(u64_key(i % 64), vec![(i % 97) as u8; 5]))
            .expect("honest server");
    }

    let (mut reader, report) =
        NetSnapshotReader::bootstrap(9, &cfg, &server, None).expect("cold bootstrap");
    assert_eq!(report.tree.len(), Some(64), "every written key arrived");
    assert_eq!(report.root, report.tree.root_digest());
    assert!(report.chunks_fetched > 1, "the transfer was chunked");
    for i in 0..64u64 {
        let expect = (0..150u64)
            .rev()
            .find(|j| j % 64 == i)
            .map(|j| vec![(j % 97) as u8; 5]);
        assert_eq!(
            reader.execute(&Op::Get(u64_key(i))).expect("verified read"),
            OpResult::Value(expect),
            "bootstrapped reader agrees with the written history at key {i}"
        );
    }

    // Pinning the root just learned must succeed on the quiescent server;
    // pinning a wrong root must fail before any state is admitted.
    let (_, pinned) =
        NetSnapshotReader::bootstrap(10, &cfg, &server, Some(&report.root)).expect("pinned");
    assert_eq!(pinned.root, report.root);
    let wrong = tcvs_merkle::MerkleTree::with_order(cfg.order).root_digest();
    assert!(
        matches!(
            NetSnapshotReader::bootstrap(11, &cfg, &server, Some(&wrong)),
            Err(BootstrapError::AnchorMismatch { .. })
        ),
        "a wrong pin is a loud mismatch, not silent acceptance"
    );
    server.shutdown();
}

/// Bootstrap traffic rides the same wire as a seeded benign fault storm:
/// the storm hits the op path (drops, delays, duplicates, reorders), the
/// verifying writer raises zero false alarms, and every bootstrap through
/// the stormy link still completes with the correct root.
#[test]
fn bootstrap_under_fault_storm_zero_false_alarms() {
    for seed in [0xb007_u64, 0x57a9] {
        let cfg = config();
        let server = NetServer::spawn_with(
            Box::new(HonestServer::new(&cfg)),
            NetServerOptions {
                bootstrap_chunk_bytes: 256,
                ..NetServerOptions::default()
            },
        );
        let plan = FaultPlan::seeded(seed, 40, &FaultRates::heavy());
        let link = FaultLink::interpose(&server, plan);
        let r0 = tcvs_merkle::MerkleTree::with_order(cfg.order).root_digest();
        let mut c = NetClient2::new(0, &r0, cfg, &link);
        c.set_retry_policy(quick_retries());
        for i in 0..20u64 {
            c.execute(&Op::Put(u64_key(i), vec![i as u8; 4]))
                .unwrap_or_else(|e| {
                    panic!("benign fault raised an alarm at op {i} (seed {seed:#x}): {e}")
                });

            // Interleave bootstraps with the stormy writes: each one sees
            // some consistent published snapshot and must verify cleanly.
            if i % 5 == 4 {
                let mut boot = BootstrapClient::new(NO_USER, &link);
                boot.set_retry_policy(quick_retries());
                let report = boot.bootstrap(None).expect("bootstrap under storm");
                assert_eq!(report.root, report.tree.root_digest());
                assert!(report.tree.len().is_some(), "full tree assembled");
            }
        }
        assert!(link.applied().total() > 0, "the storm actually hit");

        // After the storm: the final bootstrap agrees with a storm-free
        // bootstrap straight off the server, and the σ chain still passes.
        let mut stormy = BootstrapClient::new(NO_USER, &link);
        stormy.set_retry_policy(quick_retries());
        let via_link = stormy.bootstrap(None).expect("final bootstrap via link");
        let mut direct = BootstrapClient::new(NO_USER, &server);
        let clean = direct.bootstrap(None).expect("direct bootstrap");
        assert_eq!(via_link.root, clean.root);
        assert_eq!(via_link.tree.to_bytes(), clean.tree.to_bytes());
        let shares: Vec<SyncShare> = vec![c.sync_share()];
        assert!(c.sync_succeeds(&shares), "zero false alarms end to end");
        server.shutdown();
    }
}

/// The shard recovery path: a shard is lost (its process replaced
/// wholesale), rebuilt from a replica's chunks pinned to the last grove
/// epoch's shard root, and rejoins the grove — the next epoch folds the
/// same grove root, fresh clients verify reads against it, and the
/// Protocol II grove sync-up passes.
#[test]
fn killed_shard_rejoins_the_grove_via_verified_chunk_sync() {
    let cfg = config();
    let n = 3;
    let mut grove = ShardedServer::spawn(
        n,
        &cfg,
        NetServerOptions {
            bootstrap_chunk_bytes: 256,
            ..NetServerOptions::default()
        },
    );
    let r0 = vec![tcvs_merkle::MerkleTree::with_order(cfg.order).root_digest(); n];
    let mut writer = ShardedClient2::new(0, &r0, cfg, &grove);
    for i in 0..48u64 {
        writer
            .execute(&Op::Put(u64_key(i), vec![i as u8; 4]))
            .expect("honest grove");
    }
    let epoch1 = grove.grove_epoch().expect("honest shards publish");

    // Stand up a replica of shard 1 by bootstrapping from it — the replica
    // is itself a product of verified chunk sync, pinned to the epoch root.
    let shard_root = epoch1.shard_roots[1];
    let mut boot = BootstrapClient::new(NO_USER, grove.shard(1));
    let replica_state = boot
        .bootstrap(Some(&shard_root))
        .expect("replica bootstrap");
    let core = ServerCore::from_verified_state(replica_state.tree, replica_state.ctr, &cfg)
        .expect("verified state makes a core");
    let replica = NetServer::spawn(Box::new(HonestServer::from_core(core)), false);

    // A lying pin is refused up front and leaves the grove untouched.
    let wrong = tcvs_merkle::MerkleTree::with_order(cfg.order).root_digest();
    assert!(matches!(
        grove.bootstrap_restart(1, &replica, &wrong, &cfg),
        Err(BootstrapError::AnchorMismatch { .. })
    ));

    // The real rejoin: kill-and-replace shard 1 from the replica's chunks.
    let report = grove
        .bootstrap_restart(1, &replica, &shard_root, &cfg)
        .expect("shard rejoin");
    assert_eq!(report.root, shard_root);

    let epoch2 = grove.grove_epoch().expect("rejoined grove publishes");
    assert_eq!(epoch2.shard_roots[1], epoch1.shard_roots[1]);
    assert_eq!(
        epoch2.grove_root, epoch1.grove_root,
        "the rejoined shard folds the same grove root"
    );

    // A late-joining verified client re-enters at the post-rejoin epoch —
    // the grove-epoch rejoin rule: its σ folds are anchored at the epoch's
    // join tokens, so it works across every shard (including the restored
    // one, whose chain restarted at the bootstrapped state) and passes the
    // Protocol II grove sync-up over its own era.
    let mut carol = ShardedClient2::join(2, &epoch2, cfg, &grove);
    for i in 0..24u64 {
        let got = carol.execute(&Op::Get(u64_key(i))).expect("verified read");
        assert_eq!(got, OpResult::Value(Some(vec![i as u8; 4])));
    }
    for i in 48..60u64 {
        carol
            .execute(&Op::Put(u64_key(i), vec![7]))
            .expect("verified write on the rejoined grove");
    }
    let shares = carol.sync_shares();
    let per_shard: Vec<Vec<SyncShare>> = shares.into_iter().map(|s| vec![s]).collect();
    assert!(
        carol.sync_succeeds(&per_shard),
        "Protocol II sync-up passes on the rejoined grove"
    );
    grove.shutdown();
}
