//! Tests of the concurrent snapshot read path: torn-root freedom under a
//! write storm, read-your-writes across the two wires, crash-restart
//! republication, and the security boundary (adversaries and fault links
//! never expose a read wire; Protocol II detection is unaffected by
//! concurrent readers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{HonestServer, Op, ProtocolConfig, SyncShare};
use tcvs_merkle::{u64_key, MerkleTree, OpResult};
use tcvs_net::{
    FaultLink, NetClient2, NetClientTrusted, NetServer, NetServerOptions, NetSnapshotReader,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

/// Readers hammering point and range queries while writers mutate
/// concurrently must never observe a torn root: every reply's proof must
/// replay bit-exactly to the root the server committed to for it, and the
/// snapshot counter must never move backwards. `NetSnapshotReader` checks
/// both on every read, so it suffices to run it hard and assert success.
#[test]
fn concurrent_readers_never_observe_a_torn_root_during_a_write_storm() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(&cfg)),
        NetServerOptions {
            read_pool: 3,
            ..NetServerOptions::default()
        },
    );
    let r0 = root0(&cfg);
    let stop = Arc::new(AtomicBool::new(false));

    // The write storm: a verifying Protocol II client updating hot keys.
    let mut writer = NetClient2::new(0, &r0, cfg, &server);
    let stop_w = Arc::clone(&stop);
    let storm = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop_w.load(Ordering::Relaxed) {
            writer
                .execute(&Op::Put(u64_key(i % 64), vec![(i % 251) as u8; 24]))
                .expect("honest server");
            i += 1;
        }
        i
    });

    let mut readers = Vec::new();
    for u in 1..4u32 {
        let mut r = NetSnapshotReader::bind(u, &cfg, &server).expect("honest server offers reads");
        readers.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let op = if i % 3 == 0 {
                    Op::Range(Some(u64_key(i % 64)), Some(u64_key(i % 64 + 8)))
                } else {
                    Op::Get(u64_key((u as u64 * 17 + i) % 64))
                };
                r.execute(&op)
                    .unwrap_or_else(|e| panic!("reader {u} op {i}: {e}"));
            }
            r.last_ctr()
        }));
    }
    for h in readers {
        h.join().expect("reader thread");
    }
    stop.store(true, Ordering::Relaxed);
    let writes = storm.join().expect("writer thread");
    assert!(writes > 0, "the storm actually wrote");
    server.shutdown();
}

/// A write acknowledged on the serialized wire is visible to the very next
/// read on the snapshot wire — the server publishes before it replies.
#[test]
fn trusted_client_reads_its_own_writes_across_the_two_wires() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let mut c = NetClientTrusted::new(0, &server);
    for i in 0..50u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8])).unwrap();
        match c.execute(&Op::Get(u64_key(i))).unwrap() {
            OpResult::Value(Some(v)) => assert_eq!(v, vec![i as u8], "read-your-write at {i}"),
            other => panic!("unexpected result at {i}: {other:?}"),
        }
    }
    server.shutdown();
}

/// Snapshot readers keep verifying after a crash-restart: the restored
/// state is republished before the crash is acknowledged.
#[test]
fn snapshot_readers_survive_a_crash_restart() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let mut writer = NetClient2::new(0, &r0, cfg, &server);
    for i in 0..20u64 {
        writer.execute(&Op::Put(u64_key(i), vec![i as u8])).unwrap();
    }
    let mut reader = NetSnapshotReader::bind(1, &cfg, &server).unwrap();
    reader.execute(&Op::Get(u64_key(3))).unwrap();
    let ctr_before = reader.last_ctr();
    server.crash_restart().unwrap();
    match reader.execute(&Op::Get(u64_key(3))).unwrap() {
        OpResult::Value(Some(v)) => assert_eq!(v, vec![3u8]),
        other => panic!("state lost across restart: {other:?}"),
    }
    assert!(reader.last_ctr() >= ctr_before, "counter never regresses");
    server.shutdown();
}

/// The security boundary: only servers that opt in get a read wire.
/// Adversarial servers keep the `ServerApi` default (`None`), and a fault
/// link hides its server's — faults exercise the serialized path.
#[test]
fn adversaries_and_fault_links_expose_no_read_wire() {
    let cfg = config();
    let lying = NetServer::spawn(Box::new(LieServer::new(&cfg, Trigger::AtCtr(1))), false);
    assert!(
        NetSnapshotReader::bind(0, &cfg, &lying).is_none(),
        "an adversary must never serve the unserialized side channel"
    );
    lying.shutdown();

    let honest = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let link = FaultLink::interpose(&honest, tcvs_core::FaultPlan::none());
    assert!(
        NetSnapshotReader::bind(0, &cfg, &link).is_none(),
        "a fault link pins clients to the serialized wire"
    );
    // Bound through the link, the trusted baseline silently falls back to
    // the serialized path and still works.
    let mut c = NetClientTrusted::new(0, &link);
    c.execute(&Op::Put(u64_key(1), vec![1])).unwrap();
    assert!(matches!(
        c.execute(&Op::Get(u64_key(1))).unwrap(),
        OpResult::Value(Some(_))
    ));
    honest.shutdown();
}

/// Protocol II's fork-detection state (σᵢ folding, counters, sync-up) rides
/// only on the serialized wire; a pool of snapshot readers running flat out
/// beside the verifying clients must not perturb it.
#[test]
fn protocol2_sync_up_succeeds_with_concurrent_snapshot_readers() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let mut noise = Vec::new();
    for u in 10..13u32 {
        let mut r = NetSnapshotReader::bind(u, &cfg, &server).unwrap();
        let stop_r = Arc::clone(&stop);
        noise.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop_r.load(Ordering::Relaxed) {
                r.execute(&Op::Get(u64_key(i % 97))).expect("verified read");
                i += 1;
            }
        }));
    }
    let mut handles = Vec::new();
    for u in 0..3u32 {
        let mut c = NetClient2::new(u, &r0, cfg, &server);
        handles.push(std::thread::spawn(move || {
            for i in 0..60u64 {
                let op = if i % 2 == 0 {
                    Op::Put(u64_key(u as u64 * 100 + i), vec![i as u8])
                } else {
                    Op::Get(u64_key(u as u64 * 100 + i - 1))
                };
                c.execute(&op).expect("honest server");
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for h in noise {
        h.join().expect("reader");
    }
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(
        clients.iter().any(|c| c.sync_succeeds(&shares)),
        "sync-up must still succeed under reader noise"
    );
    server.shutdown();
}
