//! End-to-end tests of pipelined Protocol I deposits: honest concurrent
//! runs with zero false alarms, intact adversary detection, crash-restart
//! mid-pipeline, and seeded fault storms over the pipelined and batched
//! paths (drops, reorders, duplicates, crash-restarts).

use std::time::Duration;

use tcvs_core::adversary::{TamperServer, Trigger};
use tcvs_core::{FaultPlan, FaultRates, HonestServer, Op, ProtocolConfig, ProtocolKind, SyncShare};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{
    run_throughput_tuned, FaultLink, NetClient1, NetClient2, NetError, NetServer, NetServerOptions,
    NetStats, RetryPolicy, ThroughputOptions,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_timeout: Duration::from_millis(40),
        max_jitter: Duration::from_millis(5),
    }
}

fn pipelined_options(depth: usize) -> NetServerOptions {
    NetServerOptions {
        blocking_signatures: false,
        pipeline_depth: depth,
        // Faulted deposits must not stall catch-up for the full default 2s.
        deposit_timeout: Duration::from_millis(400),
        ..NetServerOptions::default()
    }
}

/// Concurrent pipelined clients against an honest server: every operation
/// verifies against the client's own frontier, no deposit is ever missed,
/// the server actually serves ahead of the deposit stream, and the
/// Protocol I counter sync-up succeeds afterwards.
#[test]
fn pipelined_concurrent_honest_run_has_zero_false_alarms() {
    let cfg = config();
    let stats = NetStats::disabled();
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        pipelined_options(8),
        stats.clone(),
    );
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x33; 32], 3, 8);
    let mut clients: Vec<NetClient1> = rings
        .into_iter()
        .map(|r| {
            let mut c = NetClient1::new(r, registry.clone(), cfg, &server);
            c.set_pipelined(true);
            c
        })
        .collect();
    clients[0].deposit_initial(&r0).unwrap();

    let mut handles = Vec::new();
    for (u, mut c) in clients.into_iter().enumerate() {
        handles.push(std::thread::spawn(move || {
            for i in 0..40u64 {
                let op = if i % 4 == 0 {
                    Op::Get(u64_key(u as u64 * 64 + i))
                } else {
                    Op::Put(u64_key(u as u64 * 64 + i), vec![i as u8])
                };
                c.execute(&op)
                    .unwrap_or_else(|e| panic!("honest pipelined run alarmed at op {i}: {e}"));
            }
            c
        }));
    }
    let clients: Vec<NetClient1> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(server.missed_deposits(), 0, "no deposit was given up on");
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    server.shutdown();

    let snap = stats.snapshot();
    let served = snap.counter("net.server.pipelined_served").unwrap_or(0);
    assert!(served > 0, "the pipelined fast path was actually exercised");
}

/// A pipelined client against a server spawned with `pipeline_depth: 0`
/// gets blocking-path (legacy) replies throughout and still verifies —
/// the wire shapes are interoperable in both directions.
#[test]
fn pipelined_client_against_blocking_server_verifies() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), true);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x44; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.set_pipelined(true);
    c.deposit_initial(&r0).unwrap();
    for i in 0..20u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("honest server");
    }
    assert_eq!(server.missed_deposits(), 0);
    server.shutdown();
}

/// Pipelining must not weaken detection: a tampering server (which cannot
/// serve the pipelined fast path and falls back to the blocking shape) is
/// still caught within the usual bound.
#[test]
fn tampering_server_is_detected_under_pipelining() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(TamperServer::new(&cfg, Trigger::AtCtr(2))),
        pipelined_options(8),
    );
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x55; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.set_pipelined(true);
    c.deposit_initial(&r0).unwrap();
    let mut detected = None;
    for i in 0..8u64 {
        if let Err(e) = c.execute(&Op::Put(u64_key(i), vec![i as u8])) {
            detected = Some((i, e));
            break;
        }
    }
    match detected {
        Some((_, NetError::Deviation(_))) => {}
        other => panic!("tamper not detected as a deviation: {other:?}"),
    }
    server.shutdown();
}

/// A crash-restart in the middle of a pipelined run: the restarted server
/// falls back to the blocking path (its pipelining state is volatile),
/// re-arms on the next deposit, and the client keeps verifying with zero
/// false alarms.
#[test]
fn crash_restart_mid_pipelined_run_stays_verified() {
    let cfg = config();
    let stats = NetStats::disabled();
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(&cfg)),
        pipelined_options(8),
        stats.clone(),
    );
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x66; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.set_pipelined(true);
    c.deposit_initial(&r0).unwrap();
    for i in 0..10u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("pre-crash");
    }
    server.crash_restart().expect("restart");
    for i in 10..20u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .expect("post-crash");
    }
    server.shutdown();
    let snap = stats.snapshot();
    assert_eq!(snap.counter("net.server.crashes"), Some(1));
    assert!(snap.counter("net.server.pipelined_served").unwrap_or(0) > 0);
}

/// Satellite storm: seeded benign fault plans (drops, dropped replies,
/// delays, duplicates, reorders, crash-restarts) over a **pipelined**
/// Protocol I client must cause zero false alarms — retries, the reply
/// journal, and the catch-up path absorb every fault.
#[test]
fn seeded_fault_storms_over_pipelined_protocol1_zero_false_alarms() {
    for seed in [0xbead_u64, 0x5eed, 0xf00d] {
        let cfg = config();
        let server = NetServer::spawn_with(Box::new(HonestServer::new(&cfg)), pipelined_options(8));
        let plan = FaultPlan::seeded(seed, 40, &FaultRates::light());
        assert!(!plan.is_empty());
        let link = FaultLink::interpose(&server, plan);
        let r0 = root0(&cfg);
        let (rings, registry) = setup_users([0x77; 32], 1, 7);
        let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &link);
        c.set_pipelined(true);
        c.set_retry_policy(quick_retries());
        c.deposit_initial(&r0).unwrap();
        for i in 0..40u64 {
            c.execute(&Op::Put(u64_key(i % 32), vec![i as u8]))
                .unwrap_or_else(|e| {
                    panic!("benign fault raised an alarm at op {i} (seed {seed:#x}): {e}")
                });
        }
        assert!(link.applied().total() > 0, "the storm actually hit");
        server.shutdown();
    }
}

/// The same storm discipline over **batched** Protocol II windows: dropped
/// requests and replies, duplicates, and reorders of whole windows are
/// absorbed by retries and the journal, with zero false alarms and a
/// passing sync-up.
#[test]
fn seeded_fault_storms_over_batched_protocol2_zero_false_alarms() {
    for seed in [0xfeed_u64, 0xdead] {
        let cfg = config();
        let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
        let plan = FaultPlan::seeded(seed, 30, &FaultRates::heavy());
        let link = FaultLink::interpose(&server, plan);
        let r0 = root0(&cfg);
        let mut c = NetClient2::new(0, &r0, cfg, &link);
        c.set_retry_policy(quick_retries());
        for w in 0..15u64 {
            let window: Vec<Op> = (0..4u64)
                .map(|j| {
                    let k = w * 4 + j;
                    if j == 3 {
                        Op::Get(u64_key(k - 1))
                    } else {
                        Op::Put(u64_key(k), vec![k as u8])
                    }
                })
                .collect();
            c.execute_batch(&window).unwrap_or_else(|e| {
                panic!("benign fault alarmed at window {w} (seed {seed:#x}): {e}")
            });
        }
        assert!(link.applied().total() > 0, "the storm actually hit");
        let shares = vec![c.sync_share()];
        assert!(c.sync_succeeds(&shares), "σ chain survives the storm");
        server.shutdown();
    }
}

/// Faults must not mask a deviating server on the pipelined path either:
/// the storm plus a tampering server still ends in a deviation verdict,
/// never a silent pass.
#[test]
fn fault_storms_do_not_mask_tampering_under_pipelining() {
    let cfg = config();
    let server = NetServer::spawn_with(
        Box::new(TamperServer::new(&cfg, Trigger::AtCtr(3))),
        pipelined_options(8),
    );
    let plan = FaultPlan::seeded(0xabcd, 20, &FaultRates::light());
    let link = FaultLink::interpose(&server, plan);
    let r0 = root0(&cfg);
    let (rings, registry) = setup_users([0x88; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &link);
    c.set_pipelined(true);
    c.set_retry_policy(quick_retries());
    c.deposit_initial(&r0).unwrap();
    let mut verdict = None;
    for i in 0..12u64 {
        if let Err(e) = c.execute(&Op::Put(u64_key(i), vec![i as u8])) {
            verdict = Some(e);
            break;
        }
    }
    match verdict {
        Some(NetError::Deviation(_)) => {}
        // Exhausted retries against a deviating server is also a detection
        // outcome, never a silent pass.
        Some(NetError::Timeout { .. }) | Some(NetError::ServerGone) => {}
        None => panic!("tampering server escaped detection under faults"),
    }
    server.shutdown();
}

/// The tuned rig end-to-end: a pipelined Protocol I run and a batched
/// Protocol II run both complete with zero failed ops, and the tuned
/// Protocol II configuration is not slower than its per-op twin on the
/// same machine (sanity, not a benchmark).
#[test]
fn tuned_rig_runs_clean() {
    let cfg = config();
    let p1 = run_throughput_tuned(
        ProtocolKind::One,
        2,
        60,
        10,
        &cfg,
        ThroughputOptions {
            pipeline_depth: 8,
            ..ThroughputOptions::default()
        },
        NetStats::disabled(),
    );
    assert_eq!(p1.failed_ops, 0);
    assert_eq!(p1.ops, 120);

    let p2 = run_throughput_tuned(
        ProtocolKind::Two,
        2,
        60,
        10,
        &cfg,
        ThroughputOptions {
            batch_window: 8,
            publish_every_ops: 8,
            ..ThroughputOptions::default()
        },
        NetStats::disabled(),
    );
    assert_eq!(p2.failed_ops, 0);
    assert_eq!(p2.ops, 120);
}
