//! End-to-end tests of the sharded grove: restart-stable routing across
//! shard crash-restarts, single-shard deviation caught at its exact
//! counter with zero false alarms on the honest shards, independently
//! seeded per-shard fault storms, and the cross-shard sync-up rule.

use std::time::Duration;

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::state::initial_token;
use tcvs_core::sync::{protocol2_deviating_shards, protocol2_grove_sync_ok};
use tcvs_core::{
    Deviation, FaultRates, HonestServer, Op, OpResult, ProtocolConfig, ServerApi, SyncShare,
};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{
    GroveReader, NetError, NetServerOptions, NetStats, RetryPolicy, ShardedClient2,
    ShardedClientTrusted, ShardedServer,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 10,
    }
}

fn root0s(n: usize, config: &ProtocolConfig) -> Vec<tcvs_core::Digest> {
    vec![MerkleTree::with_order(config.order).root_digest(); n]
}

fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_timeout: Duration::from_millis(40),
        max_jitter: Duration::from_millis(5),
    }
}

/// Routing is stable across shard crash-restarts: keys written before a
/// whole-grove power event are found by freshly bound clients afterwards,
/// verified against the restored per-shard roots — nothing about a restart
/// (spawn order, timing, recovered state) may enter the route.
#[test]
fn routing_survives_grove_crash_restarts() {
    let cfg = config();
    let n = 4;
    let grove = ShardedServer::spawn(n, &cfg, NetServerOptions::default());
    let mut writer = ShardedClient2::new(0, &root0s(n, &cfg), cfg, &grove);
    for i in 0..48u64 {
        writer
            .execute(&Op::Put(u64_key(i), vec![i as u8; 4]))
            .expect("honest grove");
    }
    // Crash one shard, then the whole grove, interleaved with reads.
    grove.crash_restart(1).expect("single-shard restart");
    for i in 0..48u64 {
        assert_eq!(
            writer.execute(&Op::Get(u64_key(i))).expect("routed read"),
            OpResult::Value(Some(vec![i as u8; 4])),
            "key {i} re-homed after a shard restart"
        );
    }
    grove.crash_restart_all().expect("grove-wide restart");
    // A *new* client binding (fresh router, fresh verified sessions over
    // the restored roots... via replayed verified reads) sees every key on
    // the same shard.
    let mut reader = GroveReader::bind(7, &cfg, &grove).expect("honest grove publishes");
    for i in 0..48u64 {
        assert_eq!(
            reader
                .execute(&Op::Get(u64_key(i)))
                .expect("grove-verified read"),
            OpResult::Value(Some(vec![i as u8; 4])),
            "key {i} re-homed after the grove restart"
        );
    }
    grove.shutdown();
}

/// A lie confined to one shard is flagged at exactly the triggering
/// counter of *that shard*, and the other N−1 honest shards complete the
/// full workload with zero false alarms — the grove preserves the
/// single-server k-bound per shard.
#[test]
fn single_shard_lie_is_detected_without_false_alarms_elsewhere() {
    const LIE_AT: u64 = 3;
    let cfg = config();
    let n = 4;
    let bad_shard = 2;
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..n)
        .map(|i| -> Box<dyn ServerApi + Send> {
            if i == bad_shard {
                Box::new(LieServer::new(&cfg, Trigger::AtCtr(LIE_AT)))
            } else {
                Box::new(HonestServer::new(&cfg))
            }
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions::default(),
        NetStats::disabled(),
    );
    let router = grove.router();
    let mut c = ShardedClient2::new(0, &root0s(n, &cfg), cfg, &grove);

    let mut per_shard_ops = vec![0u64; n];
    let mut verdict = None;
    for i in 0..400u64 {
        let op = Op::Put(u64_key(i), vec![i as u8]);
        let shard = router.route_op(&op).unwrap();
        match c.execute(&op) {
            Ok(_) => per_shard_ops[shard] += 1,
            Err(e) => {
                verdict = Some((shard, per_shard_ops[shard], e));
                break;
            }
        }
    }
    let (shard, ops_before, err) = verdict.expect("the lying shard escaped detection");
    assert_eq!(shard, bad_shard, "the alarm came from the deviating shard");
    assert!(
        matches!(err, NetError::Deviation(Deviation::BadProof(_))),
        "expected a bad-proof deviation, got {err:?}"
    );
    // LieServer lies on the first op at ctr >= LIE_AT; Protocol II's replay
    // check catches the lie on the very response that carries it.
    assert_eq!(
        ops_before, LIE_AT,
        "detection at the exact triggering counter of the bad shard"
    );
    for (i, &ops) in per_shard_ops.iter().enumerate() {
        if i != bad_shard {
            assert!(ops > 0, "honest shard {i} saw traffic and never alarmed");
        }
    }
    grove.shutdown();
}

/// The cross-shard sync-up rule: per-shard predicates, evaluated at one
/// grove epoch. Two users work disjoint honest groves and pass; replaying
/// one shard's share from a stale view (a fork on that shard) fails the
/// grove sync-up and is localized to exactly that shard.
#[test]
fn grove_sync_up_passes_honest_and_localizes_a_forked_shard() {
    let cfg = config();
    let n = 3;
    let grove = ShardedServer::spawn(n, &cfg, NetServerOptions::default());
    let r0 = root0s(n, &cfg);
    let mut alice = ShardedClient2::new(0, &r0, cfg, &grove);
    let mut bob = ShardedClient2::new(1, &r0, cfg, &grove);
    for i in 0..30u64 {
        alice
            .execute(&Op::Put(u64_key(2 * i), vec![1]))
            .expect("alice");
        bob.execute(&Op::Put(u64_key(2 * i + 1), vec![2]))
            .expect("bob");
    }
    let a = alice.sync_shares();
    let b = bob.sync_shares();
    // per_shard[i] = every user's share for shard i.
    let per_shard: Vec<Vec<SyncShare>> = (0..n).map(|i| vec![a[i].clone(), b[i].clone()]).collect();
    let initials: Vec<tcvs_core::Digest> = r0.iter().map(initial_token).collect();
    assert!(alice.sync_succeeds(&per_shard), "honest grove passes");
    assert!(bob.sync_succeeds(&per_shard));
    assert!(protocol2_grove_sync_ok(&initials, &per_shard));

    // Fork shard 1 from Bob's point of view: his share for that shard
    // reverts to a fresh session's (initial-state) share while Alice's
    // reflects the real chain — exactly what a server answering the two
    // users from diverged histories produces.
    let fresh = ShardedClient2::new(1, &r0, cfg, &grove);
    let mut forked = per_shard.clone();
    forked[1][1] = fresh.sync_shares()[1].clone();
    assert!(
        !protocol2_grove_sync_ok(&initials, &forked),
        "fork must fail"
    );
    assert_eq!(
        protocol2_deviating_shards(&initials, &forked),
        vec![1],
        "and be localized to the forked shard"
    );
    assert!(!alice.sync_succeeds(&forked));
    assert_eq!(alice.deviating_shards(&forked), vec![1]);
    grove.shutdown();
}

/// Per-shard fault links replay **independently seeded** streams derived
/// from one master seed: the storm hits every shard, no benign fault ever
/// raises an alarm, and the post-storm grove sync-up passes.
#[test]
fn independently_seeded_fault_storms_across_shards_zero_false_alarms() {
    let cfg = config();
    let n = 3;
    let grove = ShardedServer::spawn(n, &cfg, NetServerOptions::default());
    // No crash/storage faults through the link layer here: those rates are
    // exercised by the dedicated restart tests; this one targets the wire.
    let rates = FaultRates {
        drop_pct: 10,
        delay_pct: 10,
        dup_pct: 5,
        reorder_pct: 5,
        crash_pct: 0,
        storage_pct: 0,
        max_delay_rounds: 2,
    };
    let links = grove.interpose_faults(0xfeed_beef, 60, &rates);
    let r0 = root0s(n, &cfg);
    let mut c = ShardedClient2::bind(0, &r0, cfg, &links);
    c.set_retry_policy(quick_retries());
    for i in 0..60u64 {
        c.execute(&Op::Put(u64_key(i), vec![i as u8]))
            .unwrap_or_else(|e| panic!("benign fault raised an alarm at op {i}: {e}"));
    }
    let counts: Vec<u64> = links.iter().map(|l| l.applied().total()).collect();
    assert!(
        counts.iter().all(|&c| c > 0),
        "every shard's independently seeded storm actually hit: {counts:?}"
    );
    let per_shard: Vec<Vec<SyncShare>> = c.sync_shares().into_iter().map(|s| vec![s]).collect();
    let initials: Vec<tcvs_core::Digest> = r0.iter().map(initial_token).collect();
    assert!(
        protocol2_grove_sync_ok(&initials, &per_shard),
        "σ chains survive the storm on every shard"
    );
    assert!(c.sync_succeeds(&per_shard));
    grove.shutdown();
}

/// The grove epoch anchors cross-shard reads: a reader bound over an
/// actively written grove verifies every answer against a consistent
/// sample of all shard roots, while trusted and verified writers advance
/// the shards concurrently.
#[test]
fn grove_reader_stays_consistent_under_concurrent_writes() {
    let cfg = config();
    let n = 4;
    let grove = ShardedServer::spawn(n, &cfg, NetServerOptions::default());
    let mut seed_writer = ShardedClientTrusted::new(0, &grove);
    for i in 0..32u64 {
        seed_writer
            .execute(&Op::Put(u64_key(i), vec![0xab]))
            .expect("seed");
    }
    let mut reader = GroveReader::bind(9, &cfg, &grove).expect("read paths");
    reader.set_retry_policy(RetryPolicy {
        max_attempts: 12,
        ..quick_retries()
    });
    let writer = {
        let mut w = ShardedClientTrusted::new(1, &grove);
        std::thread::spawn(move || {
            for i in 0..200u64 {
                w.execute(&Op::Put(u64_key(i % 32), vec![(i % 251) as u8]))
                    .expect("concurrent writer");
            }
        })
    };
    let mut verified = 0u64;
    for round in 0..20u64 {
        for i in 0..8u64 {
            match reader.execute(&Op::Get(u64_key((round * 8 + i) % 32))) {
                Ok(OpResult::Value(Some(_))) => verified += 1,
                Ok(other) => panic!("seeded key missing: {other:?}"),
                // A saturated write stream can outrun the bounded retry
                // loop's consistent-sample window; that is a liveness
                // outcome, never a verification one.
                Err(NetError::Timeout { .. }) => {}
                Err(e) => panic!("grove reader alarmed under honest load: {e}"),
            }
        }
    }
    writer.join().expect("writer thread");
    assert!(verified > 0, "the reader made verified progress under load");
    // Quiescent now: every read verifies.
    for i in 0..32u64 {
        reader
            .execute(&Op::Get(u64_key(i)))
            .expect("quiescent grove-verified read");
    }
    grove.shutdown();
}
