//! The sharded grove: N independent shard servers behind one combined root.
//!
//! A [`ShardedServer`] partitions the keyspace across `N` [`NetServer`]s via
//! the deterministic, restart-stable [`ShardRouter`] — each shard owns its
//! own COW Merkle B+-tree, snapshot slot, and reply journal, and runs its
//! own serialized write thread. The per-shard roots fold into a single
//! top-level **grove root** (`tcvs_merkle::grove_root`, a fixed-fanout
//! Merkle combine), so a verified read becomes *shard proof + grove spine*
//! and the client still checks one digest, exactly as on a single server.
//!
//! Detection composes per shard:
//!
//! * **Protocol II** accumulators XOR across shards for free
//!   (`tcvs_core::sync::grove_sigma`), but the sync-up *predicate* is
//!   evaluated per shard (`protocol2_grove_sync_ok`) so a lie confined to
//!   one shard is caught within the same Theorem 4.2 k-bound as on a single
//!   server — and is localized to the deviating shard for free.
//! * **Protocol I/III** sync-ups sample all shard roots at a published
//!   grove epoch ([`ShardedServer::grove_epoch`]); the epoch-consistency
//!   rule is documented in DESIGN.md §"Sharded grove".
//!
//! Clients route per key: [`ShardedClientTrusted`] (baseline),
//! [`ShardedClient2`] (verified, with per-shard batch windows), and
//! [`GroveReader`] (snapshot reads verified against the grove root).
//! Cross-shard `Range` queries scatter-gather and merge by key.
//!
//! [`PacedServer`] models a fixed per-operation service latency (a stand-in
//! for wire + commit time) so the scaling experiments measure what sharding
//! actually buys — N independent serialized resources — rather than raw
//! single-host CPU, which does not multiply with shard count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tcvs_core::{
    BatchResponse, Ctr, Deviation, Digest, Epoch, EvidenceBuilder, EvidenceBundle, EvidenceKind,
    FaultPlan, FaultRates, GroveEvidence, Op, OpResult, PipelinedResponse, ProtocolConfig,
    ReadSnapshot, ServerApi, ServerMetrics, ServerResponse, ShardRouter, SignedCheckpoint,
    SignedEpochState, SignedState, SyncShare, TriggerInfo, UserId,
};
use tcvs_merkle::{grove_root, verify_grove_response, GroveSpine, Key, Value};
use tcvs_obs::Counter;

use crate::client::{NetClient2, NetClientTrusted};
use crate::error::{NetError, RetryPolicy};
use crate::fault::FaultLink;
use crate::obs::NetStats;
use crate::server::{remote_read, Endpoint, NetServer, NetServerOptions, ReadWireHandle};

/// A [`ServerApi`] wrapper that charges a fixed service latency per
/// operation on the serialized write path.
///
/// Used by the sharding throughput probes: on a host with fewer cores than
/// shards, raw CPU throughput cannot scale with N, but the quantity
/// sharding buys in production — *serialized-resource capacity* — still
/// does, because N paced shard threads wait concurrently. The pacing is
/// per *operation* (a batch of `n` costs `n` sleeps), so splitting a window
/// across shards never multiplies the modeled cost. Snapshot reads are
/// deliberately unpaced: they never touch the serialized resource.
pub struct PacedServer<S> {
    inner: S,
    per_op: Duration,
}

impl<S: ServerApi> PacedServer<S> {
    /// Wraps `inner`, charging `per_op` of service latency to every
    /// operation served on the serialized path.
    pub fn new(inner: S, per_op: Duration) -> PacedServer<S> {
        PacedServer { inner, per_op }
    }

    fn pace(&self, ops: u64) {
        if !self.per_op.is_zero() && ops > 0 {
            std::thread::sleep(self.per_op * ops as u32);
        }
    }
}

impl<S: ServerApi> ServerApi for PacedServer<S> {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        self.pace(1);
        self.inner.handle_op(user, op, round)
    }

    fn handle_op_seq(&mut self, user: UserId, seq: u64, op: &Op, round: u64) -> ServerResponse {
        self.pace(1);
        self.inner.handle_op_seq(user, seq, op, round)
    }

    fn handle_op_batch(
        &mut self,
        user: UserId,
        seq: u64,
        ops: &[Op],
        round: u64,
    ) -> Option<BatchResponse> {
        let resp = self.inner.handle_op_batch(user, seq, ops, round);
        // A declined window is side-effect free and costs nothing; a served
        // one is n operations' worth of the modeled resource.
        if resp.is_some() {
            self.pace(ops.len() as u64);
        }
        resp
    }

    fn handle_op_pipelined(
        &mut self,
        user: UserId,
        seq: u64,
        op: &Op,
        round: u64,
        depth: usize,
    ) -> Option<PipelinedResponse> {
        let resp = self.inner.handle_op_pipelined(user, seq, op, round, depth);
        if resp.is_some() {
            self.pace(1);
        }
        resp
    }

    fn deposit_lag(&self) -> u64 {
        self.inner.deposit_lag()
    }

    fn deposit_signature(&mut self, user: UserId, s: SignedState) {
        self.inner.deposit_signature(user, s)
    }

    fn deposit_epoch_state(&mut self, s: SignedEpochState) {
        self.inner.deposit_epoch_state(s)
    }

    fn fetch_epoch_states(&mut self, requester: UserId, epoch: Epoch) -> Vec<SignedEpochState> {
        self.inner.fetch_epoch_states(requester, epoch)
    }

    fn deposit_checkpoint(&mut self, c: SignedCheckpoint) {
        self.inner.deposit_checkpoint(c)
    }

    fn fetch_checkpoint(&mut self, requester: UserId, epoch: Epoch) -> Option<SignedCheckpoint> {
        self.inner.fetch_checkpoint(requester, epoch)
    }

    fn metrics(&self) -> ServerMetrics {
        self.inner.metrics()
    }

    fn crash_restart(&mut self) {
        self.inner.crash_restart()
    }

    fn read_snapshot(&self) -> Option<ReadSnapshot> {
        self.inner.read_snapshot()
    }

    fn recovered_journal(&self) -> Option<Vec<(UserId, u64, ServerResponse)>> {
        self.inner.recovered_journal()
    }
}

/// One sampled grove epoch: every shard's published root and counter, and
/// the grove root they fold into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroveEpoch {
    /// Monotone epoch number (per [`ShardedServer`], starting at 1).
    pub epoch: u64,
    /// Each shard's published snapshot root, in shard order.
    pub shard_roots: Vec<Digest>,
    /// Each shard's snapshot counter at the sample.
    pub shard_ctrs: Vec<Ctr>,
    /// Each shard's last-writer at the sample ([`tcvs_core::NO_USER`] for
    /// a shard that has seen no operation — including one freshly restored
    /// by verified state sync).
    pub shard_last_users: Vec<UserId>,
    /// `grove_root(&shard_roots)`.
    pub grove_root: Digest,
}

impl GroveEpoch {
    /// The per-shard Protocol II join tokens of this epoch —
    /// `state_token(root, ctr, last_user)` per shard, the anchors a session
    /// joining the grove at this epoch folds its σ from. This is the
    /// **grove-epoch rejoin rule**: after a shard is restored by verified
    /// state sync, verified sessions re-enter at an epoch sampled *after*
    /// the rejoin, anchored by these tokens
    /// ([`ShardedClient2::join`]).
    pub fn join_tokens(&self) -> Vec<Digest> {
        self.shard_roots
            .iter()
            .zip(&self.shard_ctrs)
            .zip(&self.shard_last_users)
            .map(|((root, ctr), user)| tcvs_core::state::state_token(root, *ctr, *user))
            .collect()
    }
}

/// N shard servers behind one deterministic router and one combined root.
pub struct ShardedServer {
    shards: Vec<NetServer>,
    router: ShardRouter,
    stats: NetStats,
    /// The options every shard was spawned with — reused when
    /// [`ShardedServer::bootstrap_restart`] spawns a replacement shard.
    opts: NetServerOptions,
    epochs: AtomicU64,
    grove_epochs: Arc<Counter>,
}

impl ShardedServer {
    /// Spawns `n_shards` honest shard servers, each with its own tree,
    /// snapshot slot, and reply journal.
    pub fn spawn(
        n_shards: usize,
        config: &ProtocolConfig,
        opts: NetServerOptions,
    ) -> ShardedServer {
        ShardedServer::spawn_observed(n_shards, config, opts, NetStats::disabled())
    }

    /// [`ShardedServer::spawn`] with observability: all shards feed the
    /// shared registry/tracer in `stats`, plus the grove-level
    /// `net.shard.*` metrics.
    pub fn spawn_observed(
        n_shards: usize,
        config: &ProtocolConfig,
        opts: NetServerOptions,
        stats: NetStats,
    ) -> ShardedServer {
        let inners: Vec<Box<dyn ServerApi + Send>> = (0..n_shards)
            .map(|_| Box::new(tcvs_core::HonestServer::new(config)) as Box<dyn ServerApi + Send>)
            .collect();
        ShardedServer::spawn_with_servers(inners, opts, stats)
    }

    /// Spawns one shard per inner server, in order. This is how a test puts
    /// an *adversarial* server on exactly one shard while the other N−1
    /// stay honest.
    ///
    /// # Panics
    ///
    /// Panics if `inners` is empty.
    pub fn spawn_with_servers(
        inners: Vec<Box<dyn ServerApi + Send>>,
        opts: NetServerOptions,
        stats: NetStats,
    ) -> ShardedServer {
        assert!(!inners.is_empty(), "a grove needs at least one shard");
        let router = ShardRouter::new(inners.len());
        let shards: Vec<NetServer> = inners
            .into_iter()
            .map(|inner| NetServer::spawn_observed(inner, opts, stats.clone()))
            .collect();
        stats
            .registry()
            .gauge("net.shard.count")
            .set(shards.len() as i64);
        let grove_epochs = stats.registry().counter("net.shard.grove_epochs");
        ShardedServer {
            shards,
            router,
            stats,
            opts,
            epochs: AtomicU64::new(0),
            grove_epochs,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The keyspace router every client of this grove must use.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The shard servers, in shard order.
    pub fn shards(&self) -> &[NetServer] {
        &self.shards
    }

    /// One shard server.
    pub fn shard(&self, index: usize) -> &NetServer {
        &self.shards[index]
    }

    /// The stats handle the shards were spawned with.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Crash-restarts one shard from its persisted state, synchronously.
    pub fn crash_restart(&self, shard: usize) -> Result<(), NetError> {
        self.shards[shard].crash_restart()
    }

    /// Crash-restarts every shard (a whole-grove power event).
    pub fn crash_restart_all(&self) -> Result<(), NetError> {
        self.shards.iter().try_for_each(NetServer::crash_restart)
    }

    /// Replaces shard `shard` with a server rebuilt from `peer`'s chunks
    /// via verified state sync — the recovery path for a shard whose local
    /// state is gone or stale (e.g. a SIGKILLed process with no durable
    /// storage).
    ///
    /// `expected_root` pins the shard root to restore (from the last
    /// published grove epoch's `shard_roots[shard]`); every chunk is
    /// verified against it before admission, so a lying peer cannot feed
    /// the grove a diverged shard. On success the restored shard serves at
    /// the bootstrapped counter and the next [`ShardedServer::grove_epoch`]
    /// folds its (verified) root back into the grove — that is the rejoin:
    /// epochs sampled after this call include the restored shard, and
    /// Protocol II sync-up evaluates it like any other shard.
    ///
    /// The peer may be the shard's old incarnation, a replica, or any
    /// endpoint serving that shard's keyspace — the chunk verification, not
    /// the peer's identity, is what makes the restored state trustworthy.
    pub fn bootstrap_restart(
        &mut self,
        shard: usize,
        peer: &impl Endpoint,
        expected_root: &Digest,
        config: &ProtocolConfig,
    ) -> Result<crate::bootstrap::BootstrapReport, crate::bootstrap::BootstrapError> {
        use crate::bootstrap::{BootstrapClient, BootstrapError};
        let mut boot = BootstrapClient::new(tcvs_core::NO_USER, peer);
        boot.set_stats(self.stats.clone());
        let report = boot.bootstrap(Some(expected_root))?;
        let core =
            tcvs_core::ServerCore::from_verified_state(report.tree.clone(), report.ctr, config)
                .map_err(|e| BootstrapError::Assembly(tcvs_merkle::ChunkError::Codec(e)))?;
        let inner = Box::new(tcvs_core::HonestServer::from_core(core)) as Box<dyn ServerApi + Send>;
        let replacement = NetServer::spawn_observed(inner, self.opts, self.stats.clone());
        let old = std::mem::replace(&mut self.shards[shard], replacement);
        // The old incarnation (possibly wedged or stale) drains gracefully;
        // clients holding its wire see `ServerGone` and rebind.
        old.shutdown();
        Ok(report)
    }

    /// Interposes one [`FaultLink`] per shard, each replaying an
    /// **independently seeded** stream derived from `seed` via
    /// [`FaultPlan::link_subseed`] — a multi-shard fault storm must not
    /// inject in lockstep across shards. Clients that should see the faults
    /// must be bound over the returned links (in shard order) instead of
    /// the servers.
    pub fn interpose_faults(&self, seed: u64, n_ops: u64, rates: &FaultRates) -> Vec<FaultLink> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let plan = FaultPlan::seeded_for_link(seed, i as u64, n_ops, rates);
                FaultLink::interpose_observed(shard, plan, self.stats.clone())
            })
            .collect()
    }

    /// Samples every shard's published snapshot at one instant and folds
    /// the roots into a grove root — one **grove epoch**, the anchor the
    /// cross-shard sync-up rule is stated against. Returns `None` when any
    /// shard exposes no read path (an adversarial shard never does; its
    /// deviations surface on the serialized path instead).
    pub fn grove_epoch(&self) -> Option<GroveEpoch> {
        let mut shard_roots = Vec::with_capacity(self.shards.len());
        let mut shard_ctrs = Vec::with_capacity(self.shards.len());
        let mut shard_last_users = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let wire = shard.read_wire()?;
            let snap = Arc::clone(&wire.slot.lock());
            shard_roots.push(snap.root_digest());
            shard_ctrs.push(snap.ctr());
            shard_last_users.push(snap.last_user());
        }
        let root = grove_root(&shard_roots);
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        self.grove_epochs.inc();
        Some(GroveEpoch {
            epoch,
            shard_roots,
            shard_ctrs,
            shard_last_users,
            grove_root: root,
        })
    }

    /// Stops every shard thread gracefully (backlogged requests drain).
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// Merges per-shard `Entries` results of a scatter-gathered range query
/// into one key-ordered result. Non-`Entries` shapes contribute nothing —
/// verified clients have already rejected them by the time this runs.
fn merge_entries(per_shard: Vec<OpResult>) -> OpResult {
    let mut all: Vec<(Key, Value)> = Vec::new();
    for r in per_shard {
        if let OpResult::Entries(es) = r {
            all.extend(es);
        }
    }
    all.sort_by(|a, b| a.0.cmp(&b.0));
    OpResult::Entries(all)
}

/// Per-shard routed-operation counters, registered lazily on `set_stats`.
fn shard_counters(stats: &NetStats, n: usize) -> Vec<Arc<Counter>> {
    (0..n)
        .map(|i| stats.registry().counter(&format!("net.shard.{i}.routed")))
        .collect()
}

/// The trusted baseline over a grove: routes each keyed operation to its
/// owning shard's [`NetClientTrusted`]; cross-shard ranges scatter-gather.
pub struct ShardedClientTrusted {
    clients: Vec<NetClientTrusted>,
    router: ShardRouter,
    routed: Option<Vec<Arc<Counter>>>,
}

impl ShardedClientTrusted {
    /// Binds one baseline client per shard of `grove`.
    pub fn new(user: UserId, grove: &ShardedServer) -> ShardedClientTrusted {
        ShardedClientTrusted::bind(user, grove.shards())
    }

    /// Binds over explicit per-shard endpoints (e.g. [`FaultLink`]s), in
    /// shard order.
    pub fn bind<E: Endpoint>(user: UserId, shards: &[E]) -> ShardedClientTrusted {
        ShardedClientTrusted {
            clients: shards
                .iter()
                .map(|s| NetClientTrusted::new(user, s))
                .collect(),
            router: ShardRouter::new(shards.len()),
            routed: None,
        }
    }

    /// Attaches observability: per-shard `net.shard.{i}.routed` counters
    /// plus the usual transport counters on every inner client.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.routed = Some(shard_counters(&stats, self.clients.len()));
        for c in &mut self.clients {
            c.set_stats(stats.clone());
        }
    }

    /// Replaces the retry policy on every inner client.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for c in &mut self.clients {
            c.set_retry_policy(policy);
        }
    }

    /// Executes one unverified operation, routed by key.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        match self.router.route_op(op) {
            Some(shard) => {
                if let Some(routed) = &self.routed {
                    routed[shard].inc();
                }
                self.clients[shard].execute(op)
            }
            None => {
                let per_shard = self
                    .clients
                    .iter_mut()
                    .map(|c| c.execute(op))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(merge_entries(per_shard))
            }
        }
    }

    /// Operations completed across all shards.
    pub fn ops_done(&self) -> u64 {
        self.clients.iter().map(NetClientTrusted::ops_done).sum()
    }
}

/// A Protocol II client over a grove: each shard gets its own verified
/// [`NetClient2`] anchored at that shard's root; batch windows are split
/// per shard and reassembled in submission order.
pub struct ShardedClient2 {
    clients: Vec<NetClient2>,
    initials: Vec<Digest>,
    router: ShardRouter,
    routed: Option<Vec<Arc<Counter>>>,
}

impl ShardedClient2 {
    /// Binds one verified client per shard of `grove`; `root0s` are the
    /// per-shard initial roots, in shard order.
    pub fn new(
        user: UserId,
        root0s: &[Digest],
        config: ProtocolConfig,
        grove: &ShardedServer,
    ) -> ShardedClient2 {
        ShardedClient2::bind(user, root0s, config, grove.shards())
    }

    /// Binds over explicit per-shard endpoints (e.g. [`FaultLink`]s), in
    /// shard order.
    ///
    /// # Panics
    ///
    /// Panics if `root0s` and `shards` disagree in length.
    pub fn bind<E: Endpoint>(
        user: UserId,
        root0s: &[Digest],
        config: ProtocolConfig,
        shards: &[E],
    ) -> ShardedClient2 {
        assert_eq!(
            root0s.len(),
            shards.len(),
            "one initial root per shard, in shard order"
        );
        ShardedClient2 {
            clients: root0s
                .iter()
                .zip(shards)
                .map(|(root0, s)| NetClient2::new(user, root0, config, s))
                .collect(),
            initials: root0s.iter().map(tcvs_core::state::initial_token).collect(),
            router: ShardRouter::new(shards.len()),
            routed: None,
        }
    }

    /// Binds one verified client per shard, joining the grove **at a
    /// published epoch** instead of genesis — the grove-epoch rejoin rule.
    /// Each per-shard σ fold is anchored at the epoch's join token
    /// ([`GroveEpoch::join_tokens`]), so the session's sync-up covers
    /// exactly the transitions since the epoch. This is how verified
    /// sessions re-enter a grove after a shard was restored by verified
    /// state sync (its old wires are gone, its chain restarts at the
    /// bootstrapped state), and how a late joiner starts without replaying
    /// history. The epoch must come from a trusted sample — joining at a
    /// forged epoch surfaces as a failed sync-up, like any fork.
    pub fn join(
        user: UserId,
        epoch: &GroveEpoch,
        config: ProtocolConfig,
        grove: &ShardedServer,
    ) -> ShardedClient2 {
        let shards = grove.shards();
        assert_eq!(
            epoch.shard_roots.len(),
            shards.len(),
            "the epoch and the grove must agree on shard count"
        );
        ShardedClient2 {
            clients: (0..shards.len())
                .map(|i| {
                    NetClient2::join(
                        user,
                        &epoch.shard_roots[i],
                        epoch.shard_ctrs[i],
                        epoch.shard_last_users[i],
                        config,
                        &shards[i],
                    )
                })
                .collect(),
            initials: epoch.join_tokens(),
            router: ShardRouter::new(shards.len()),
            routed: None,
        }
    }

    /// Attaches observability: per-shard `net.shard.{i}.routed` counters
    /// plus the usual transport counters on every inner client.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.routed = Some(shard_counters(&stats, self.clients.len()));
        for c in &mut self.clients {
            c.set_stats(stats.clone());
        }
    }

    /// Replaces the retry policy on every inner client.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for c in &mut self.clients {
            c.set_retry_policy(policy);
        }
    }

    /// Executes one verified operation, routed by key. A cross-shard range
    /// scatter-gathers: every shard's slice is verified against that
    /// shard's root, then the slices merge by key.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        match self.router.route_op(op) {
            Some(shard) => {
                if let Some(routed) = &self.routed {
                    routed[shard].inc();
                }
                self.clients[shard].execute(op)
            }
            None => {
                let per_shard = self
                    .clients
                    .iter_mut()
                    .map(|c| c.execute(op))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(merge_entries(per_shard))
            }
        }
    }

    /// Executes a window of operations, split into per-shard batched
    /// exchanges ([`NetClient2::execute_batch`]) and reassembled into
    /// submission order. A window containing a cross-shard range falls back
    /// to per-op execution.
    pub fn execute_batch(&mut self, ops: &[Op]) -> Result<Vec<OpResult>, NetError> {
        let Some(groups) = self.router.partition(ops) else {
            return ops.iter().map(|op| self.execute(op)).collect();
        };
        let mut out: Vec<Option<OpResult>> = vec![None; ops.len()];
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if let Some(routed) = &self.routed {
                routed[shard].add(group.len() as u64);
            }
            let shard_ops: Vec<Op> = group.iter().map(|(_, op)| (*op).clone()).collect();
            let results = self.clients[shard].execute_batch(&shard_ops)?;
            for ((pos, _), result) in group.into_iter().zip(results) {
                out[pos] = Some(result);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every op routed to exactly one shard"))
            .collect())
    }

    /// This user's broadcast shares, one per shard in shard order — the
    /// grove sync-up exchanges all of them
    /// (`tcvs_core::sync::protocol2_grove_sync_ok`).
    pub fn sync_shares(&self) -> Vec<SyncShare> {
        self.clients.iter().map(NetClient2::sync_share).collect()
    }

    /// Evaluates the grove sync-up verdict from the broadcast shares:
    /// `per_shard[i]` holds every user's share for shard `i`, sampled at
    /// one grove epoch. The grove passes iff *every* shard's share set
    /// passes its own Protocol II predicate — on each shard that means
    /// *some* user (the shard's last operator) announces success, exactly
    /// the paper's single-server verdict applied per shard.
    pub fn sync_succeeds(&self, per_shard: &[Vec<SyncShare>]) -> bool {
        tcvs_core::sync::protocol2_grove_sync_ok(&self.initials, per_shard)
    }

    /// The shards whose sync-up failed — the grove's localization bonus.
    pub fn deviating_shards(&self, per_shard: &[Vec<SyncShare>]) -> Vec<usize> {
        tcvs_core::sync::protocol2_deviating_shards(&self.initials, per_shard)
    }

    /// Enables the forensic transition log on every inner per-shard client.
    pub fn enable_logging(&mut self) {
        for c in &mut self.clients {
            c.enable_logging();
        }
    }

    /// Stamps captured evidence bundles (per-op rejections and sync-up
    /// localizations alike) with the run seed that produced them.
    pub fn set_evidence_seed(&mut self, seed: u64) {
        for c in &mut self.clients {
            c.set_evidence_seed(seed);
        }
    }

    /// Takes the evidence bundle stashed by the first inner client whose
    /// per-op verification failed, if any.
    pub fn take_evidence(&mut self) -> Option<EvidenceBundle> {
        self.clients.iter_mut().find_map(NetClient2::take_evidence)
    }

    /// Captures a cross-shard sync-up incident: evaluates the grove
    /// localization over `per_shard` shares and, when at least one shard
    /// deviates, returns an [`EvidenceBuilder`] pre-populated with this
    /// user's whole view — per-shard anchor tokens, the full share
    /// exchange, the localized shard set, the sampled grove epoch (when
    /// given), and this user's per-shard transition logs.
    ///
    /// Returns a *builder* rather than a sealed bundle so the sync-up
    /// harness can graft in what one client cannot know — the other users'
    /// transition logs and their verification keys — before `.build()`:
    /// fork diagnosis needs at least two users' histories to name the fork
    /// point. Only the *deviating* shards' logs are included (and should be
    /// grafted): diagnosis over a shard whose log set misses a
    /// participating user reads that user's states as fabricated and
    /// mis-localizes.
    pub fn localization_evidence(
        &self,
        seed: u64,
        per_shard: &[Vec<SyncShare>],
        epoch: Option<&GroveEpoch>,
    ) -> Option<EvidenceBuilder> {
        let deviating = self.deviating_shards(per_shard);
        if deviating.is_empty() {
            return None;
        }
        let user = self.clients[0].user();
        let mut b = EvidenceBuilder::new(EvidenceKind::ShardLocalization, seed, "protocol-2")
            .captured_at(self.ops_done())
            .description(format!(
                "grove sync-up failed; localization names {} of {} shards",
                deviating.len(),
                self.clients.len()
            ))
            .trigger(TriggerInfo {
                deviation: "sync-failed".to_string(),
                detail: format!("deviating shards: {deviating:?}"),
                user: Some(user),
                shard: Some(deviating[0] as u32),
                ctr: None,
            })
            .initials(&self.initials)
            .shares(per_shard.to_vec())
            .claimed_shards(deviating.iter().copied());
        if let Some(epoch) = epoch {
            b = b.grove(GroveEvidence {
                epoch: epoch.epoch,
                shard_roots: epoch.shard_roots.clone(),
                shard_ctrs: epoch.shard_ctrs.clone(),
                shard_last_users: epoch.shard_last_users.clone(),
                grove_root: epoch.grove_root,
            });
        }
        for &shard in &deviating {
            if let Some(log) = self.clients[shard].transition_log() {
                b = b.transition_log(shard, user, log);
            }
        }
        Some(b)
    }

    /// One inner per-shard client (tests and sync-up plumbing).
    pub fn client(&self, shard: usize) -> &NetClient2 {
        &self.clients[shard]
    }

    /// Operations completed across all shards.
    pub fn ops_done(&self) -> u64 {
        self.clients.iter().map(NetClient2::ops_done).sum()
    }
}

/// A verifying snapshot reader over a grove: every answer is checked as
/// *shard proof + grove spine* against the grove root of a consistent
/// sample of all shard slots.
///
/// Per read, the reader (1) fetches a proof-bearing read from the owning
/// shard, (2) samples every shard's published root, (3) requires the
/// sampled root of the owning shard to match the root the proof is against
/// (retrying the read on a publication race), then (4) replays the proof
/// and resolves the grove spine — so the result is anchored to one grove
/// root covering **all** shards at the sample. Per-shard snapshot counters
/// must never regress across this reader's queries.
pub struct GroveReader {
    user: UserId,
    order: usize,
    router: ShardRouter,
    reads: Vec<ReadWireHandle>,
    last_ctrs: Vec<Ctr>,
    seq: u64,
    ops: u64,
    policy: RetryPolicy,
    stats: NetStats,
    evidence: Option<EvidenceBundle>,
    evidence_seed: u64,
}

impl GroveReader {
    /// Binds a reader to every shard's read path. Returns `None` when any
    /// shard exposes none (adversarial shards never do — their answers stay
    /// on the serialized, detection-bearing path).
    pub fn bind(user: UserId, config: &ProtocolConfig, grove: &ShardedServer) -> Option<Self> {
        let reads = grove
            .shards()
            .iter()
            .map(NetServer::read_wire)
            .collect::<Option<Vec<_>>>()?;
        Some(GroveReader {
            user,
            order: config.order,
            router: ShardRouter::new(reads.len()),
            last_ctrs: vec![0; reads.len()],
            reads,
            seq: 0,
            ops: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            evidence: None,
            evidence_seed: 0,
        })
    }

    /// Attaches observability handles (transport retry counters).
    pub fn set_stats(&mut self, stats: NetStats) {
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Stamps captured evidence bundles with the run seed that produced
    /// them.
    pub fn set_evidence_seed(&mut self, seed: u64) {
        self.evidence_seed = seed;
    }

    /// Takes the evidence bundle captured at the most recent failed
    /// grove-verified read, if any.
    pub fn take_evidence(&mut self) -> Option<EvidenceBundle> {
        self.evidence.take()
    }

    /// Builds and stashes an evidence bundle at a reader detection site:
    /// the deviation verdict, the offending shard, the full consistent root
    /// sample (as a pseudo grove epoch — epoch number 0, meaning "sampled
    /// by the reader, not published"), and the offending VO bytes when the
    /// failure was proof-shaped.
    fn capture(&mut self, shard: usize, d: &Deviation, shard_roots: &[Digest], vo: Option<&[u8]>) {
        if self.evidence.is_some() {
            return;
        }
        let trigger = {
            let mut t = TriggerInfo::from_deviation(d);
            t.user = Some(self.user);
            t.shard = Some(shard as u32);
            t
        };
        let mut b = EvidenceBuilder::new(
            EvidenceKind::GroveVerifyFailure,
            self.evidence_seed,
            "grove-reader",
        )
        .captured_at(self.ops)
        .description(format!(
            "reader {} rejected a grove-verified read on shard {shard}",
            self.user
        ))
        .trigger(trigger)
        .grove(GroveEvidence {
            epoch: 0,
            shard_roots: shard_roots.to_vec(),
            shard_ctrs: self.last_ctrs.clone(),
            shard_last_users: vec![tcvs_core::NO_USER; shard_roots.len()],
            grove_root: grove_root(shard_roots),
        });
        if let Some(bytes) = vo {
            b = b.vo(bytes.to_vec());
        }
        self.evidence = Some(b.build());
    }

    /// Executes one verified read (point or cross-shard range).
    ///
    /// # Panics
    ///
    /// Panics if `op` is an update: state transitions belong to the
    /// serialized path by construction.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        assert!(!op.is_update(), "grove readers serve reads only");
        match self.router.route_op(op) {
            Some(shard) => self.read_on(shard, op),
            None => {
                let per_shard = (0..self.reads.len())
                    .map(|shard| self.read_on(shard, op))
                    .collect::<Result<Vec<_>, _>>()?;
                self.ops += 1;
                return Ok(merge_entries(per_shard));
            }
        }
        .inspect(|_| self.ops += 1)
    }

    /// One grove-verified read against `shard`.
    fn read_on(&mut self, shard: usize, op: &Op) -> Result<OpResult, NetError> {
        let attempts = self.policy.max_attempts.max(1);
        for _ in 0..attempts {
            self.seq += 1;
            let resp = remote_read(
                &self.reads[shard].tx,
                self.user,
                self.seq,
                op,
                None,
                &self.policy,
                &self.stats,
            )?;
            // Sample every shard's published root. The grove root is only
            // meaningful for a consistent sample, so the owning shard's
            // sampled root must be the very root the proof is against; a
            // mismatch is a benign publication race (the slot advanced
            // between serving and sampling) and the read retries.
            let shard_roots: Vec<Digest> = self
                .reads
                .iter()
                .map(|r| r.slot.lock().root_digest())
                .collect();
            if shard_roots[shard] != resp.root {
                continue;
            }
            let known_grove = grove_root(&shard_roots);
            let spine = GroveSpine::prove(&shard_roots, shard);
            let verified = match verify_grove_response(
                &known_grove,
                self.order,
                &spine,
                &resp.vo,
                op,
                Some(&resp.result),
                None,
            ) {
                Ok(v) => v,
                Err(e) => {
                    let d = Deviation::BadProof(e);
                    self.capture(shard, &d, &shard_roots, Some(&resp.vo.to_bytes()));
                    return Err(NetError::Deviation(d));
                }
            };
            // A read transitions nothing: the resolved grove root must be
            // the one we started from (the spine is bound to the sample).
            debug_assert_eq!(verified.new_grove_root, known_grove);
            // Per-shard snapshot time never runs backwards for one reader.
            if resp.ctr < self.last_ctrs[shard] {
                let d = Deviation::CounterRegression {
                    seen: resp.ctr,
                    expected_at_least: self.last_ctrs[shard],
                };
                self.capture(shard, &d, &shard_roots, None);
                return Err(NetError::Deviation(d));
            }
            self.last_ctrs[shard] = resp.ctr;
            return Ok(verified.result);
        }
        Err(NetError::Timeout { attempts })
    }

    /// The snapshot counter of the most recent verified read per shard.
    pub fn last_ctrs(&self) -> &[Ctr] {
        &self.last_ctrs
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::HonestServer;
    use tcvs_merkle::{u64_key, MerkleTree};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 8,
            epoch_len: 64,
        }
    }

    fn root0s(n: usize, config: &ProtocolConfig) -> Vec<Digest> {
        vec![MerkleTree::with_order(config.order).root_digest(); n]
    }

    #[test]
    fn paced_server_charges_the_serialized_path_only() {
        let cfg = config();
        let per_op = Duration::from_millis(5);
        let mut paced = PacedServer::new(HonestServer::new(&cfg), per_op);
        let t = std::time::Instant::now();
        let resp = paced.handle_op(0, &Op::Put(u64_key(1), b"v".to_vec()), 0);
        assert!(t.elapsed() >= per_op, "write paid the modeled latency");
        assert_eq!(resp.ctr, 0, "pre-op counter of the first op");
        // The snapshot path is untouched: capturing costs nothing modeled.
        let t = std::time::Instant::now();
        let snap = paced.read_snapshot().expect("honest server publishes");
        assert!(t.elapsed() < per_op);
        assert_eq!(snap.ctr(), 1);
    }

    #[test]
    fn trusted_grove_routes_and_range_merges() {
        let cfg = config();
        let grove = ShardedServer::spawn(4, &cfg, NetServerOptions::default());
        let mut c = ShardedClientTrusted::new(0, &grove);
        for i in 0..32u64 {
            c.execute(&Op::Put(u64_key(i), vec![i as u8]))
                .expect("honest grove");
        }
        for i in 0..32u64 {
            let got = c.execute(&Op::Get(u64_key(i))).expect("routed read");
            assert_eq!(got, OpResult::Value(Some(vec![i as u8])));
        }
        // A cross-shard range gathers every shard's slice, merged by key.
        let got = c.execute(&Op::Range(None, None)).expect("scatter-gather");
        match got {
            OpResult::Entries(es) => {
                assert_eq!(es.len(), 32);
                let keys: Vec<Key> = es.iter().map(|(k, _)| k.clone()).collect();
                let mut sorted = keys.clone();
                sorted.sort();
                assert_eq!(keys, sorted, "merged entries are key-ordered");
            }
            other => panic!("range returned {other:?}"),
        }
        grove.shutdown();
    }

    #[test]
    fn sharded_p2_batches_verify_and_survive_restarts() {
        let cfg = config();
        let grove = ShardedServer::spawn(3, &cfg, NetServerOptions::default());
        let mut c = ShardedClient2::new(0, &root0s(3, &cfg), cfg, &grove);
        let window: Vec<Op> = (0..12u64)
            .map(|i| Op::Put(u64_key(i), vec![i as u8; 4]))
            .collect();
        let results = c.execute_batch(&window).expect("verified grove window");
        assert_eq!(results.len(), 12);
        grove.crash_restart_all().expect("grove restart");
        // Reads verify against the restored per-shard roots.
        for i in 0..12u64 {
            let got = c.execute(&Op::Get(u64_key(i))).expect("post-restart read");
            assert_eq!(got, OpResult::Value(Some(vec![i as u8; 4])));
        }
        assert_eq!(c.ops_done(), 24);
        grove.shutdown();
    }

    #[test]
    fn grove_epoch_folds_the_sampled_roots() {
        let cfg = config();
        let grove = ShardedServer::spawn(2, &cfg, NetServerOptions::default());
        let mut c = ShardedClientTrusted::new(0, &grove);
        for i in 0..8u64 {
            c.execute(&Op::Put(u64_key(i), vec![1])).expect("write");
        }
        let epoch = grove.grove_epoch().expect("honest shards publish");
        assert_eq!(epoch.epoch, 1);
        assert_eq!(epoch.shard_roots.len(), 2);
        assert_eq!(epoch.grove_root, grove_root(&epoch.shard_roots));
        assert_eq!(
            epoch.shard_ctrs.iter().sum::<u64>(),
            8,
            "every write landed on exactly one shard"
        );
        let again = grove.grove_epoch().expect("sample again");
        assert_eq!(again.epoch, 2);
        assert_eq!(again.grove_root, epoch.grove_root, "quiescent grove");
        grove.shutdown();
    }

    #[test]
    fn grove_reader_verifies_reads_against_the_grove_root() {
        let cfg = config();
        let grove = ShardedServer::spawn(4, &cfg, NetServerOptions::default());
        let mut writer = ShardedClientTrusted::new(0, &grove);
        for i in 0..24u64 {
            writer
                .execute(&Op::Put(u64_key(i), vec![i as u8; 3]))
                .expect("write");
        }
        let mut reader = GroveReader::bind(1, &cfg, &grove).expect("honest grove has read paths");
        for i in 0..24u64 {
            let got = reader
                .execute(&Op::Get(u64_key(i)))
                .expect("grove-verified");
            assert_eq!(got, OpResult::Value(Some(vec![i as u8; 3])));
        }
        let got = reader.execute(&Op::Range(None, None)).expect("grove range");
        assert!(matches!(got, OpResult::Entries(es) if es.len() == 24));
        assert_eq!(reader.ops_done(), 25);
        grove.shutdown();
    }

    /// A grove-reader detection site seals an auditable bundle carrying
    /// the deviation verdict, the offending shard, the consistent root
    /// sample, and the offending VO bytes.
    #[test]
    fn grove_reader_capture_seals_an_auditable_bundle() {
        let cfg = config();
        let grove = ShardedServer::spawn(3, &cfg, NetServerOptions::default());
        let mut w = ShardedClientTrusted::new(0, &grove);
        for i in 0..12u64 {
            w.execute(&Op::Put(u64_key(i), vec![1])).expect("write");
        }
        let mut reader = GroveReader::bind(5, &cfg, &grove).expect("read paths");
        reader.set_evidence_seed(9);
        let shard_roots: Vec<Digest> = (0..3)
            .map(|i| {
                grove
                    .shard(i)
                    .read_wire()
                    .unwrap()
                    .slot
                    .lock()
                    .root_digest()
            })
            .collect();
        // Drive the capture path directly with a proof-shaped deviation
        // and a counter regression (honest servers can't produce either
        // over the wire, which is the point of the detection site).
        let d = Deviation::BadProof(tcvs_merkle::VerifyError::RootMismatch);
        reader.capture(1, &d, &shard_roots, Some(b"vo-bytes"));
        let bundle = reader.take_evidence().expect("captured");
        assert!(reader.take_evidence().is_none(), "stash holds one bundle");
        assert_eq!(bundle.kind, EvidenceKind::GroveVerifyFailure);
        assert_eq!(bundle.trigger.deviation, "bad-proof");
        assert_eq!(bundle.trigger.shard, Some(1));
        let grove_ev = bundle.grove.as_ref().expect("root sample rides");
        assert_eq!(grove_ev.shard_roots, shard_roots);
        assert_eq!(grove_ev.grove_root, grove_root(&shard_roots));
        assert_eq!(bundle.vos, vec![b"vo-bytes".to_vec()]);
        let report = tcvs_core::audit_bytes(&bundle.to_bytes());
        assert!(report.accepted, "{:?}", report.rejection);
        // The first capture wins until taken.
        reader.capture(0, &d, &shard_roots, None);
        reader.capture(
            2,
            &Deviation::CounterRegression {
                seen: 0,
                expected_at_least: 3,
            },
            &shard_roots,
            None,
        );
        let first = reader.take_evidence().expect("captured again");
        assert_eq!(first.trigger.shard, Some(0));
        grove.shutdown();
    }

    #[test]
    fn shard_metrics_count_grove_activity() {
        let cfg = config();
        let stats = NetStats::disabled();
        let grove =
            ShardedServer::spawn_observed(2, &cfg, NetServerOptions::default(), stats.clone());
        let mut c = ShardedClientTrusted::new(0, &grove);
        c.set_stats(stats.clone());
        for i in 0..10u64 {
            c.execute(&Op::Put(u64_key(i), vec![1])).expect("write");
        }
        grove.grove_epoch().expect("sample");
        let snap = stats.snapshot();
        assert_eq!(
            snap.get("net.shard.count"),
            Some(&tcvs_obs::MetricValue::Gauge(2))
        );
        assert_eq!(snap.counter("net.shard.grove_epochs"), Some(1));
        let routed: u64 = (0..2)
            .map(|i| snap.counter(&format!("net.shard.{i}.routed")).unwrap_or(0))
            .sum();
        assert_eq!(routed, 10, "every op routed to exactly one shard");
        grove.shutdown();
    }
}
