//! Network-layer observability: the metric handles and tracer shared by a
//! server thread, its reader pool, and the clients bound to it.
//!
//! All counters and histograms are lock-free relaxed atomics; the tracer is
//! an `Option` check per emit. The disabled default ([`NetStats::disabled`])
//! makes every probe a no-op, so instrumented and dark builds run the same
//! hot path.
//!
//! One rule is load-bearing for throughput: **nothing here is ever invoked
//! while the snapshot-slot lock is held**. Wall-clock timestamps are taken
//! and histograms fed strictly outside the serialized region — the
//! `read_path` perf probe in `tcvs-bench` asserts the instrumented trusted
//! read throughput stays within a few percent of the uninstrumented one.

use std::sync::Arc;

use tcvs_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Tracer};

/// Shared observability handles for one threaded deployment. Cloning is
/// cheap (`Arc`s all the way down); clones feed the same registry and sink.
#[derive(Clone)]
pub struct NetStats {
    /// Structured-event tracer. Server-side events carry the server's op
    /// counter as logical time; client-side events carry the per-user
    /// sequence number.
    pub tracer: Tracer,
    registry: Arc<MetricsRegistry>,
    pub(crate) ops_served: Arc<Counter>,
    pub(crate) reads_served: Arc<Counter>,
    pub(crate) journal_hits: Arc<Counter>,
    pub(crate) journal_evictions: Arc<Counter>,
    pub(crate) missed_deposits: Arc<Counter>,
    pub(crate) crashes: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) op_micros: Arc<Histogram>,
    pub(crate) read_micros: Arc<Histogram>,
    pub(crate) batch_windows: Arc<Counter>,
    pub(crate) batch_ops: Arc<Counter>,
    pub(crate) batch_declined: Arc<Counter>,
    pub(crate) pipelined_served: Arc<Counter>,
    pub(crate) pipeline_fallbacks: Arc<Counter>,
    pub(crate) pipeline_backfill: Arc<Histogram>,
    pub(crate) snapshot_publishes: Arc<Counter>,
    pub(crate) snapshot_lag_ops: Arc<Histogram>,
    pub(crate) crypto_lanes: Arc<Gauge>,
}

impl NetStats {
    /// Stats feeding `registry` and emitting events through `tracer`.
    pub fn new(registry: Arc<MetricsRegistry>, tracer: Tracer) -> NetStats {
        let crypto_lanes = registry.gauge("crypto.lanes");
        crypto_lanes.set(tcvs_crypto::sha_lanes() as i64);
        NetStats {
            tracer,
            ops_served: registry.counter("net.server.ops_served"),
            reads_served: registry.counter("net.server.reads_served"),
            journal_hits: registry.counter("net.server.journal_hits"),
            journal_evictions: registry.counter("net.server.journal_evictions"),
            missed_deposits: registry.counter("net.server.missed_deposits"),
            crashes: registry.counter("net.server.crashes"),
            retries: registry.counter("net.client.retries"),
            op_micros: registry.histogram("net.server.op_micros"),
            read_micros: registry.histogram("net.server.read_micros"),
            batch_windows: registry.counter("net.batch.windows"),
            batch_ops: registry.counter("net.batch.ops"),
            batch_declined: registry.counter("net.batch.declined"),
            pipelined_served: registry.counter("net.server.pipelined_served"),
            pipeline_fallbacks: registry.counter("net.server.pipeline_fallbacks"),
            pipeline_backfill: registry.histogram("net.server.pipeline_backfill"),
            snapshot_publishes: registry.counter("net.server.snapshot_publishes"),
            snapshot_lag_ops: registry.histogram("net.server.snapshot_lag_ops"),
            crypto_lanes,
            registry,
        }
    }

    /// Dark instrumentation: a fresh registry nobody reads and no tracer.
    pub fn disabled() -> NetStats {
        NetStats::new(Arc::new(MetricsRegistry::new()), Tracer::disabled())
    }

    /// The registry behind these handles (for registering more metrics or
    /// snapshotting).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The SHA-256 lane width the crypto crate compiled in (mirrored into
    /// the `crypto.lanes` gauge at registration).
    pub fn crypto_lanes(&self) -> i64 {
        self.crypto_lanes.get()
    }
}

impl Default for NetStats {
    fn default() -> NetStats {
        NetStats::disabled()
    }
}

impl std::fmt::Debug for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStats")
            .field("tracer", &self.tracer)
            .field("ops_served", &self.ops_served.get())
            .field("reads_served", &self.reads_served.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stats_still_count() {
        let stats = NetStats::disabled();
        stats.ops_served.inc();
        stats.retries.add(3);
        let snap = stats.snapshot();
        assert_eq!(snap.counter("net.server.ops_served"), Some(1));
        assert_eq!(snap.counter("net.client.retries"), Some(3));
        assert!(!stats.tracer.is_enabled());
    }

    #[test]
    fn lane_width_is_exported_as_a_gauge() {
        let stats = NetStats::disabled();
        assert_eq!(
            stats.crypto_lanes.get(),
            tcvs_crypto::sha_lanes() as i64,
            "gauge mirrors the compiled SHA-256 lane width"
        );
        assert!(matches!(
            stats.snapshot().get("crypto.lanes"),
            Some(tcvs_obs::MetricValue::Gauge(v)) if *v >= 1
        ));
    }

    #[test]
    fn clones_share_the_registry() {
        let stats = NetStats::disabled();
        let clone = stats.clone();
        clone.ops_served.inc();
        assert_eq!(stats.snapshot().counter("net.server.ops_served"), Some(1));
    }

    /// Exercised under TSan by the nightly `--lib` job: threads repeatedly
    /// attach fresh `NetStats` handles to a shared flight-recorder ring,
    /// emit through them, and detach (drop), while a reader snapshots the
    /// ring and the registry concurrently. Nothing here may race or tear.
    #[test]
    fn concurrent_attach_detach_races_cleanly_with_snapshots() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use tcvs_obs::{Event, EventKind, EventSink, FlightRecorder};

        const WRITERS: u32 = 4;
        const ATTACHES: u64 = 64;

        let ring = Arc::new(FlightRecorder::with_capacity(128));
        let registry = Arc::new(MetricsRegistry::new());
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let ring = Arc::clone(&ring);
            let registry = Arc::clone(&registry);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut snaps = 0u64;
                while !done.load(Ordering::Acquire) {
                    let events = ring.snapshot();
                    assert!(events.len() <= 128, "ring bound holds mid-flight");
                    let _ = registry.snapshot();
                    snaps += 1;
                }
                snaps
            })
        };

        let writers: Vec<_> = (0..WRITERS)
            .map(|u| {
                let ring = Arc::clone(&ring);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..ATTACHES {
                        // Attach: a fresh stats handle onto the shared ring.
                        let tracer = Tracer::to_sink(Arc::clone(&ring) as Arc<dyn EventSink>);
                        let stats = NetStats::new(Arc::clone(&registry), tracer);
                        stats.ops_served.inc();
                        stats.tracer.emit(|| Event::new(i, EventKind::OpServed, u));
                        // Detach: `stats` (and its tracer) drop here.
                    }
                })
            })
            .collect();

        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();

        let expected = u64::from(WRITERS) * ATTACHES;
        assert_eq!(ring.recorded(), expected, "no emit was lost or doubled");
        assert_eq!(
            registry.snapshot().counter("net.server.ops_served"),
            Some(expected)
        );
        let tail = ring.snapshot();
        assert_eq!(tail.len(), 128, "a full run fills the ring exactly");
    }
}
