//! Deterministic fault injection for the threaded deployment: a middleware
//! thread interposed between client handles and the server thread.
//!
//! A [`FaultLink`] executes a [`FaultPlan`] against live traffic. Faults
//! apply only to the **first delivery** of each operation `(user, seq)` —
//! retries pass through clean — so a bounded-retry client always converges:
//! benign faults cost latency, never correctness, and the protocol oracles
//! can assert zero false deviation alarms under any plan.
//!
//! Fault semantics on the wire:
//!
//! * `DropRequest` — the request is discarded; the client's reply channel
//!   disconnects and it retries.
//! * `DropReply` — the request is forwarded but its reply sender is swapped
//!   for a dead end; the server executes (journaling the reply) and the
//!   client's retry is answered from the journal. This is the at-most-once
//!   hazard exactly-once semantics exist for.
//! * `Delay(r)` — delivery is held back roughly `r` milliseconds (the
//!   threaded stand-in for `r` rounds).
//! * `Duplicate` — the request is forwarded twice; the server's journal
//!   absorbs the second copy without re-executing.
//! * `ReorderNext` — the request is stashed and delivered after the next
//!   message that passes the link (an adjacent reorder).
//! * `CrashRestart` — after forwarding the request, the link crash-restarts
//!   the server and waits for the restart to complete.
//!
//! Deposits and fetches are never faulted: the plan's unit is the operation,
//! matching [`FaultPlan`]'s simulator semantics. All three operation shapes
//! — plain, batched windows, and pipelined — are faulted uniformly.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use tcvs_core::{FaultCounts, FaultKind, FaultPlan, UserId};
use tcvs_obs::{stage, Event, EventKind, SpanContext};

use crate::obs::NetStats;
use crate::server::{sealed, Endpoint, Request, WireHandle};

/// How long one simulated delay round lasts on the wire.
const ROUND: Duration = Duration::from_millis(1);

/// A fault-injecting link in front of a server. Bind clients to it exactly
/// as they would bind to the [`crate::NetServer`] itself.
pub struct FaultLink {
    tx: Sender<Request>,
    applied: Arc<Mutex<FaultCounts>>,
}

impl sealed::Sealed for FaultLink {}

impl Endpoint for FaultLink {
    fn wire(&self) -> WireHandle {
        WireHandle(self.tx.clone())
    }
}

impl FaultLink {
    /// Interposes a fault-injecting thread between future clients and
    /// `server`, executing `plan` against the operations that pass through
    /// (in arrival order; the `n`-th distinct operation is op index `n`).
    pub fn interpose(server: &impl Endpoint, plan: FaultPlan) -> FaultLink {
        FaultLink::interpose_observed(server, plan, NetStats::disabled())
    }

    /// Like [`FaultLink::interpose`], but each injected fault also emits a
    /// [`EventKind::FaultInjected`] event through `stats` (logical time =
    /// the op index the fault hit).
    pub fn interpose_observed(
        server: &impl Endpoint,
        plan: FaultPlan,
        stats: NetStats,
    ) -> FaultLink {
        let down = server.wire().0;
        let (tx, rx) = unbounded::<Request>();
        let applied = Arc::new(Mutex::new(FaultCounts::default()));
        let counts = Arc::clone(&applied);
        // Detached: the thread exits when every client sender and the
        // FaultLink handle are gone, or when the downstream server is.
        std::thread::spawn(move || {
            let mut seen: HashSet<(UserId, u64)> = HashSet::new();
            let mut op_index: u64 = 0;
            let mut stash: Option<Request> = None;
            while let Ok(req) = rx.recv() {
                let mut stashed_now = false;
                let delivered = match op_meta(&req) {
                    Some((user, seq, ctx)) if seen.insert((user, seq)) => {
                        let fault = plan.fault_at(op_index);
                        if let Some(kind) = fault {
                            stats.tracer.emit(|| {
                                Event::new(op_index, EventKind::FaultInjected, user)
                                    .detail(format!("{kind:?}"))
                                    .span_opt(ctx.map(|c| c.child(stage::FAULT)))
                            });
                        }
                        op_index += 1;
                        match fault {
                            None => down.send(req).is_ok(),
                            Some(FaultKind::DropRequest) => {
                                counts.lock().drops += 1;
                                // Dropping the request (and its reply sender
                                // with it) disconnects the client's wait; it
                                // retries.
                                true
                            }
                            Some(FaultKind::DropReply) => {
                                counts.lock().drops += 1;
                                down.send(sever_reply(req)).is_ok()
                            }
                            Some(FaultKind::Delay(rounds)) => {
                                counts.lock().delays += 1;
                                std::thread::sleep(ROUND * rounds.min(1000) as u32);
                                down.send(req).is_ok()
                            }
                            Some(FaultKind::Duplicate) => {
                                counts.lock().duplicates += 1;
                                let copy = clone_op(&req);
                                down.send(req).is_ok() && down.send(copy).is_ok()
                            }
                            Some(FaultKind::ReorderNext) => {
                                counts.lock().reorders += 1;
                                // Two back-to-back reorders would collide;
                                // release the older one first.
                                if let Some(prev) = stash.take() {
                                    let _ = down.send(prev);
                                }
                                stash = Some(req);
                                stashed_now = true;
                                true
                            }
                            Some(FaultKind::Storage(_)) => {
                                // Storage faults apply between the engine
                                // and its medium, not on the wire; the link
                                // counts them and passes the request clean.
                                counts.lock().storage += 1;
                                down.send(req).is_ok()
                            }
                            Some(FaultKind::CrashRestart) => {
                                counts.lock().crashes += 1;
                                down.send(req).is_ok() && {
                                    let (ack_tx, ack_rx) = bounded(1);
                                    down.send(Request::Crash { ack: ack_tx }).is_ok()
                                        && ack_rx.recv().is_ok()
                                }
                            }
                        }
                    }
                    // Retries, deposits, fetches, shutdown: pass through.
                    _ => down.send(req).is_ok(),
                };
                if !delivered {
                    return;
                }
                if !stashed_now {
                    if let Some(prev) = stash.take() {
                        if down.send(prev).is_err() {
                            return;
                        }
                    }
                }
            }
            // All senders gone: release anything still stashed.
            if let Some(prev) = stash.take() {
                let _ = down.send(prev);
            }
        });
        FaultLink { tx, applied }
    }

    /// Faults actually applied so far (a prefix of the plan if the run was
    /// shorter than the plan).
    pub fn applied(&self) -> FaultCounts {
        *self.applied.lock()
    }
}

/// The fault-relevant identity of an operation-shaped request — plain,
/// batched window, or pipelined. Everything else (deposits, fetches,
/// control messages) is never faulted.
fn op_meta(req: &Request) -> Option<(UserId, u64, Option<SpanContext>)> {
    match req {
        Request::Op { user, seq, ctx, .. }
        | Request::OpBatch { user, seq, ctx, .. }
        | Request::OpPipelined { user, seq, ctx, .. } => Some((*user, *seq, *ctx)),
        _ => None,
    }
}

/// A second delivery of the same operation, sharing the original's reply
/// sender: the server's journal absorbs whichever copy arrives second.
fn clone_op(req: &Request) -> Request {
    match req {
        Request::Op {
            user,
            seq,
            op,
            round,
            ctx,
            reply,
        } => Request::Op {
            user: *user,
            seq: *seq,
            op: op.clone(),
            round: *round,
            ctx: *ctx,
            reply: reply.clone(),
        },
        Request::OpBatch {
            user,
            seq,
            ops,
            round,
            ctx,
            reply,
        } => Request::OpBatch {
            user: *user,
            seq: *seq,
            ops: ops.clone(),
            round: *round,
            ctx: *ctx,
            reply: reply.clone(),
        },
        Request::OpPipelined {
            user,
            seq,
            op,
            round,
            ctx,
            reply,
        } => Request::OpPipelined {
            user: *user,
            seq: *seq,
            op: op.clone(),
            round: *round,
            ctx: *ctx,
            reply: reply.clone(),
        },
        _ => unreachable!("only operation-shaped requests are duplicated"),
    }
}

/// The same request with its reply sender swapped for a dead end: the
/// server executes and journals, the client's wait disconnects, and its
/// retry is answered from the journal.
fn sever_reply(req: Request) -> Request {
    match req {
        Request::Op {
            user,
            seq,
            op,
            round,
            ctx,
            ..
        } => {
            let (dead_tx, _dead_rx) = bounded(1);
            Request::Op {
                user,
                seq,
                op,
                round,
                ctx,
                reply: dead_tx,
            }
        }
        Request::OpBatch {
            user,
            seq,
            ops,
            round,
            ctx,
            ..
        } => {
            let (dead_tx, _dead_rx) = bounded(1);
            Request::OpBatch {
                user,
                seq,
                ops,
                round,
                ctx,
                reply: dead_tx,
            }
        }
        Request::OpPipelined {
            user,
            seq,
            op,
            round,
            ctx,
            ..
        } => {
            let (dead_tx, _dead_rx) = bounded(1);
            Request::OpPipelined {
                user,
                seq,
                op,
                round,
                ctx,
                reply: dead_tx,
            }
        }
        other => other,
    }
}
