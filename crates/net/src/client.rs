//! Threaded client handles: protocol clients bound to a server channel.
//!
//! Every request path returns `Result<_, NetError>`. Transport trouble —
//! a dead server, an exhausted retry budget — surfaces as
//! [`NetError::ServerGone`] / [`NetError::Timeout`]; a failed protocol
//! verification surfaces as [`NetError::Deviation`]. Nothing on the request
//! path panics. Each handle numbers its requests with a per-user sequence
//! so the server can deduplicate retries (exactly-once execution).

use crossbeam::channel::Sender;
use tcvs_core::{
    Client1, Client2, Ctr, Deviation, Digest, EvidenceBuilder, EvidenceBundle, EvidenceKind, Op,
    OpResult, ProtocolConfig, ServerResponse, SyncShare, TransitionLog, UserId,
};
use tcvs_crypto::{KeyRegistry, Keyring};
use tcvs_merkle::{replay_unanchored, VerifyError};
use tcvs_obs::SpanContext;

use crate::bootstrap::{BootstrapClient, BootstrapError, BootstrapReport};
use crate::error::{NetError, RetryPolicy};
use crate::obs::NetStats;
use crate::server::{
    remote_batch, remote_fetch, remote_op, remote_pipelined, remote_read, Endpoint, PipelinedReply,
    ReadRequest, Request, SnapshotSlot,
};
use std::sync::Arc;

fn send_deposit(tx: &Sender<Request>, req: Request) -> Result<(), NetError> {
    tx.send(req).map_err(|_| NetError::ServerGone)
}

/// A Protocol I client bound to a running server.
///
/// Each `execute` is a full protocol exchange: request → response →
/// verification → signature deposit (the deposit is what the blocking
/// server waits for).
pub struct NetClient1 {
    inner: Client1,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
    pipelined: bool,
}

impl NetClient1 {
    /// Binds a client to `server` (a [`crate::NetServer`] or a
    /// [`crate::FaultLink`] in front of one).
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient1 {
        NetClient1 {
            inner: Client1::new(keyring, registry, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            pipelined: false,
        }
    }

    /// Opts into pipelined exchanges: requests go out in the pipelined
    /// shape, and responses are verified against this client's own last
    /// deposited signature (its frontier) when the server serves ahead of
    /// the deposit stream. Safe against a server spawned with any
    /// `pipeline_depth` (including 0 — it simply always answers in the
    /// blocking-path shape).
    pub fn set_pipelined(&mut self, pipelined: bool) {
        self.pipelined = pipelined;
    }

    /// Attaches observability handles: transport retries feed the shared
    /// counters, and the inner protocol client emits through the tracer.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.inner.set_tracer(stats.tracer.clone());
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Signs and deposits the initial state (run once, by the elected user,
    /// before any operation).
    pub fn deposit_initial(&mut self, root0: &Digest) -> Result<(), NetError> {
        let init = self.inner.sign_initial(root0)?;
        send_deposit(
            &self.tx,
            Request::Signature {
                user: self.inner.user(),
                signed: init,
                ctx: None,
            },
        )
    }

    /// Executes one verified operation. The whole exchange — request,
    /// server handling, verification verdict, signature deposit — shares
    /// one trace rooted at this client's `(user, seq)`.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        let ctx = SpanContext::root(self.inner.user(), self.seq);
        self.inner.set_current_span(Some(ctx));
        let (result, deposit) = if self.pipelined {
            let reply = remote_pipelined(
                &self.tx,
                self.inner.user(),
                self.seq,
                op,
                self.ops,
                Some(ctx),
                &self.policy,
                &self.stats,
            )?;
            self.ops += 1;
            match reply {
                PipelinedReply::Pipelined(presp) => {
                    self.inner.handle_pipelined_response(op, &presp)?
                }
                PipelinedReply::Legacy(resp) => self.inner.handle_response(op, &resp)?,
            }
        } else {
            let resp = remote_op(
                &self.tx,
                self.inner.user(),
                self.seq,
                op,
                self.ops,
                Some(ctx),
                &self.policy,
                &self.stats,
            )?;
            self.ops += 1;
            self.inner.handle_response(op, &resp)?
        };
        send_deposit(
            &self.tx,
            Request::Signature {
                user: self.inner.user(),
                signed: deposit,
                ctx: Some(ctx),
            },
        )?;
        Ok(result)
    }

    /// This user's broadcast share (for an out-of-band sync-up).
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol II client bound to a running server: one round trip per
/// operation, no deposit.
pub struct NetClient2 {
    inner: Client2,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
    evidence: Option<EvidenceBundle>,
    evidence_seed: u64,
}

impl NetClient2 {
    /// Binds a client to `server`.
    pub fn new(
        user: UserId,
        root0: &Digest,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient2 {
        NetClient2 {
            inner: Client2::new(user, root0, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            evidence: None,
            evidence_seed: 0,
        }
    }

    /// Binds a client that joins mid-history at a published state
    /// `(root, ctr, last_user)` — see [`Client2::join`]. This is how a
    /// verified session starts on a server restored by chunked state sync,
    /// or how a late joiner anchors at a published snapshot instead of
    /// genesis.
    pub fn join(
        user: UserId,
        root: &Digest,
        ctr: Ctr,
        last_user: UserId,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient2 {
        NetClient2 {
            inner: Client2::join(user, root, ctr, last_user, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            evidence: None,
            evidence_seed: 0,
        }
    }

    /// Attaches observability handles: transport retries feed the shared
    /// counters, and the inner protocol client emits through the tracer.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.inner.set_tracer(stats.tracer.clone());
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Enables the forensic transition log on the inner protocol client, so
    /// a captured evidence bundle can carry this user's state-transition
    /// history for cold fork diagnosis.
    pub fn enable_logging(&mut self) {
        self.inner.enable_logging();
    }

    /// The recorded transition log, if [`NetClient2::enable_logging`] ran.
    pub fn transition_log(&self) -> Option<&TransitionLog> {
        self.inner.transition_log()
    }

    /// Stamps captured evidence bundles with the run seed that produced
    /// them, tying an incident artifact back to a reproducible run.
    pub fn set_evidence_seed(&mut self, seed: u64) {
        self.evidence_seed = seed;
    }

    /// Takes the evidence bundle captured at the most recent failed
    /// verification, if any. The stash holds one bundle — the first
    /// deviation of an exchange — until taken.
    pub fn take_evidence(&mut self) -> Option<EvidenceBundle> {
        self.evidence.take()
    }

    /// Builds and stashes an evidence bundle at a detection site. The
    /// bundle carries everything a cold auditor needs from this client's
    /// side: its anchor token, its sync share, the offending verification
    /// object and signed deposit (when the response carried them), and the
    /// transition log when logging is on.
    fn capture(&mut self, kind: EvidenceKind, d: &Deviation, resp: Option<&ServerResponse>) {
        if self.evidence.is_some() {
            return;
        }
        let mut b = EvidenceBuilder::new(kind, self.evidence_seed, "protocol-2")
            .captured_at(self.ops)
            .description(format!(
                "user {} rejected a server response at lctr {}",
                self.inner.user(),
                self.inner.lctr()
            ))
            .deviation(d)
            .initials(&[self.inner.initial_token()])
            .shares(vec![vec![self.inner.sync_share()]]);
        if let Some(resp) = resp {
            b = b.vo(resp.vo.to_bytes());
            if let Some(sig) = &resp.sig {
                b = b.signed_state(sig.clone());
            }
        }
        if let Some(log) = self.inner.transition_log() {
            b = b.transition_log(0, self.inner.user(), log);
        }
        self.evidence = Some(b.build());
    }

    /// Executes one verified operation. Request, server handling, and the
    /// verification verdict share one trace rooted at `(user, seq)`. A
    /// failed verification stashes an evidence bundle retrievable with
    /// [`NetClient2::take_evidence`].
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        let ctx = SpanContext::root(self.inner.user(), self.seq);
        self.inner.set_current_span(Some(ctx));
        let resp = remote_op(
            &self.tx,
            self.inner.user(),
            self.seq,
            op,
            self.ops,
            Some(ctx),
            &self.policy,
            &self.stats,
        )?;
        self.ops += 1;
        match self.inner.handle_response(op, &resp) {
            Ok(result) => Ok(result),
            Err(d) => {
                self.capture(EvidenceKind::ProtocolVerdict, &d, Some(&resp));
                Err(d.into())
            }
        }
    }

    /// Executes a window of operations as **one** verified exchange: one
    /// round trip, one [`tcvs_core::BatchResponse`] whose spine siblings
    /// are shared across the window, one σ-token fold telescoped over the
    /// whole window.
    ///
    /// Falls back transparently to per-op [`NetClient2::execute`] when the
    /// window contains a non-batchable operation or the server declines the
    /// batch (older deployments, durable backends) — the results are
    /// identical either way, only the wire cost differs.
    pub fn execute_batch(&mut self, ops: &[Op]) -> Result<Vec<OpResult>, NetError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if !ops.iter().all(tcvs_merkle::batchable) {
            return self.execute_each(ops);
        }
        self.seq += 1;
        let ctx = SpanContext::root(self.inner.user(), self.seq);
        self.inner.set_current_span(Some(ctx));
        match remote_batch(
            &self.tx,
            self.inner.user(),
            self.seq,
            ops,
            self.ops,
            Some(ctx),
            &self.policy,
            &self.stats,
        )? {
            Some(resp) => {
                self.ops += ops.len() as u64;
                match self.inner.handle_batch_response(ops, &resp) {
                    Ok(results) => Ok(results),
                    Err(d) => {
                        // Batch proofs are window-shaped (no standalone VO to
                        // embed); the bundle still pins the client's view.
                        self.capture(EvidenceKind::BatchVerifyFailure, &d, None);
                        Err(d.into())
                    }
                }
            }
            // Declined windows had no side effects; replay the ops one at a
            // time under fresh sequence numbers.
            None => self.execute_each(ops),
        }
    }

    fn execute_each(&mut self, ops: &[Op]) -> Result<Vec<OpResult>, NetError> {
        ops.iter().map(|op| self.execute(op)).collect()
    }

    /// This user's broadcast share.
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol III client bound to a running server: deposits signed epoch
/// states and performs its audit duties over the same channel.
pub struct NetClient3 {
    inner: tcvs_core::Client3,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
    /// Client-side clock: rounds advance one per operation (the bench rig's
    /// stand-in for wall time; epoch length is interpreted in ops).
    round: u64,
}

impl NetClient3 {
    /// Binds a client to `server`.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        n_users: u32,
        root0: &Digest,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient3 {
        NetClient3 {
            inner: tcvs_core::Client3::new(keyring, registry, n_users, root0, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            round: 0,
        }
    }

    /// Attaches observability handles: transport retries feed the shared
    /// counters, and the inner protocol client emits through the tracer.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.inner.set_tracer(stats.tracer.clone());
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one verified operation at client clock `round`, forwarding
    /// epoch-state deposits and running any due audit.
    pub fn execute_at(&mut self, op: &Op, round: u64) -> Result<OpResult, NetError> {
        self.round = round;
        self.seq += 1;
        let ctx = SpanContext::root(self.inner.user(), self.seq);
        self.inner.set_current_span(Some(ctx));
        let resp = remote_op(
            &self.tx,
            self.inner.user(),
            self.seq,
            op,
            round,
            Some(ctx),
            &self.policy,
            &self.stats,
        )?;
        self.ops += 1;
        let (result, deposits) = self.inner.handle_response(op, &resp, round)?;
        for d in deposits {
            send_deposit(&self.tx, Request::EpochState(d))?;
        }
        if let Some(epoch) = self.inner.pending_audit() {
            let user = self.inner.user();
            self.seq += 1;
            let states = remote_fetch(
                &self.tx,
                user,
                self.seq,
                &self.policy,
                &self.stats,
                |reply| Request::FetchEpochStates { user, epoch, reply },
            )?;
            let prev = if epoch == 0 {
                None
            } else {
                self.seq += 1;
                remote_fetch(
                    &self.tx,
                    user,
                    self.seq,
                    &self.policy,
                    &self.stats,
                    |reply| Request::FetchCheckpoint {
                        user,
                        epoch: epoch - 1,
                        reply,
                    },
                )?
            };
            let cp = self.inner.audit(epoch, &states, prev.as_ref())?;
            send_deposit(&self.tx, Request::Checkpoint(cp))?;
        }
        Ok(result)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// An unverifying client: the trusted-server baseline.
///
/// When the endpoint exposes a concurrent read path, point and range
/// queries are served directly from the latest published snapshot on the
/// caller's own thread — no wire hop, no proof. Updates always take the
/// serialized path. Trusting the server anyway, this client loses nothing
/// by reading from a snapshot; it is the shared-memory analogue of hitting
/// a read replica.
pub struct NetClientTrusted {
    user: UserId,
    tx: Sender<Request>,
    snapshots: Option<SnapshotSlot>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
}

impl NetClientTrusted {
    /// Binds a baseline client to `server`.
    pub fn new(user: UserId, server: &impl Endpoint) -> NetClientTrusted {
        NetClientTrusted {
            user,
            tx: server.wire().0,
            snapshots: server.read_wire().map(|w| w.slot),
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
        }
    }

    /// Attaches observability handles (transport retries, snapshot-read
    /// counters). Metric updates happen outside the snapshot-slot lock.
    pub fn set_stats(&mut self, stats: NetStats) {
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one unverified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        if !op.is_update() {
            if let Some(slot) = &self.snapshots {
                // Grab the current snapshot (O(1): one Arc clone under a
                // briefly-held lock) and answer from it right here. The
                // timestamp opens after the guard is gone: instrumentation
                // must never lengthen the slot's critical section.
                let snap = Arc::clone(&slot.lock());
                let started = std::time::Instant::now();
                if let Some(result) = snap.serve_result(op) {
                    self.ops += 1;
                    self.stats.reads_served.inc();
                    self.stats
                        .read_micros
                        .observe(started.elapsed().as_micros() as u64);
                    return Ok(result);
                }
            }
        }
        let resp = remote_op(
            &self.tx,
            self.user,
            self.seq,
            op,
            self.ops,
            Some(SpanContext::root(self.user, self.seq)),
            &self.policy,
            &self.stats,
        )?;
        self.ops += 1;
        Ok(resp.result)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }
}

/// A verifying reader over the concurrent snapshot path.
///
/// Every answer is replay-verified: the proof must replay to the exact root
/// digest the server committed to for the snapshot, and the claimed result
/// must match the replayed result — a fabricated answer or tampered proof
/// surfaces as [`NetError::Deviation`]. Snapshot counters must never move
/// backwards across this reader's queries.
///
/// A snapshot reader performs **no server state transition** (no counter
/// increment, no σ-token fold), so it adds nothing to — and, crucially,
/// subtracts nothing from — the k-bounded fork detection carried by the
/// serialized Protocol I/II/III clients. It buys read scalability for
/// queries whose freshness requirement is "some committed state no older
/// than my last read", which is exactly what a CVS checkout needs.
pub struct NetSnapshotReader {
    user: UserId,
    order: usize,
    read_tx: Sender<ReadRequest>,
    last_ctr: Ctr,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
}

impl NetSnapshotReader {
    /// Binds a reader to `server`'s read path. Returns `None` when the
    /// endpoint has no read path (adversarial servers never offer one, and
    /// a [`crate::FaultLink`] deliberately hides its server's).
    pub fn bind(user: UserId, config: &ProtocolConfig, server: &impl Endpoint) -> Option<Self> {
        Some(NetSnapshotReader {
            user,
            order: config.order,
            read_tx: server.read_wire()?.tx,
            last_ctr: 0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
        })
    }

    /// Cold-starts a reader via chunked verified state sync: fetches the
    /// server's snapshot as root-anchored chunks, verifies and assembles it
    /// (no history replay, no trusted snapshot), and returns the reader
    /// already caught up to the snapshot's counter, alongside the verified
    /// state itself.
    ///
    /// `expected_anchor` pins the root to bootstrap against (e.g. from a
    /// published grove epoch); `None` follows the server's current
    /// snapshot, in which case the caller must check
    /// [`BootstrapReport::root`] against an independently learned root
    /// before trusting the data.
    pub fn bootstrap(
        user: UserId,
        config: &ProtocolConfig,
        server: &impl Endpoint,
        expected_anchor: Option<&Digest>,
    ) -> Result<(NetSnapshotReader, BootstrapReport), BootstrapError> {
        let mut reader =
            NetSnapshotReader::bind(user, config, server).ok_or(BootstrapError::Unsupported)?;
        let mut boot = BootstrapClient::new(user, server);
        let report = boot.bootstrap(expected_anchor)?;
        if report.tree.order() != config.order {
            return Err(BootstrapError::Manifest(
                tcvs_merkle::ChunkError::OrderMismatch {
                    expected: config.order,
                    got: report.tree.order(),
                },
            ));
        }
        // Future verified reads must be at least as fresh as the
        // bootstrapped state: the snapshot counter becomes the reader's
        // monotonicity floor.
        reader.last_ctr = report.ctr;
        Ok((reader, report))
    }

    /// Attaches observability handles (transport retry counters).
    pub fn set_stats(&mut self, stats: NetStats) {
        self.stats = stats;
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one verified read (point or range).
    ///
    /// # Panics
    ///
    /// Panics if `op` is an update: state transitions belong to the
    /// serialized path by construction.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        assert!(!op.is_update(), "snapshot readers serve reads only");
        self.seq += 1;
        let resp = remote_read(
            &self.read_tx,
            self.user,
            self.seq,
            op,
            Some(SpanContext::root(self.user, self.seq)),
            &self.policy,
            &self.stats,
        )?;
        // Replay the proof from scratch (every cached digest recomputed) and
        // check the claimed answer against the replayed one.
        let (proof_root, _) = replay_unanchored(self.order, &resp.vo, op, Some(&resp.result))
            .map_err(|e| NetError::Deviation(Deviation::BadProof(e)))?;
        // The proof must be against the very root the server committed to
        // for this snapshot — not some other state it happens to have.
        if proof_root != resp.root {
            return Err(NetError::Deviation(Deviation::BadProof(
                VerifyError::RootMismatch,
            )));
        }
        // Snapshot time never runs backwards for one reader.
        if resp.ctr < self.last_ctr {
            return Err(NetError::Deviation(Deviation::CounterRegression {
                seen: resp.ctr,
                expected_at_least: self.last_ctr,
            }));
        }
        self.last_ctr = resp.ctr;
        self.ops += 1;
        Ok(resp.result)
    }

    /// The snapshot counter of the most recent verified read.
    pub fn last_ctr(&self) -> Ctr {
        self.last_ctr
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.user
    }
}
