//! Threaded client handles: protocol clients bound to a server channel.
//!
//! Every request path returns `Result<_, NetError>`. Transport trouble —
//! a dead server, an exhausted retry budget — surfaces as
//! [`NetError::ServerGone`] / [`NetError::Timeout`]; a failed protocol
//! verification surfaces as [`NetError::Deviation`]. Nothing on the request
//! path panics. Each handle numbers its requests with a per-user sequence
//! so the server can deduplicate retries (exactly-once execution).

use crossbeam::channel::Sender;
use tcvs_core::{Client1, Client2, Digest, Op, OpResult, ProtocolConfig, SyncShare, UserId};
use tcvs_crypto::{KeyRegistry, Keyring};

use crate::error::{NetError, RetryPolicy};
use crate::server::{remote_fetch, remote_op, Endpoint, Request};

fn send_deposit(tx: &Sender<Request>, req: Request) -> Result<(), NetError> {
    tx.send(req).map_err(|_| NetError::ServerGone)
}

/// A Protocol I client bound to a running server.
///
/// Each `execute` is a full protocol exchange: request → response →
/// verification → signature deposit (the deposit is what the blocking
/// server waits for).
pub struct NetClient1 {
    inner: Client1,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
}

impl NetClient1 {
    /// Binds a client to `server` (a [`crate::NetServer`] or a
    /// [`crate::FaultLink`] in front of one).
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient1 {
        NetClient1 {
            inner: Client1::new(keyring, registry, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Signs and deposits the initial state (run once, by the elected user,
    /// before any operation).
    pub fn deposit_initial(&mut self, root0: &Digest) -> Result<(), NetError> {
        let init = self.inner.sign_initial(root0)?;
        send_deposit(
            &self.tx,
            Request::Signature {
                user: self.inner.user(),
                signed: init,
            },
        )
    }

    /// Executes one verified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        let resp = remote_op(
            &self.tx,
            self.inner.user(),
            self.seq,
            op,
            self.ops,
            &self.policy,
        )?;
        self.ops += 1;
        let (result, deposit) = self.inner.handle_response(op, &resp)?;
        send_deposit(
            &self.tx,
            Request::Signature {
                user: self.inner.user(),
                signed: deposit,
            },
        )?;
        Ok(result)
    }

    /// This user's broadcast share (for an out-of-band sync-up).
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol II client bound to a running server: one round trip per
/// operation, no deposit.
pub struct NetClient2 {
    inner: Client2,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
}

impl NetClient2 {
    /// Binds a client to `server`.
    pub fn new(
        user: UserId,
        root0: &Digest,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient2 {
        NetClient2 {
            inner: Client2::new(user, root0, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one verified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        let resp = remote_op(
            &self.tx,
            self.inner.user(),
            self.seq,
            op,
            self.ops,
            &self.policy,
        )?;
        self.ops += 1;
        Ok(self.inner.handle_response(op, &resp)?)
    }

    /// This user's broadcast share.
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol III client bound to a running server: deposits signed epoch
/// states and performs its audit duties over the same channel.
pub struct NetClient3 {
    inner: tcvs_core::Client3,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
    /// Client-side clock: rounds advance one per operation (the bench rig's
    /// stand-in for wall time; epoch length is interpreted in ops).
    round: u64,
}

impl NetClient3 {
    /// Binds a client to `server`.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        n_users: u32,
        root0: &Digest,
        config: ProtocolConfig,
        server: &impl Endpoint,
    ) -> NetClient3 {
        NetClient3 {
            inner: tcvs_core::Client3::new(keyring, registry, n_users, root0, config),
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
            round: 0,
        }
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one verified operation at client clock `round`, forwarding
    /// epoch-state deposits and running any due audit.
    pub fn execute_at(&mut self, op: &Op, round: u64) -> Result<OpResult, NetError> {
        self.round = round;
        self.seq += 1;
        let resp = remote_op(
            &self.tx,
            self.inner.user(),
            self.seq,
            op,
            round,
            &self.policy,
        )?;
        self.ops += 1;
        let (result, deposits) = self.inner.handle_response(op, &resp, round)?;
        for d in deposits {
            send_deposit(&self.tx, Request::EpochState(d))?;
        }
        if let Some(epoch) = self.inner.pending_audit() {
            let user = self.inner.user();
            self.seq += 1;
            let states = remote_fetch(&self.tx, user, self.seq, &self.policy, |reply| {
                Request::FetchEpochStates { user, epoch, reply }
            })?;
            let prev = if epoch == 0 {
                None
            } else {
                self.seq += 1;
                remote_fetch(&self.tx, user, self.seq, &self.policy, |reply| {
                    Request::FetchCheckpoint {
                        user,
                        epoch: epoch - 1,
                        reply,
                    }
                })?
            };
            let cp = self.inner.audit(epoch, &states, prev.as_ref())?;
            send_deposit(&self.tx, Request::Checkpoint(cp))?;
        }
        Ok(result)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// An unverifying client: the trusted-server baseline.
pub struct NetClientTrusted {
    user: UserId,
    tx: Sender<Request>,
    ops: u64,
    seq: u64,
    policy: RetryPolicy,
}

impl NetClientTrusted {
    /// Binds a baseline client to `server`.
    pub fn new(user: UserId, server: &impl Endpoint) -> NetClientTrusted {
        NetClientTrusted {
            user,
            tx: server.wire().0,
            ops: 0,
            seq: 0,
            policy: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Executes one unverified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, NetError> {
        self.seq += 1;
        let resp = remote_op(&self.tx, self.user, self.seq, op, self.ops, &self.policy)?;
        self.ops += 1;
        Ok(resp.result)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }
}
