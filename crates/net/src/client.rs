//! Threaded client handles: protocol clients bound to a server channel.

use crossbeam::channel::Sender;
use tcvs_core::{
    Client1, Client2, Deviation, Digest, Op, OpResult, ProtocolConfig, SyncShare, UserId,
};
use tcvs_crypto::{KeyRegistry, Keyring};

use crate::server::{remote_op, NetServer, Request};

/// A Protocol I client bound to a running [`NetServer`].
///
/// Each `execute` is a full protocol exchange: request → response →
/// verification → signature deposit (the deposit is what the blocking
/// server waits for).
pub struct NetClient1 {
    inner: Client1,
    tx: Sender<Request>,
    ops: u64,
}

impl NetClient1 {
    /// Binds a client to `server`.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        config: ProtocolConfig,
        server: &NetServer,
    ) -> NetClient1 {
        NetClient1 {
            inner: Client1::new(keyring, registry, config),
            tx: server.sender(),
            ops: 0,
        }
    }

    /// Signs and deposits the initial state (run once, by the elected user,
    /// before any operation).
    pub fn deposit_initial(&mut self, root0: &Digest) -> Result<(), Deviation> {
        let init = self.inner.sign_initial(root0)?;
        self.tx
            .send(Request::Signature {
                user: self.inner.user(),
                signed: init,
            })
            .expect("server alive");
        Ok(())
    }

    /// Executes one verified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, Deviation> {
        let resp = remote_op(&self.tx, self.inner.user(), op, self.ops);
        self.ops += 1;
        let (result, deposit) = self.inner.handle_response(op, &resp)?;
        self.tx
            .send(Request::Signature {
                user: self.inner.user(),
                signed: deposit,
            })
            .expect("server alive");
        Ok(result)
    }

    /// This user's broadcast share (for an out-of-band sync-up).
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol II client bound to a running [`NetServer`]: one round trip
/// per operation, no deposit.
pub struct NetClient2 {
    inner: Client2,
    tx: Sender<Request>,
    ops: u64,
}

impl NetClient2 {
    /// Binds a client to `server`.
    pub fn new(
        user: UserId,
        root0: &Digest,
        config: ProtocolConfig,
        server: &NetServer,
    ) -> NetClient2 {
        NetClient2 {
            inner: Client2::new(user, root0, config),
            tx: server.sender(),
            ops: 0,
        }
    }

    /// Executes one verified operation.
    pub fn execute(&mut self, op: &Op) -> Result<OpResult, Deviation> {
        let resp = remote_op(&self.tx, self.inner.user(), op, self.ops);
        self.ops += 1;
        self.inner.handle_response(op, &resp)
    }

    /// This user's broadcast share.
    pub fn sync_share(&self) -> SyncShare {
        self.inner.sync_share()
    }

    /// Evaluates the sync-up success predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.inner.sync_succeeds(shares)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// A Protocol III client bound to a running [`NetServer`]: deposits signed
/// epoch states and performs its audit duties over the same channel.
pub struct NetClient3 {
    inner: tcvs_core::Client3,
    tx: Sender<Request>,
    ops: u64,
    /// Client-side clock: rounds advance one per operation (the bench rig's
    /// stand-in for wall time; epoch length is interpreted in ops).
    round: u64,
}

impl NetClient3 {
    /// Binds a client to `server`.
    pub fn new(
        keyring: Keyring,
        registry: KeyRegistry,
        n_users: u32,
        root0: &Digest,
        config: ProtocolConfig,
        server: &NetServer,
    ) -> NetClient3 {
        NetClient3 {
            inner: tcvs_core::Client3::new(keyring, registry, n_users, root0, config),
            tx: server.sender(),
            ops: 0,
            round: 0,
        }
    }

    /// Executes one verified operation at client clock `round`, forwarding
    /// epoch-state deposits and running any due audit.
    pub fn execute_at(&mut self, op: &Op, round: u64) -> Result<OpResult, Deviation> {
        self.round = round;
        let resp = remote_op(&self.tx, self.inner.user(), op, round);
        self.ops += 1;
        let (result, deposits) = self.inner.handle_response(op, &resp, round)?;
        for d in deposits {
            self.tx
                .send(Request::EpochState(d))
                .expect("server alive");
        }
        if let Some(epoch) = self.inner.pending_audit() {
            let (rtx, rrx) = crossbeam::channel::bounded(1);
            self.tx
                .send(Request::FetchEpochStates {
                    user: self.inner.user(),
                    epoch,
                    reply: rtx,
                })
                .expect("server alive");
            let states = rrx.recv().expect("server replies");
            let prev = if epoch == 0 {
                None
            } else {
                let (ctx, crx) = crossbeam::channel::bounded(1);
                self.tx
                    .send(Request::FetchCheckpoint {
                        user: self.inner.user(),
                        epoch: epoch - 1,
                        reply: ctx,
                    })
                    .expect("server alive");
                crx.recv().expect("server replies")
            };
            let cp = self.inner.audit(epoch, &states, prev.as_ref())?;
            self.tx.send(Request::Checkpoint(cp)).expect("server alive");
        }
        Ok(result)
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }

    /// User id.
    pub fn user(&self) -> UserId {
        self.inner.user()
    }
}

/// An unverifying client: the trusted-server baseline.
pub struct NetClientTrusted {
    user: UserId,
    tx: Sender<Request>,
    ops: u64,
}

impl NetClientTrusted {
    /// Binds a baseline client to `server`.
    pub fn new(user: UserId, server: &NetServer) -> NetClientTrusted {
        NetClientTrusted {
            user,
            tx: server.sender(),
            ops: 0,
        }
    }

    /// Executes one unverified operation.
    pub fn execute(&mut self, op: &Op) -> OpResult {
        let resp = remote_op(&self.tx, self.user, op, self.ops);
        self.ops += 1;
        resp.result
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops
    }
}
