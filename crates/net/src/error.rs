//! Typed client-side network errors and the retry policy.
//!
//! Every client request path returns `Result<_, NetError>`: a dead server
//! or an exhausted retry budget is an *availability* outcome the caller
//! handles, never a panic. Protocol verification failures ride along as
//! [`NetError::Deviation`] so one error type covers the whole exchange.

use std::time::Duration;

use tcvs_core::{Deviation, UserId};
use tcvs_crypto::SeedRng;

/// Why a client request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The server thread is gone: its channel disconnected and a request
    /// can no longer be delivered.
    ServerGone,
    /// No reply arrived within the timeout, across every retry attempt.
    Timeout {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The reply arrived but failed protocol verification — the server
    /// *deviated* (this is detection, not a transport fault).
    Deviation(Deviation),
}

impl NetError {
    /// The deviation, if this error is a detection.
    pub fn deviation(&self) -> Option<&Deviation> {
        match self {
            NetError::Deviation(d) => Some(d),
            _ => None,
        }
    }
}

impl From<Deviation> for NetError {
    fn from(d: Deviation) -> NetError {
        NetError::Deviation(d)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::ServerGone => write!(f, "server is gone (channel disconnected)"),
            NetError::Timeout { attempts } => {
                write!(f, "no reply after {attempts} attempts")
            }
            NetError::Deviation(d) => write!(f, "server deviation detected: {d:?}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Attempt `a` waits `base_timeout << a` for its reply, plus a jitter drawn
/// deterministically from `(user, seq, attempt)` — concurrent clients
/// de-synchronize their retries, yet every run with the same inputs behaves
/// identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Reply timeout for the first attempt; doubles each retry.
    pub base_timeout: Duration,
    /// Upper bound on the per-attempt jitter added to the timeout.
    pub max_jitter: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_timeout: Duration::from_millis(100),
            max_jitter: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and fails fast (tests, probes).
    pub fn fail_fast(timeout: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_timeout: timeout,
            max_jitter: Duration::ZERO,
        }
    }

    /// The reply timeout for `attempt` (0-based) of request `(user, seq)`.
    pub fn attempt_timeout(&self, user: UserId, seq: u64, attempt: u32) -> Duration {
        // Cap the shift so a large max_attempts cannot overflow.
        let backoff = self.base_timeout * (1u32 << attempt.min(6));
        backoff + self.jitter(user, seq, attempt)
    }

    fn jitter(&self, user: UserId, seq: u64, attempt: u32) -> Duration {
        let bound = self.max_jitter.as_micros() as u64;
        if bound == 0 {
            return Duration::ZERO;
        }
        let mut label = Vec::with_capacity(32);
        label.extend_from_slice(b"tcvs-net-jitter:");
        label.extend_from_slice(&user.to_le_bytes());
        label.extend_from_slice(&seq.to_le_bytes());
        label.extend_from_slice(&attempt.to_le_bytes());
        let mut rng = SeedRng::from_label(&label);
        Duration::from_micros(rng.next_below(bound + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeouts_grow_exponentially() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_timeout: Duration::from_millis(10),
            max_jitter: Duration::ZERO,
        };
        assert_eq!(p.attempt_timeout(0, 0, 0), Duration::from_millis(10));
        assert_eq!(p.attempt_timeout(0, 0, 1), Duration::from_millis(20));
        assert_eq!(p.attempt_timeout(0, 0, 3), Duration::from_millis(80));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_input_sensitive() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_timeout: Duration::from_millis(10),
            max_jitter: Duration::from_millis(5),
        };
        let a = p.attempt_timeout(1, 7, 2);
        assert_eq!(a, p.attempt_timeout(1, 7, 2), "same inputs, same timeout");
        assert!(a >= Duration::from_millis(40));
        assert!(a <= Duration::from_millis(45));
        let others = [
            p.attempt_timeout(2, 7, 2),
            p.attempt_timeout(1, 8, 2),
            p.attempt_timeout(1, 7, 1) * 2,
        ];
        assert!(
            others.iter().any(|o| *o != a),
            "jitter varies across users/seqs/attempts"
        );
    }

    #[test]
    fn shift_cap_prevents_overflow() {
        let p = RetryPolicy {
            max_attempts: 64,
            base_timeout: Duration::from_millis(1),
            max_jitter: Duration::ZERO,
        };
        assert_eq!(p.attempt_timeout(0, 0, 63), Duration::from_millis(64));
    }

    #[test]
    fn deviation_round_trips_through_neterror() {
        let e: NetError = Deviation::BadSignature.into();
        assert_eq!(e.deviation(), Some(&Deviation::BadSignature));
        assert!(NetError::ServerGone.deviation().is_none());
        assert!(format!("{e}").contains("deviation"));
    }
}
