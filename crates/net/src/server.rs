//! The threaded server: one thread owning a [`ServerApi`] implementation,
//! serving requests over crossbeam channels.
//!
//! Protocol I's blocking step is *physically* reproduced: in blocking mode
//! the server thread will not take the next operation until the previous
//! client's signature deposit has arrived — this is what experiment E6's
//! wall-clock throughput numbers measure.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use tcvs_core::{
    Epoch, Op, ServerApi, ServerResponse, SignedCheckpoint, SignedEpochState, SignedState, UserId,
};

/// A request to the server thread.
pub(crate) enum Request {
    Op {
        user: UserId,
        op: Op,
        round: u64,
        reply: Sender<ServerResponse>,
    },
    Signature {
        user: UserId,
        signed: SignedState,
    },
    EpochState(SignedEpochState),
    FetchEpochStates {
        user: UserId,
        epoch: Epoch,
        reply: Sender<Vec<SignedEpochState>>,
    },
    Checkpoint(SignedCheckpoint),
    FetchCheckpoint {
        user: UserId,
        epoch: Epoch,
        reply: Sender<Option<SignedCheckpoint>>,
    },
    Shutdown,
}

/// Handle to a running server thread.
pub struct NetServer {
    tx: Sender<Request>,
    join: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Spawns the server thread over any (honest or adversarial) server
    /// implementation. `blocking_signatures` reproduces Protocol I's extra
    /// blocking message: after each *operation* the server waits for the
    /// client's signature deposit before serving the next request.
    pub fn spawn(mut inner: Box<dyn ServerApi + Send>, blocking_signatures: bool) -> NetServer {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
        let join = std::thread::spawn(move || {
            // Requests that arrived while the server was blocked waiting for
            // a Protocol I signature deposit; replayed in arrival order.
            let mut backlog: std::collections::VecDeque<Request> = Default::default();
            loop {
                let req = match backlog.pop_front() {
                    Some(r) => r,
                    None => match rx.recv() {
                        Ok(r) => r,
                        Err(_) => return,
                    },
                };
                match req {
                    Request::Op {
                        user,
                        op,
                        round,
                        reply,
                    } => {
                        let resp = inner.handle_op(user, &op, round);
                        // The reply channel may be dropped if the client
                        // detected deviation and bailed; that's fine.
                        let _ = reply.send(resp);
                        if blocking_signatures {
                            // Protocol I: the server may not serve the next
                            // operation until this user's signature deposit
                            // arrives. Other users' requests queue up behind
                            // the block (that latency is the measured cost).
                            loop {
                                match rx.recv() {
                                    Ok(Request::Signature { user: su, signed }) if su == user => {
                                        inner.deposit_signature(su, signed);
                                        break;
                                    }
                                    Ok(Request::Shutdown) | Err(_) => return,
                                    Ok(other) => backlog.push_back(other),
                                }
                            }
                        }
                    }
                    Request::Signature { user, signed } => {
                        inner.deposit_signature(user, signed);
                    }
                    Request::EpochState(s) => inner.deposit_epoch_state(s),
                    Request::FetchEpochStates { user, epoch, reply } => {
                        let _ = reply.send(inner.fetch_epoch_states(user, epoch));
                    }
                    Request::Checkpoint(c) => inner.deposit_checkpoint(c),
                    Request::FetchCheckpoint { user, epoch, reply } => {
                        let _ = reply.send(inner.fetch_checkpoint(user, epoch));
                    }
                    Request::Shutdown => return,
                }
            }
        });
        NetServer {
            tx,
            join: Some(join),
        }
    }

    /// A cloneable sender for client handles.
    pub(crate) fn sender(&self) -> Sender<Request> {
        self.tx.clone()
    }

    /// Stops the server thread and waits for it to exit.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Performs one remote operation (request/response round trip).
pub(crate) fn remote_op(
    tx: &Sender<Request>,
    user: UserId,
    op: &Op,
    round: u64,
) -> ServerResponse {
    let (reply_tx, reply_rx) = bounded(1);
    tx.send(Request::Op {
        user,
        op: op.clone(),
        round,
        reply: reply_tx,
    })
    .expect("server thread alive");
    reply_rx.recv().expect("server replies")
}
