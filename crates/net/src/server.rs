//! The threaded server: one thread owning a [`ServerApi`] implementation,
//! serving requests over crossbeam channels.
//!
//! Protocol I's blocking step is *physically* reproduced: in blocking mode
//! the server thread will not take the next operation until the previous
//! client's signature deposit has arrived — this is what experiment E6's
//! wall-clock throughput numbers measure. Under faults the block is bounded
//! by [`NetServerOptions::deposit_timeout`]: a lost or abandoned deposit is
//! counted in [`NetServer::missed_deposits`] and the server moves on instead
//! of deadlocking.
//!
//! Two batching levers close most of the verified-read gap against the
//! trusted baseline (see DESIGN.md §batching):
//!
//! * **Pipelined deposits** ([`NetServerOptions::pipeline_depth`]): a
//!   pipelined Protocol I request is served immediately, re-anchored at the
//!   client's own last deposited signature, instead of stalling on the
//!   previous client's deposit. The blocking wait survives only as a
//!   *catch-up* before any response whose signature must be current.
//! * **Batched snapshot publication**
//!   ([`NetServerOptions::publish_every_ops`]): the concurrent-read slot is
//!   republished every `W` writes or `T` elapsed, and always before the
//!   server goes idle, so staleness is bounded by `min(W ops, T)` under
//!   load and zero at idle.
//!
//! Protocol II windows travel as [`Request::OpBatch`] and are verified by
//! the client as one exchange over a shared [`tcvs_core::BatchResponse`].
//!
//! Every operation carries a per-user sequence number; the thread keeps the
//! last reply per user in a *reply journal* so a retried request (after a
//! dropped reply) is answered from the journal instead of re-executing —
//! exactly-once semantics over an at-least-once transport. The journal is
//! part of the server's durable state: it survives [`NetServer::crash_restart`]
//! along with whatever the inner [`ServerApi`] chooses to persist.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tcvs_core::{
    BatchResponse, Ctr, Digest, Epoch, Op, OpResult, PipelinedResponse, ReadSnapshot, ServerApi,
    ServerResponse, SignedCheckpoint, SignedEpochState, SignedState, UserId,
};
use tcvs_merkle::{ChunkSource, VerificationObject};
use tcvs_obs::{stage, Event, EventKind, SpanContext, NO_ACTOR};

use crate::error::{NetError, RetryPolicy};
use crate::obs::NetStats;

/// A request to the server thread.
pub(crate) enum Request {
    Op {
        user: UserId,
        /// Per-user sequence number; retries of the same operation reuse it.
        seq: u64,
        op: Op,
        round: u64,
        /// Wire-propagated trace context: the client's root span for this
        /// logical operation. Every event the server (or an interposed
        /// fault link) emits while handling the request is a child of it.
        ctx: Option<SpanContext>,
        reply: Sender<ServerResponse>,
    },
    /// A Protocol II window of operations verified as one exchange against
    /// one pre-state root. The server may decline (`None`) — e.g. the
    /// window mixes non-batchable structural ops, or the deployment does
    /// not implement batching — in which case the client falls back to
    /// per-operation execution with fresh sequence numbers.
    OpBatch {
        user: UserId,
        seq: u64,
        ops: Vec<Op>,
        round: u64,
        ctx: Option<SpanContext>,
        reply: Sender<Option<BatchResponse>>,
    },
    /// A Protocol I operation the client is willing to verify against its
    /// own last *deposited* signature (its frontier) instead of a
    /// signature over the immediately preceding state — letting the server
    /// skip the blocking deposit wait when the pipeline is shallow enough.
    OpPipelined {
        user: UserId,
        seq: u64,
        op: Op,
        round: u64,
        ctx: Option<SpanContext>,
        reply: Sender<PipelinedReply>,
    },
    Signature {
        user: UserId,
        signed: SignedState,
        /// Trace context of the operation this deposit settles.
        ctx: Option<SpanContext>,
    },
    EpochState(SignedEpochState),
    FetchEpochStates {
        user: UserId,
        epoch: Epoch,
        reply: Sender<Vec<SignedEpochState>>,
    },
    Checkpoint(SignedCheckpoint),
    FetchCheckpoint {
        user: UserId,
        epoch: Epoch,
        reply: Sender<Option<SignedCheckpoint>>,
    },
    /// Fetch the chunk manifest for the server's current snapshot: the
    /// serialized [`tcvs_merkle::ChunkManifest`] plus the counter the
    /// snapshot was current as of. `None` means the endpoint serves no
    /// bootstrap path (e.g. an adversary with no read snapshot).
    BootstrapManifest {
        reply: Sender<Option<(Vec<u8>, Ctr)>>,
    },
    /// Fetch one chunk of the snapshot identified by `anchor`. `None` means
    /// the server no longer holds that snapshot (the client refetches the
    /// manifest and resumes against the new anchor) or the index is out of
    /// range.
    BootstrapChunk {
        anchor: Digest,
        index: u32,
        reply: Sender<Option<Vec<u8>>>,
    },
    /// Crash the inner server and restart it from persisted state.
    Crash {
        ack: Sender<()>,
    },
    Shutdown,
}

/// Reply to a pipelined Protocol I request: the anchored fast-path shape
/// when the server could serve without waiting, or an ordinary blocking-path
/// response (signature current as of the reply) when it fell back.
#[derive(Clone)]
pub(crate) enum PipelinedReply {
    Pipelined(PipelinedResponse),
    Legacy(ServerResponse),
}

/// A read-only request for the concurrent snapshot read path. Carries no
/// user identity or sequence number: reads from a published snapshot are
/// idempotent, so retries need no journal.
pub(crate) struct ReadRequest {
    pub(crate) op: Op,
    /// Wire-propagated trace context for the reader's logical operation.
    pub(crate) ctx: Option<SpanContext>,
    pub(crate) reply: Sender<ReadResponse>,
}

/// Reply from the snapshot read path: the answer, its proof, and the
/// snapshot root/counter the proof is against.
pub(crate) struct ReadResponse {
    pub(crate) result: OpResult,
    pub(crate) vo: VerificationObject,
    /// Root digest of the snapshot the server claims this answer reflects.
    pub(crate) root: Digest,
    /// Counter the snapshot was current as of.
    pub(crate) ctr: Ctr,
}

pub(crate) mod sealed {
    pub trait Sealed {}
}

/// An opaque handle onto a server thread's request channel. Only this
/// crate can look inside; clients obtain one through [`Endpoint`].
pub struct WireHandle(pub(crate) Sender<Request>);

/// An opaque handle onto a server's concurrent read path (if it has one).
/// Only this crate can look inside. It carries two ways in: the published
/// snapshot slot itself (proof-free reads executed on the caller's thread —
/// the shared-memory fast path the trusted baseline uses) and the channel
/// into the server's reader pool (proof-bearing reads for verifying
/// clients).
pub struct ReadWireHandle {
    pub(crate) slot: SnapshotSlot,
    pub(crate) tx: Sender<ReadRequest>,
}

/// Something clients can bind to: a [`NetServer`] directly, or a
/// [`crate::FaultLink`] interposed in front of one.
///
/// The trait is sealed — only this crate's types implement it — because its
/// wire format (the request channel) is an internal detail.
pub trait Endpoint: sealed::Sealed {
    /// The wire into this endpoint (crate-internal).
    #[doc(hidden)]
    fn wire(&self) -> WireHandle;

    /// The concurrent read wire, if this endpoint exposes one. The default
    /// is `None`: a [`crate::FaultLink`] deliberately inherits it, so faults
    /// exercise the serialized, detection-bearing path — the read path is a
    /// scalability side channel only honest deployments opt into.
    #[doc(hidden)]
    fn read_wire(&self) -> Option<ReadWireHandle> {
        None
    }
}

/// Tuning knobs for a server thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetServerOptions {
    /// Reproduce Protocol I's blocking signature deposit: after each
    /// operation the server waits for that client's deposit before serving
    /// the next request.
    pub blocking_signatures: bool,
    /// How long a blocking wait may last before the server gives up on the
    /// deposit, records a miss, and moves on. Bounds the Protocol I deadlock
    /// when a client dies (or its deposit is lost) mid-exchange.
    pub deposit_timeout: Duration,
    /// Number of reader threads serving point/range queries concurrently
    /// from the latest published snapshot (only spawned when the inner
    /// server opts in via [`ServerApi::read_snapshot`]). Clamped to ≥ 1.
    pub read_pool: usize,
    /// Maximum number of operations the server may run ahead of a user's
    /// last deposited signature before a pipelined request falls back to
    /// the blocking path. `0` (the default) disables pipelining entirely:
    /// pipelined requests are served exactly like blocking ones.
    ///
    /// With depth `d > 0` the server answers pipelined operations without
    /// waiting for the preceding deposit; the reply re-anchors the client
    /// at its own frontier, so detection stays k-bounded (the deposit lag
    /// adds at most `d` undetected operations on top of Theorem 4.1's
    /// bound — see DESIGN.md).
    pub pipeline_depth: usize,
    /// Republish the concurrent-read snapshot every this many committed
    /// operations (write batching of the slot swap). `1` (the default)
    /// preserves strict read-your-writes across the two paths; `W > 1`
    /// relaxes it to bounded staleness: a reader may miss at most the last
    /// `W - 1` acknowledged writes, and never misses any once the server
    /// goes idle or [`NetServerOptions::publish_interval`] elapses.
    pub publish_every_ops: u64,
    /// Time bound on snapshot staleness under a sustained write load:
    /// whenever this much time has passed since the last publication, the
    /// next committed operation republishes regardless of the write count.
    /// (Checked at operation boundaries — an idle server publishes any
    /// pending writes before blocking on its queue, so idle staleness is
    /// zero.)
    pub publish_interval: Duration,
    /// Byte budget per bootstrap chunk (whole leaves are grouped under it;
    /// a single oversized leaf still ships as one chunk). Governs the
    /// chunk-count / per-chunk-size trade-off the `bootstrap` bench suite
    /// sweeps.
    pub bootstrap_chunk_bytes: usize,
}

impl Default for NetServerOptions {
    fn default() -> NetServerOptions {
        NetServerOptions {
            blocking_signatures: false,
            deposit_timeout: Duration::from_secs(2),
            read_pool: 2,
            pipeline_depth: 0,
            publish_every_ops: 1,
            publish_interval: Duration::from_millis(1),
            bootstrap_chunk_bytes: 64 * 1024,
        }
    }
}

/// The slot the write thread publishes fresh snapshots into and readers
/// load from. Swapping the inner `Arc` is O(1) and never torn: a reader
/// either sees the tree before an update or after it, never a mix.
pub(crate) type SnapshotSlot = Arc<Mutex<Arc<ReadSnapshot>>>;

/// What the journal remembers about a served request: the reply in the
/// shape it went out. Retries are answered in a compatible shape — a plain
/// retry of a pipelined op gets the embedded plain response, a pipelined
/// retry of a plain op (or of a durable server's recovered reply) gets it
/// wrapped as a legacy reply. Batch replies only answer batch retries.
#[derive(Clone)]
enum JournaledReply {
    Op(ServerResponse),
    Batch(BatchResponse),
    Pipelined(PipelinedReply),
}

/// The per-user reply journal: last `(seq, reply)` served to each user.
type ReplyJournal = HashMap<UserId, (u64, JournaledReply)>;

/// Write-batched publication of the concurrent-read snapshot. With the
/// default `publish_every_ops = 1` every committed operation republishes
/// before its reply is sent (strict read-your-writes, the pre-batching
/// behavior); with a wider window the slot swap and its lock traffic are
/// amortized over `W` writes, bounded in staleness by the window and by
/// `publish_interval`, and flushed whenever the server is about to go idle.
struct SnapshotPublisher {
    slot: Option<SnapshotSlot>,
    every_ops: u64,
    interval: Duration,
    /// Committed operations not yet reflected in the published snapshot.
    pending: u64,
    last: Instant,
    stats: NetStats,
}

impl SnapshotPublisher {
    fn new(slot: Option<SnapshotSlot>, opts: &NetServerOptions, stats: NetStats) -> Self {
        SnapshotPublisher {
            slot,
            every_ops: opts.publish_every_ops.max(1),
            interval: opts.publish_interval,
            pending: 0,
            last: Instant::now(),
            stats,
        }
    }

    /// Accounts `ops` freshly committed operations and republishes if the
    /// write window is full or the time bound has elapsed.
    fn record(&mut self, inner: &mut dyn ServerApi, ops: u64) {
        if self.slot.is_none() {
            return;
        }
        self.pending += ops;
        if self.pending >= self.every_ops || self.last.elapsed() >= self.interval {
            self.force(inner);
        }
    }

    /// Republishes if any committed operation is still unpublished. Called
    /// before the server blocks idle on its queue, so snapshot staleness is
    /// bounded by the window only *while the server is busy*.
    fn flush(&mut self, inner: &mut dyn ServerApi) {
        if self.pending > 0 {
            self.force(inner);
        }
    }

    /// Unconditional republication (crash recovery must make the restored
    /// state visible even when nothing is pending).
    fn force(&mut self, inner: &mut dyn ServerApi) {
        let Some(slot) = &self.slot else { return };
        if let Some(snap) = inner.read_snapshot() {
            *slot.lock() = Arc::new(snap);
            self.stats.snapshot_publishes.inc();
            self.stats.snapshot_lag_ops.observe(self.pending);
            self.pending = 0;
            self.last = Instant::now();
        }
    }
}

/// Handle to a running server thread.
pub struct NetServer {
    tx: Sender<Request>,
    read: Option<(SnapshotSlot, Sender<ReadRequest>)>,
    join: Option<JoinHandle<()>>,
    missed: Arc<AtomicU64>,
}

impl sealed::Sealed for NetServer {}

impl Endpoint for NetServer {
    fn wire(&self) -> WireHandle {
        WireHandle(self.tx.clone())
    }

    fn read_wire(&self) -> Option<ReadWireHandle> {
        self.read.as_ref().map(|(slot, tx)| ReadWireHandle {
            slot: Arc::clone(slot),
            tx: tx.clone(),
        })
    }
}

impl NetServer {
    /// Spawns the server thread over any (honest or adversarial) server
    /// implementation. `blocking_signatures` reproduces Protocol I's extra
    /// blocking message; see [`NetServer::spawn_with`] for the full knobs.
    pub fn spawn(inner: Box<dyn ServerApi + Send>, blocking_signatures: bool) -> NetServer {
        NetServer::spawn_with(
            inner,
            NetServerOptions {
                blocking_signatures,
                ..NetServerOptions::default()
            },
        )
    }

    /// Spawns the server thread with explicit [`NetServerOptions`].
    pub fn spawn_with(inner: Box<dyn ServerApi + Send>, opts: NetServerOptions) -> NetServer {
        NetServer::spawn_observed(inner, opts, NetStats::disabled())
    }

    /// Spawns the server thread with metric/event instrumentation feeding
    /// `stats`. Timestamps are taken and metrics recorded strictly outside
    /// the snapshot-slot critical section, so attaching stats does not
    /// lengthen the serialized region the concurrent readers contend on.
    pub fn spawn_observed(
        mut inner: Box<dyn ServerApi + Send>,
        opts: NetServerOptions,
        stats: NetStats,
    ) -> NetServer {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
        let missed = Arc::new(AtomicU64::new(0));
        let missed_in = Arc::clone(&missed);
        // Probe for a read path before `inner` moves into the write thread.
        // Adversaries keep the default `None` and never get reader threads:
        // every answer they give stays on the serialized, countered path.
        let read = inner.read_snapshot().map(|snap| {
            let slot: SnapshotSlot = Arc::new(Mutex::new(Arc::new(snap)));
            let (read_tx, read_rx) = unbounded::<ReadRequest>();
            spawn_readers(&slot, read_rx, opts.read_pool.max(1), stats.clone());
            (slot, read_tx)
        });
        let slot = read.as_ref().map(|(slot, _)| Arc::clone(slot));
        let join = std::thread::spawn(move || {
            // Requests that arrived while the server was blocked waiting for
            // a Protocol I signature deposit; replayed in arrival order.
            let mut backlog: VecDeque<Request> = VecDeque::new();
            let mut journal = ReplyJournal::new();
            let mut publisher = SnapshotPublisher::new(slot, &opts, stats.clone());
            // Lazily-built chunk source for the bootstrap path, keyed by the
            // snapshot anchor it was sliced from. Kept across crash/restart:
            // serving a consistent *stale* snapshot is exactly what lets a
            // client resume an interrupted bootstrap.
            let mut bootstrap: BootstrapCache = None;
            // A durable inner server may already hold recovered replies from
            // a previous process; a retry arriving over the wire must hit
            // them, not re-execute.
            seed_journal(inner.as_ref(), &mut journal);
            loop {
                let req = match backlog.pop_front() {
                    Some(r) => r,
                    None => match rx.try_recv() {
                        Ok(r) => r,
                        Err(crossbeam::channel::TryRecvError::Empty) => {
                            // About to block idle: make every acknowledged
                            // write visible to readers first, so batched
                            // publication never leaves a stale snapshot
                            // standing while nothing else is happening.
                            publisher.flush(inner.as_mut());
                            match rx.recv() {
                                Ok(r) => r,
                                Err(_) => return,
                            }
                        }
                        Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                    },
                };
                // A retry of an already-executed operation: serve the
                // journaled reply, never re-execute (and never re-enter the
                // blocking wait — the first delivery already did).
                let req = match serve_from_journal(&journal, &stats, req) {
                    Some(r) => r,
                    None => continue,
                };
                match req {
                    Request::Op {
                        user,
                        seq,
                        op,
                        round,
                        ctx,
                        reply,
                    } => {
                        // In pipelined mode the deposit wait moves *before*
                        // the operation: drain the outstanding deposits so
                        // the signature attached to this plain (blocking-
                        // path) response is current, instead of stalling
                        // after it.
                        if opts.pipeline_depth > 0
                            && !catch_up(
                                inner.as_mut(),
                                &rx,
                                &mut backlog,
                                &mut journal,
                                opts.deposit_timeout,
                                &missed_in,
                                &mut publisher,
                                &stats,
                            )
                        {
                            drain(
                                inner.as_mut(),
                                &rx,
                                backlog,
                                &mut journal,
                                &mut publisher,
                                &stats,
                            );
                            return;
                        }
                        // The op timestamp opens before the serialized region
                        // and closes after it; the histogram/tracer updates
                        // happen strictly after the publisher released the
                        // slot lock (and after the reply is on its way).
                        let started = Instant::now();
                        // The sequence number rides down to the inner server
                        // so a durable backend can log it and recover its own
                        // copy of the reply journal.
                        let resp = inner.handle_op_seq(user, seq, &op, round);
                        journal_insert(
                            &mut journal,
                            &stats,
                            user,
                            seq,
                            JournaledReply::Op(resp.clone()),
                        );
                        // Publish before replying: a client that sees its
                        // write acknowledged must find it in the snapshot
                        // (read-your-writes across the two paths, relaxed to
                        // a bounded window when `publish_every_ops > 1`).
                        publisher.record(inner.as_mut(), 1);
                        let ctr = resp.ctr;
                        // The reply channel may be dropped if the client
                        // detected deviation and bailed; that's fine.
                        let _ = reply.send(resp);
                        stats.ops_served.inc();
                        stats
                            .op_micros
                            .observe(started.elapsed().as_micros() as u64);
                        stats.tracer.emit(|| {
                            Event::new(ctr, EventKind::OpServed, user)
                                .detail(format!("seq={seq} round={round}"))
                                .span_opt(ctx.map(|c| c.child(stage::SERVER)))
                        });
                        if opts.blocking_signatures
                            && opts.pipeline_depth == 0
                            && !blocking_wait(
                                inner.as_mut(),
                                &rx,
                                &mut backlog,
                                &mut journal,
                                user,
                                opts.deposit_timeout,
                                &missed_in,
                                &mut publisher,
                                &stats,
                            )
                        {
                            drain(
                                inner.as_mut(),
                                &rx,
                                backlog,
                                &mut journal,
                                &mut publisher,
                                &stats,
                            );
                            return;
                        }
                    }
                    Request::OpBatch {
                        user,
                        seq,
                        ops,
                        round,
                        ctx,
                        reply,
                    } => {
                        let started = Instant::now();
                        match inner.handle_op_batch(user, seq, &ops, round) {
                            Some(resp) => {
                                journal_insert(
                                    &mut journal,
                                    &stats,
                                    user,
                                    seq,
                                    JournaledReply::Batch(resp.clone()),
                                );
                                let n = resp.window_len() as u64;
                                publisher.record(inner.as_mut(), n);
                                let ctr = resp.ctr;
                                let _ = reply.send(Some(resp));
                                stats.batch_windows.inc();
                                stats.batch_ops.add(n);
                                stats.ops_served.add(n);
                                stats
                                    .op_micros
                                    .observe(started.elapsed().as_micros() as u64);
                                stats.tracer.emit(|| {
                                    Event::new(ctr, EventKind::OpServed, user)
                                        .detail(format!("seq={seq} round={round} batch={n}"))
                                        .span_opt(ctx.map(|c| c.child(stage::SERVER)))
                                });
                            }
                            // Declined: side-effect free by contract, so not
                            // journaled — a retry may legitimately decline
                            // again or (after a crash-restart) succeed.
                            None => {
                                stats.batch_declined.inc();
                                let _ = reply.send(None);
                            }
                        }
                        // No blocking wait: batch windows are a Protocol II
                        // path, deposits are asynchronous state tokens.
                    }
                    Request::OpPipelined {
                        user,
                        seq,
                        op,
                        round,
                        ctx,
                        reply,
                    } => {
                        let started = Instant::now();
                        let pipelined = if opts.pipeline_depth > 0 {
                            inner.handle_op_pipelined(user, seq, &op, round, opts.pipeline_depth)
                        } else {
                            None
                        };
                        if let Some(presp) = pipelined {
                            journal_insert(
                                &mut journal,
                                &stats,
                                user,
                                seq,
                                JournaledReply::Pipelined(PipelinedReply::Pipelined(presp.clone())),
                            );
                            publisher.record(inner.as_mut(), 1);
                            let ctr = presp.resp.ctr;
                            let lag = presp.backfill.len() as u64;
                            let _ = reply.send(PipelinedReply::Pipelined(presp));
                            stats.pipelined_served.inc();
                            stats.pipeline_backfill.observe(lag);
                            stats.ops_served.inc();
                            stats
                                .op_micros
                                .observe(started.elapsed().as_micros() as u64);
                            stats.tracer.emit(|| {
                                Event::new(ctr, EventKind::OpServed, user)
                                    .detail(format!("seq={seq} round={round} backfill={lag}"))
                                    .span_opt(ctx.map(|c| c.child(stage::SERVER)))
                            });
                        } else {
                            // Fallback to the blocking path: catch up on the
                            // outstanding deposits first so the attached
                            // signature is current, then serve and (in
                            // blocking deployments with pipelining off) wait
                            // for this op's deposit as usual.
                            if opts.pipeline_depth > 0 {
                                stats.pipeline_fallbacks.inc();
                                if !catch_up(
                                    inner.as_mut(),
                                    &rx,
                                    &mut backlog,
                                    &mut journal,
                                    opts.deposit_timeout,
                                    &missed_in,
                                    &mut publisher,
                                    &stats,
                                ) {
                                    drain(
                                        inner.as_mut(),
                                        &rx,
                                        backlog,
                                        &mut journal,
                                        &mut publisher,
                                        &stats,
                                    );
                                    return;
                                }
                            }
                            let resp = inner.handle_op_seq(user, seq, &op, round);
                            journal_insert(
                                &mut journal,
                                &stats,
                                user,
                                seq,
                                JournaledReply::Pipelined(PipelinedReply::Legacy(resp.clone())),
                            );
                            publisher.record(inner.as_mut(), 1);
                            let ctr = resp.ctr;
                            let _ = reply.send(PipelinedReply::Legacy(resp));
                            stats.ops_served.inc();
                            stats
                                .op_micros
                                .observe(started.elapsed().as_micros() as u64);
                            stats.tracer.emit(|| {
                                Event::new(ctr, EventKind::OpServed, user)
                                    .detail(format!("seq={seq} round={round} fallback"))
                                    .span_opt(ctx.map(|c| c.child(stage::SERVER)))
                            });
                            if opts.blocking_signatures
                                && opts.pipeline_depth == 0
                                && !blocking_wait(
                                    inner.as_mut(),
                                    &rx,
                                    &mut backlog,
                                    &mut journal,
                                    user,
                                    opts.deposit_timeout,
                                    &missed_in,
                                    &mut publisher,
                                    &stats,
                                )
                            {
                                drain(
                                    inner.as_mut(),
                                    &rx,
                                    backlog,
                                    &mut journal,
                                    &mut publisher,
                                    &stats,
                                );
                                return;
                            }
                        }
                    }
                    Request::Signature { user, signed, ctx } => {
                        let ctr = signed.ctr;
                        inner.deposit_signature(user, signed);
                        stats.tracer.emit(|| {
                            Event::new(ctr, EventKind::Deposit, user)
                                .span_opt(ctx.map(|c| c.child(stage::DEPOSIT)))
                        });
                    }
                    Request::EpochState(s) => inner.deposit_epoch_state(s),
                    Request::FetchEpochStates { user, epoch, reply } => {
                        let _ = reply.send(inner.fetch_epoch_states(user, epoch));
                    }
                    Request::Checkpoint(c) => inner.deposit_checkpoint(c),
                    Request::FetchCheckpoint { user, epoch, reply } => {
                        let _ = reply.send(inner.fetch_checkpoint(user, epoch));
                    }
                    Request::BootstrapManifest { reply } => {
                        // Publish pending writes first so the manifest
                        // reflects every acknowledged operation.
                        publisher.flush(inner.as_mut());
                        let _ = reply.send(serve_bootstrap_manifest(
                            inner.as_mut(),
                            &mut bootstrap,
                            opts.bootstrap_chunk_bytes,
                        ));
                    }
                    Request::BootstrapChunk {
                        anchor,
                        index,
                        reply,
                    } => {
                        let _ = reply.send(serve_bootstrap_chunk(
                            inner.as_mut(),
                            &mut bootstrap,
                            opts.bootstrap_chunk_bytes,
                            &anchor,
                            index,
                        ));
                    }
                    Request::Crash { ack } => {
                        stats.crashes.inc();
                        stats
                            .tracer
                            .emit(|| Event::new(0, EventKind::Crash, NO_ACTOR));
                        // The reply journal is durable transport state: a
                        // durable inner server recovers its own copy, which
                        // replaces ours; otherwise the in-memory journal
                        // survives alongside whatever the inner server keeps.
                        inner.crash_restart();
                        seed_journal(inner.as_ref(), &mut journal);
                        // Readers must see the restored state, not a
                        // pre-crash root the restarted server no longer has.
                        publisher.force(inner.as_mut());
                        let _ = ack.send(());
                        stats
                            .tracer
                            .emit(|| Event::new(0, EventKind::Restart, NO_ACTOR));
                    }
                    Request::Shutdown => {
                        drain(
                            inner.as_mut(),
                            &rx,
                            backlog,
                            &mut journal,
                            &mut publisher,
                            &stats,
                        );
                        return;
                    }
                }
            }
        });
        NetServer {
            tx,
            read,
            join: Some(join),
            missed,
        }
    }

    /// Signature deposits the blocking server gave up waiting for (always 0
    /// in non-blocking mode or on a fault-free network).
    pub fn missed_deposits(&self) -> u64 {
        self.missed.load(Ordering::Relaxed)
    }

    /// Crashes the inner server and restarts it from its persisted state,
    /// synchronously: when this returns `Ok`, the restart has completed.
    pub fn crash_restart(&self) -> Result<(), NetError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Request::Crash { ack: ack_tx })
            .map_err(|_| NetError::ServerGone)?;
        ack_rx.recv().map_err(|_| NetError::ServerGone)
    }

    /// Stops the server thread gracefully: backlogged and queued requests
    /// are served (from the journal or by execution), then the thread exits.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawns the reader pool: detached threads pulling read requests off a
/// shared queue and answering them from the latest published snapshot.
/// They exit when every read-wire sender is gone.
fn spawn_readers(
    slot: &SnapshotSlot,
    read_rx: Receiver<ReadRequest>,
    pool: usize,
    stats: NetStats,
) {
    let read_rx = Arc::new(Mutex::new(read_rx));
    for _ in 0..pool {
        let slot = Arc::clone(slot);
        let read_rx = Arc::clone(&read_rx);
        let stats = stats.clone();
        std::thread::spawn(move || loop {
            // Hold the queue lock only to dequeue; serving (prune + replay)
            // happens outside it, so readers overlap on multi-core hosts.
            let dequeued = {
                let guard = read_rx.lock();
                guard.recv()
            };
            let req = match dequeued {
                Ok(r) => r,
                Err(_) => return,
            };
            // The timestamp opens *after* the slot lock has been taken and
            // released (the clone is one refcount bump under the guard);
            // nothing below touches the slot again, so instrumentation adds
            // zero time to the critical section writers contend on.
            let snap = Arc::clone(&slot.lock());
            let started = Instant::now();
            match snap.serve(&req.op) {
                Some((result, vo)) => {
                    let ctr = snap.ctr();
                    let _ = req.reply.send(ReadResponse {
                        result,
                        vo,
                        root: snap.root_digest(),
                        ctr,
                    });
                    stats.reads_served.inc();
                    stats
                        .read_micros
                        .observe(started.elapsed().as_micros() as u64);
                    stats.tracer.emit(|| {
                        Event::new(ctr, EventKind::ReadServed, NO_ACTOR)
                            .span_opt(req.ctx.map(|c| c.child(stage::READ)))
                    });
                }
                // An update on the read wire is a client bug; dropping the
                // reply sender disconnects the waiter rather than serving a
                // state transition outside the serialized path.
                None => drop(req.reply),
            }
        });
    }
}

/// Answers `req` from the reply journal when its `(user, seq)` matches the
/// journaled entry and the reply shapes are compatible, emitting the
/// journal-hit event. Returns the request back when it must be executed.
///
/// Shape conversions: a plain retry of a pipelined reply gets the embedded
/// plain response; a pipelined retry of a plain journaled reply (the only
/// shape a durable server recovers) gets it wrapped as `Legacy`. A batch
/// reply answers only a batch retry with the same `(user, seq)` — any other
/// pairing falls through to execution, where the per-user sequence check in
/// the inner server still guards against double execution.
fn serve_from_journal(journal: &ReplyJournal, stats: &NetStats, req: Request) -> Option<Request> {
    let (user, seq) = match &req {
        Request::Op { user, seq, .. }
        | Request::OpBatch { user, seq, .. }
        | Request::OpPipelined { user, seq, .. } => (*user, *seq),
        _ => return Some(req),
    };
    let entry = match journal.get(&user) {
        Some((s, entry)) if *s == seq => entry,
        _ => return Some(req),
    };
    let compatible = matches!(
        (&req, entry),
        (
            Request::Op { .. } | Request::OpPipelined { .. },
            JournaledReply::Op(_) | JournaledReply::Pipelined(_)
        ) | (Request::OpBatch { .. }, JournaledReply::Batch(_))
    );
    if !compatible {
        return Some(req);
    }
    stats.journal_hits.inc();
    match req {
        Request::Op { ctx, reply, .. } => {
            let resp = match entry {
                JournaledReply::Op(r) => r.clone(),
                JournaledReply::Pipelined(PipelinedReply::Legacy(r)) => r.clone(),
                JournaledReply::Pipelined(PipelinedReply::Pipelined(p)) => p.resp.clone(),
                JournaledReply::Batch(_) => unreachable!("shape checked above"),
            };
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::JournalHit, user)
                    .span_opt(ctx.map(|c| c.child(stage::JOURNAL)))
            });
            let _ = reply.send(resp);
        }
        Request::OpPipelined { ctx, reply, .. } => {
            let resp = match entry {
                JournaledReply::Op(r) => PipelinedReply::Legacy(r.clone()),
                JournaledReply::Pipelined(p) => p.clone(),
                JournaledReply::Batch(_) => unreachable!("shape checked above"),
            };
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::JournalHit, user)
                    .span_opt(ctx.map(|c| c.child(stage::JOURNAL)))
            });
            let _ = reply.send(resp);
        }
        Request::OpBatch { ctx, reply, .. } => {
            let resp = match entry {
                JournaledReply::Batch(b) => b.clone(),
                _ => unreachable!("shape checked above"),
            };
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::JournalHit, user)
                    .span_opt(ctx.map(|c| c.child(stage::JOURNAL)))
            });
            let _ = reply.send(Some(resp));
        }
        _ => unreachable!("only op-shaped requests reach here"),
    }
    None
}

/// Installs `user`'s newest reply, evicting the entry below the freshly
/// acknowledged watermark. A new sequence number from a user is an implicit
/// ack of every older one (the client retries strictly in order), so the
/// journal stays bounded at one entry per user; each displaced entry is
/// counted so deployments can see the eviction rate.
fn journal_insert(
    journal: &mut ReplyJournal,
    stats: &NetStats,
    user: UserId,
    seq: u64,
    resp: JournaledReply,
) {
    if let Some((old_seq, _)) = journal.insert(user, (seq, resp)) {
        if old_seq < seq {
            stats.journal_evictions.inc();
        }
    }
}

/// Re-seeds the transport journal from whatever the inner server recovered
/// durably, so a retry of a pre-crash operation is still answered from the
/// journal instead of re-executing. An inner server with no durable journal
/// (`None`) keeps the transport thread's in-memory journal as before.
/// The server thread's cached chunk source: the slicing of one snapshot,
/// with the counter that snapshot was current as of.
type BootstrapCache = Option<(ChunkSource, Ctr)>;

/// Serves the bootstrap manifest for the server's *current* snapshot,
/// (re)slicing when the snapshot has moved since the cache was built.
/// `None` when the inner server exposes no read snapshot (adversaries) or
/// its snapshot cannot be sliced.
fn serve_bootstrap_manifest(
    inner: &mut dyn ServerApi,
    cache: &mut BootstrapCache,
    budget: usize,
) -> Option<(Vec<u8>, Ctr)> {
    let snap = inner.read_snapshot()?;
    let stale = cache
        .as_ref()
        .is_none_or(|(src, _)| src.manifest().anchor != snap.root_digest());
    if stale {
        let src = ChunkSource::new(snap.db(), budget).ok()?;
        *cache = Some((src, snap.ctr()));
    }
    cache
        .as_ref()
        .map(|(src, ctr)| (src.manifest().to_bytes(), *ctr))
}

/// Serves one chunk of the snapshot identified by `anchor`. The cached
/// slicing answers requests for *its* snapshot even after the live tree has
/// moved on (that is what makes an in-flight bootstrap resumable); a request
/// for any other anchor is answered only if the current snapshot matches,
/// otherwise declined so the client refetches the manifest.
fn serve_bootstrap_chunk(
    inner: &mut dyn ServerApi,
    cache: &mut BootstrapCache,
    budget: usize,
    anchor: &Digest,
    index: u32,
) -> Option<Vec<u8>> {
    let cached = cache
        .as_ref()
        .is_some_and(|(src, _)| src.manifest().anchor == *anchor);
    if !cached {
        let snap = inner.read_snapshot()?;
        if snap.root_digest() != *anchor {
            return None;
        }
        let src = ChunkSource::new(snap.db(), budget).ok()?;
        *cache = Some((src, snap.ctr()));
    }
    cache.as_ref().and_then(|(src, _)| src.chunk(index))
}

fn seed_journal(inner: &dyn ServerApi, journal: &mut ReplyJournal) {
    if let Some(entries) = inner.recovered_journal() {
        journal.clear();
        for (user, seq, resp) in entries {
            journal.insert(user, (seq, JournaledReply::Op(resp)));
        }
    }
}

/// Pipelined mode's replacement for the post-op blocking wait: before the
/// server serves any response whose signature must be *current* (a plain
/// blocking-path op, or a pipelined fallback), drain the in-flight deposits
/// until none is outstanding. Each wait leg is bounded by `deposit_timeout`;
/// on timeout the remaining lag is recorded as missed deposits and the
/// server proceeds — the stale signature then surfaces at the client exactly
/// as a blocking-mode miss would. Returns `false` iff the server must shut
/// down.
#[allow(clippy::too_many_arguments)]
fn catch_up(
    inner: &mut dyn ServerApi,
    rx: &Receiver<Request>,
    backlog: &mut VecDeque<Request>,
    journal: &mut ReplyJournal,
    deposit_timeout: Duration,
    missed: &AtomicU64,
    publisher: &mut SnapshotPublisher,
    stats: &NetStats,
) -> bool {
    loop {
        let lag = inner.deposit_lag();
        if lag == 0 {
            return true;
        }
        match rx.recv_timeout(deposit_timeout) {
            Ok(Request::Signature { user, signed, ctx }) => {
                let ctr = signed.ctr;
                inner.deposit_signature(user, signed);
                stats.tracer.emit(|| {
                    Event::new(ctr, EventKind::Deposit, user)
                        .span_opt(ctx.map(|c| c.child(stage::DEPOSIT)))
                });
            }
            Ok(Request::Crash { ack }) => {
                // The crash abandons the whole pipeline (the restarted
                // server re-arms on the next deposit); absorb it here so the
                // caller's op runs against the restored state.
                stats.crashes.inc();
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::Crash, NO_ACTOR));
                inner.crash_restart();
                seed_journal(inner, journal);
                publisher.force(inner);
                let _ = ack.send(());
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::Restart, NO_ACTOR));
            }
            Ok(Request::Shutdown) => return false,
            Ok(other) => {
                // Retries of already-served ops are answered in place (their
                // clients may be the very ones whose deposits we are waiting
                // on); everything else queues behind the catch-up.
                if let Some(r) = serve_from_journal(journal, stats, other) {
                    backlog.push_back(r);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return false,
            Err(RecvTimeoutError::Timeout) => {
                // The outstanding deposits are lost or their clients died;
                // count every missing one and move on rather than deadlock.
                missed.fetch_add(lag, Ordering::Relaxed);
                stats.missed_deposits.add(lag);
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::MissedDeposit, NO_ACTOR).detail("timeout"));
                return true;
            }
        }
    }
}

/// Protocol I: wait (bounded) for `user`'s signature deposit before serving
/// the next operation. Other users' requests queue up behind the block —
/// that latency is the measured cost. Returns `false` iff the server must
/// shut down.
#[allow(clippy::too_many_arguments)]
fn blocking_wait(
    inner: &mut dyn ServerApi,
    rx: &Receiver<Request>,
    backlog: &mut VecDeque<Request>,
    journal: &mut ReplyJournal,
    user: UserId,
    deposit_timeout: Duration,
    missed: &AtomicU64,
    publisher: &mut SnapshotPublisher,
    stats: &NetStats,
) -> bool {
    loop {
        match rx.recv_timeout(deposit_timeout) {
            Ok(Request::Signature {
                user: su,
                signed,
                ctx,
            }) if su == user => {
                let ctr = signed.ctr;
                inner.deposit_signature(su, signed);
                stats.tracer.emit(|| {
                    Event::new(ctr, EventKind::Deposit, su)
                        .span_opt(ctx.map(|c| c.child(stage::DEPOSIT)))
                });
                return true;
            }
            Ok(Request::Crash { ack }) => {
                // A crash wipes the pending wait: the deposit (if it ever
                // arrives) will be absorbed by the main loop.
                stats.crashes.inc();
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::Crash, NO_ACTOR));
                inner.crash_restart();
                seed_journal(inner, journal);
                publisher.force(inner);
                let _ = ack.send(());
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::Restart, NO_ACTOR));
                missed.fetch_add(1, Ordering::Relaxed);
                stats.missed_deposits.inc();
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::MissedDeposit, user).detail("crash"));
                return true;
            }
            Ok(Request::Shutdown) => return false,
            Err(RecvTimeoutError::Disconnected) => return false,
            Ok(other) => {
                // A retry of an already-served op (notably the blocked
                // user's own, whose deposit is still owed for this very
                // operation) is answered from the journal while staying
                // blocked; everything else queues behind the block.
                if let Some(r) = serve_from_journal(journal, stats, other) {
                    backlog.push_back(r);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // The deposit is lost or its client died; record the miss
                // and unblock rather than deadlock the whole deployment.
                missed.fetch_add(1, Ordering::Relaxed);
                stats.missed_deposits.inc();
                stats
                    .tracer
                    .emit(|| Event::new(0, EventKind::MissedDeposit, user).detail("timeout"));
                return true;
            }
        }
    }
}

/// Graceful-shutdown drain: serve every backlogged and already-queued
/// request without any further blocking waits, then let the thread exit.
fn drain(
    inner: &mut dyn ServerApi,
    rx: &Receiver<Request>,
    backlog: VecDeque<Request>,
    journal: &mut ReplyJournal,
    publisher: &mut SnapshotPublisher,
    stats: &NetStats,
) {
    let queued = std::iter::from_fn(|| rx.try_recv().ok());
    for req in backlog.into_iter().chain(queued) {
        let req = match serve_from_journal(journal, stats, req) {
            Some(r) => r,
            None => continue,
        };
        match req {
            Request::Op {
                user,
                seq,
                op,
                round,
                ctx: _,
                reply,
            } => {
                let r = inner.handle_op_seq(user, seq, &op, round);
                journal_insert(journal, stats, user, seq, JournaledReply::Op(r.clone()));
                publisher.record(inner, 1);
                let _ = reply.send(r);
            }
            Request::OpBatch {
                user,
                seq,
                ops,
                round,
                ctx: _,
                reply,
            } => match inner.handle_op_batch(user, seq, &ops, round) {
                Some(resp) => {
                    journal_insert(
                        journal,
                        stats,
                        user,
                        seq,
                        JournaledReply::Batch(resp.clone()),
                    );
                    publisher.record(inner, resp.window_len() as u64);
                    let _ = reply.send(Some(resp));
                }
                None => {
                    let _ = reply.send(None);
                }
            },
            // Shutdown drains serve the blocking-path shape without waits
            // (same semantics as plain ops during a drain).
            Request::OpPipelined {
                user,
                seq,
                op,
                round,
                ctx: _,
                reply,
            } => {
                let r = inner.handle_op_seq(user, seq, &op, round);
                journal_insert(
                    journal,
                    stats,
                    user,
                    seq,
                    JournaledReply::Pipelined(PipelinedReply::Legacy(r.clone())),
                );
                publisher.record(inner, 1);
                let _ = reply.send(PipelinedReply::Legacy(r));
            }
            Request::Signature {
                user,
                signed,
                ctx: _,
            } => inner.deposit_signature(user, signed),
            Request::EpochState(s) => inner.deposit_epoch_state(s),
            Request::FetchEpochStates { user, epoch, reply } => {
                let _ = reply.send(inner.fetch_epoch_states(user, epoch));
            }
            Request::Checkpoint(c) => inner.deposit_checkpoint(c),
            Request::FetchCheckpoint { user, epoch, reply } => {
                let _ = reply.send(inner.fetch_checkpoint(user, epoch));
            }
            // Best-effort during a drain: served from the current snapshot
            // with a throwaway cache (the thread is about to exit anyway).
            Request::BootstrapManifest { reply } => {
                let mut cache: BootstrapCache = None;
                let _ = reply.send(serve_bootstrap_manifest(inner, &mut cache, 64 * 1024));
            }
            Request::BootstrapChunk {
                anchor,
                index,
                reply,
            } => {
                let mut cache: BootstrapCache = None;
                let _ = reply.send(serve_bootstrap_chunk(
                    inner,
                    &mut cache,
                    64 * 1024,
                    &anchor,
                    index,
                ));
            }
            Request::Crash { ack } => {
                let _ = ack.send(());
            }
            Request::Shutdown => {}
        }
    }
    // Leave the final state visible to any reader that outlives the writer.
    publisher.flush(inner);
}

/// Performs one remote operation: request → reply, with bounded retry.
///
/// Each attempt uses a fresh one-shot reply channel and waits
/// [`RetryPolicy::attempt_timeout`] for it. A failed *send* means the server
/// thread (or the link to it) is gone — that is terminal. A disconnected
/// reply channel means the request was consumed but no reply will come (a
/// dropped request or reply in flight) — retry immediately. A timeout backs
/// off exponentially before the retry. Retries reuse the same `seq`, so the
/// server's reply journal guarantees the operation executes at most once —
/// and reuse the same trace context (the retry is a new span in the *same*
/// trace, not a new trace).
#[allow(clippy::too_many_arguments)]
pub(crate) fn remote_op(
    tx: &Sender<Request>,
    user: UserId,
    seq: u64,
    op: &Op,
    round: u64,
    ctx: Option<SpanContext>,
    policy: &RetryPolicy,
    stats: &NetStats,
) -> Result<ServerResponse, NetError> {
    remote_roundtrip(tx, user, seq, ctx, policy, stats, |reply| Request::Op {
        user,
        seq,
        op: op.clone(),
        round,
        ctx,
        reply,
    })
}

/// One batched Protocol II window over the wire; `Ok(None)` means the
/// server declined the window (side-effect free) and the caller should fall
/// back to per-op execution. Transport semantics match [`remote_op`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn remote_batch(
    tx: &Sender<Request>,
    user: UserId,
    seq: u64,
    ops: &[Op],
    round: u64,
    ctx: Option<SpanContext>,
    policy: &RetryPolicy,
    stats: &NetStats,
) -> Result<Option<BatchResponse>, NetError> {
    remote_roundtrip(tx, user, seq, ctx, policy, stats, |reply| {
        Request::OpBatch {
            user,
            seq,
            ops: ops.to_vec(),
            round,
            ctx,
            reply,
        }
    })
}

/// One pipelined Protocol I operation over the wire. The reply is either
/// the anchored pipelined shape or a blocking-path response the server fell
/// back to. Transport semantics match [`remote_op`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn remote_pipelined(
    tx: &Sender<Request>,
    user: UserId,
    seq: u64,
    op: &Op,
    round: u64,
    ctx: Option<SpanContext>,
    policy: &RetryPolicy,
    stats: &NetStats,
) -> Result<PipelinedReply, NetError> {
    remote_roundtrip(tx, user, seq, ctx, policy, stats, |reply| {
        Request::OpPipelined {
            user,
            seq,
            op: op.clone(),
            round,
            ctx,
            reply,
        }
    })
}

/// The shared bounded-retry round trip behind [`remote_op`] and friends:
/// each attempt builds the request around a fresh one-shot reply sender.
fn remote_roundtrip<T>(
    tx: &Sender<Request>,
    user: UserId,
    seq: u64,
    ctx: Option<SpanContext>,
    policy: &RetryPolicy,
    stats: &NetStats,
    mut make: impl FnMut(Sender<T>) -> Request,
) -> Result<T, NetError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            stats.retries.inc();
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::Retry, user)
                    .detail(format!("attempt={attempt}"))
                    .span_opt(ctx.map(|c| c.child(stage::RETRY)))
            });
        }
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(make(reply_tx)).map_err(|_| NetError::ServerGone)?;
        match reply_rx.recv_timeout(policy.attempt_timeout(user, seq, attempt)) {
            Ok(resp) => return Ok(resp),
            // The request or its reply was lost in flight; retry at once.
            Err(RecvTimeoutError::Disconnected) => continue,
            // No verdict on this attempt; the backoff grows with `attempt`.
            Err(RecvTimeoutError::Timeout) => continue,
        }
    }
    Err(NetError::Timeout { attempts })
}

/// A retried fetch round trip (Protocol III audit reads). Same transport
/// semantics as [`remote_op`]; `make` builds the request around the
/// attempt's fresh reply sender.
/// One read over the concurrent snapshot path, with the same bounded-retry
/// transport semantics as [`remote_op`]. Reads are idempotent, so retries
/// need no server-side journal; `seq` only seeds the backoff jitter.
pub(crate) fn remote_read(
    tx: &Sender<ReadRequest>,
    user: UserId,
    seq: u64,
    op: &Op,
    ctx: Option<SpanContext>,
    policy: &RetryPolicy,
    stats: &NetStats,
) -> Result<ReadResponse, NetError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            stats.retries.inc();
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::Retry, user)
                    .detail(format!("attempt={attempt}"))
                    .span_opt(ctx.map(|c| c.child(stage::RETRY)))
            });
        }
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(ReadRequest {
            op: op.clone(),
            ctx,
            reply: reply_tx,
        })
        .map_err(|_| NetError::ServerGone)?;
        match reply_rx.recv_timeout(policy.attempt_timeout(user, seq, attempt)) {
            Ok(resp) => return Ok(resp),
            Err(RecvTimeoutError::Disconnected) => continue,
            Err(RecvTimeoutError::Timeout) => continue,
        }
    }
    Err(NetError::Timeout { attempts })
}

pub(crate) fn remote_fetch<T>(
    tx: &Sender<Request>,
    user: UserId,
    seq: u64,
    policy: &RetryPolicy,
    stats: &NetStats,
    mut make: impl FnMut(Sender<T>) -> Request,
) -> Result<T, NetError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            stats.retries.inc();
            stats.tracer.emit(|| {
                Event::new(seq, EventKind::Retry, user).detail(format!("attempt={attempt}"))
            });
        }
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(make(reply_tx)).map_err(|_| NetError::ServerGone)?;
        match reply_rx.recv_timeout(policy.attempt_timeout(user, seq, attempt)) {
            Ok(v) => return Ok(v),
            Err(RecvTimeoutError::Disconnected) => continue,
            Err(RecvTimeoutError::Timeout) => continue,
        }
    }
    Err(NetError::Timeout { attempts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::ProtocolConfig;
    use tcvs_merkle::u64_key;
    use tcvs_storage::{
        response_bytes, DurabilityOptions, DurableOptions, DurableServer, DurableStorage,
        MemMedium, StorageObs,
    };

    fn open_durable(medium: MemMedium) -> DurableServer<DurableStorage<MemMedium>> {
        let config = ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 64,
        };
        let store = DurableStorage::open(medium, DurableOptions::default());
        DurableServer::open(
            store,
            config,
            DurabilityOptions::default(),
            StorageObs::disabled(),
        )
        .expect("open durable server")
    }

    fn send_op(tx: &Sender<Request>, user: UserId, seq: u64, op: Op, round: u64) -> ServerResponse {
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(Request::Op {
            user,
            seq,
            op,
            round,
            ctx: None,
            reply: reply_tx,
        })
        .expect("server thread alive");
        reply_rx.recv().expect("reply delivered")
    }

    /// The full durability wiring: operations flow through the transport to
    /// a durable inner server with their sequence numbers; when the whole
    /// transport (thread *and* its in-memory journal) is torn down and the
    /// medium loses its unsynced tail, a freshly spawned server over the
    /// recovered store still answers a retry of the last acknowledged
    /// operation from the journal — byte-identical, without re-executing —
    /// because `spawn` seeds the journal from `recovered_journal()`.
    #[test]
    fn recovered_journal_survives_transport_replacement() {
        let medium = MemMedium::new();
        let stats = NetStats::disabled();
        let server = NetServer::spawn_observed(
            Box::new(open_durable(medium.clone())),
            NetServerOptions::default(),
            stats.clone(),
        );
        let tx = server.wire().0;
        send_op(&tx, 7, 0, Op::Put(u64_key(1), b"a".to_vec()), 0);
        let acked = send_op(&tx, 7, 1, Op::Put(u64_key(2), b"b".to_vec()), 1);
        // Seq 1 displaced seq 0's journal entry: one eviction, counted.
        assert_eq!(
            stats.snapshot().counter("net.server.journal_evictions"),
            Some(1)
        );

        // Kill the transport (its thread-local journal dies with it) and the
        // page cache; only what the durable engine synced survives.
        drop(server);
        medium.crash();

        let stats2 = NetStats::disabled();
        let server2 = NetServer::spawn_observed(
            Box::new(open_durable(medium)),
            NetServerOptions::default(),
            stats2.clone(),
        );
        let tx2 = server2.wire().0;
        // A retry of the last acknowledged op: journal hit, not a re-run.
        let replay = send_op(&tx2, 7, 1, Op::Put(u64_key(2), b"b".to_vec()), 1);
        assert_eq!(response_bytes(&replay), response_bytes(&acked));
        let snap = stats2.snapshot();
        assert_eq!(snap.counter("net.server.journal_hits"), Some(1));
        assert_eq!(snap.counter("net.server.ops_served"), Some(0));

        // New work continues exactly where the acknowledged history ended.
        let next = send_op(&tx2, 7, 2, Op::Get(u64_key(2)), 2);
        assert_eq!(next.ctr, acked.ctr + 1);
    }

    /// An in-place crash (`Request::Crash`) over a durable inner server:
    /// the recovered journal replaces the transport's copy and retries
    /// still hit it.
    #[test]
    fn crash_restart_reseeds_the_journal_from_durable_state() {
        let medium = MemMedium::new();
        let stats = NetStats::disabled();
        let server = NetServer::spawn_observed(
            Box::new(open_durable(medium)),
            NetServerOptions::default(),
            stats.clone(),
        );
        let tx = server.wire().0;
        let acked = send_op(&tx, 3, 9, Op::Put(u64_key(5), b"x".to_vec()), 0);
        server.crash_restart().expect("restart");
        let replay = send_op(&tx, 3, 9, Op::Put(u64_key(5), b"x".to_vec()), 0);
        assert_eq!(response_bytes(&replay), response_bytes(&acked));
        assert_eq!(stats.snapshot().counter("net.server.journal_hits"), Some(1));
    }
}
