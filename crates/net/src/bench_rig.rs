//! Multi-threaded throughput rig for experiment E6: `u` client threads
//! hammer one server thread; wall-clock ops/sec per protocol.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tcvs_core::{HonestServer, Op, ProtocolConfig, ProtocolKind};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, MerkleTree};

use tcvs_core::ServerApi;

use crate::client::{NetClient1, NetClient2, NetClientTrusted};
use crate::obs::NetStats;
use crate::server::{NetServer, NetServerOptions};
use crate::shard::{PacedServer, ShardedClient2, ShardedClientTrusted, ShardedServer};

/// Result of one throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Client threads.
    pub clients: u32,
    /// Total operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Per-operation latencies in nanoseconds (all workers, unordered).
    pub latencies_ns: Vec<u64>,
    /// Operations that failed (server unavailable mid-run); 0 against a
    /// healthy server.
    pub failed_ops: u64,
}

impl ThroughputReport {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `q`-quantile per-op latency (q in [0, 1]).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        if self.latencies_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Duration::from_nanos(v[idx])
    }
}

/// Shared collector for per-op latencies across worker threads.
type LatencySink = Arc<Mutex<Vec<u64>>>;

fn record(sink: &LatencySink, started: Instant) {
    sink.lock().push(started.elapsed().as_nanos() as u64);
}

/// The update-heavy op stream each worker issues.
fn worker_op(user: u32, i: u64, update_fraction: u32) -> Op {
    let key = u64_key((user as u64 * 7919 + i * 13) % 1024);
    if i % 100 < update_fraction as u64 {
        Op::Put(key, vec![(i % 251) as u8; 32])
    } else {
        Op::Get(key)
    }
}

/// Per-worker tally: (completed ops, failed ops). A worker stops at its
/// first failure — the server is gone or deviating; either way the rig
/// reports it rather than panicking on a bench thread.
type WorkerTally = (u64, u64);

/// Batching/pipelining knobs for a tuned throughput run. The default is
/// the pre-batching configuration (per-op exchanges, blocking Protocol I
/// deposits, publish-every-write), so `run_throughput` numbers are
/// unchanged by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThroughputOptions {
    /// Protocol II: operations per batched window (1 = per-op exchanges).
    pub batch_window: usize,
    /// Protocol I: server pipeline depth (0 = physically blocking deposits).
    pub pipeline_depth: usize,
    /// Snapshot-slot publication window in ops (1 = publish every write).
    pub publish_every_ops: u64,
}

impl Default for ThroughputOptions {
    fn default() -> ThroughputOptions {
        ThroughputOptions {
            batch_window: 1,
            pipeline_depth: 0,
            publish_every_ops: 1,
        }
    }
}

/// Runs `n_clients` threads, each performing `ops_per_client` operations
/// against a fresh honest server, under the given protocol. Returns
/// wall-clock throughput. `update_pct` is the percentage of updates.
pub fn run_throughput(
    protocol: ProtocolKind,
    n_clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    config: &ProtocolConfig,
) -> ThroughputReport {
    run_throughput_observed(
        protocol,
        n_clients,
        ops_per_client,
        update_pct,
        config,
        NetStats::disabled(),
    )
}

/// [`run_throughput`] with observability attached: the server thread, the
/// reader pool, and every worker's client feed the counters and histograms
/// in `stats`. Used by the overhead probe to compare instrumented vs dark
/// throughput on the same rig.
pub fn run_throughput_observed(
    protocol: ProtocolKind,
    n_clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    config: &ProtocolConfig,
    stats: NetStats,
) -> ThroughputReport {
    run_throughput_tuned(
        protocol,
        n_clients,
        ops_per_client,
        update_pct,
        config,
        ThroughputOptions::default(),
        stats,
    )
}

/// [`run_throughput_observed`] with the batching levers exposed: Protocol II
/// windows of [`ThroughputOptions::batch_window`] ops per exchange,
/// Protocol I deposits pipelined to [`ThroughputOptions::pipeline_depth`],
/// and snapshot publication batched every
/// [`ThroughputOptions::publish_every_ops`] writes. The defaults reproduce
/// the untuned rig exactly.
pub fn run_throughput_tuned(
    protocol: ProtocolKind,
    n_clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    config: &ProtocolConfig,
    tuning: ThroughputOptions,
    stats: NetStats,
) -> ThroughputReport {
    let root0 = MerkleTree::with_order(config.order).root_digest();
    let blocking = protocol == ProtocolKind::One && tuning.pipeline_depth == 0;
    let server = NetServer::spawn_observed(
        Box::new(HonestServer::new(config)),
        NetServerOptions {
            blocking_signatures: blocking,
            pipeline_depth: tuning.pipeline_depth,
            publish_every_ops: tuning.publish_every_ops,
            ..NetServerOptions::default()
        },
        stats.clone(),
    );
    let sink: LatencySink = Arc::new(Mutex::new(Vec::with_capacity(
        (n_clients as u64 * ops_per_client) as usize,
    )));

    let start;
    let mut handles: Vec<std::thread::JoinHandle<WorkerTally>> = Vec::new();
    match protocol {
        ProtocolKind::Trusted => {
            start = Instant::now();
            for u in 0..n_clients {
                let mut c = NetClientTrusted::new(u, &server);
                c.set_stats(stats.clone());
                let sink = Arc::clone(&sink);
                handles.push(std::thread::spawn(move || {
                    let mut done = 0;
                    for i in 0..ops_per_client {
                        let t = Instant::now();
                        if c.execute(&worker_op(u, i, update_pct)).is_err() {
                            return (done, ops_per_client - done);
                        }
                        record(&sink, t);
                        done += 1;
                    }
                    (done, 0)
                }));
            }
        }
        ProtocolKind::One => {
            // Key heights must cover ops_per_client signatures per user.
            let height = 64 - (ops_per_client + 2).leading_zeros();
            let (rings, registry) = setup_users([0x11; 32], n_clients, height.max(4));
            let mut clients: Vec<NetClient1> = rings
                .into_iter()
                .map(|r| {
                    let mut c = NetClient1::new(r, registry.clone(), *config, &server);
                    c.set_stats(stats.clone());
                    c.set_pipelined(tuning.pipeline_depth > 0);
                    c
                })
                .collect();
            clients[0].deposit_initial(&root0).expect("fresh server");
            start = Instant::now();
            for (u, mut c) in clients.into_iter().enumerate() {
                let sink = Arc::clone(&sink);
                handles.push(std::thread::spawn(move || {
                    let mut done = 0;
                    for i in 0..ops_per_client {
                        let t = Instant::now();
                        if c.execute(&worker_op(u as u32, i, update_pct)).is_err() {
                            return (done, ops_per_client - done);
                        }
                        record(&sink, t);
                        done += 1;
                    }
                    (done, 0)
                }));
            }
        }
        ProtocolKind::Two => {
            let window = tuning.batch_window.max(1) as u64;
            start = Instant::now();
            for u in 0..n_clients {
                let mut c = NetClient2::new(u, &root0, *config, &server);
                c.set_stats(stats.clone());
                let sink = Arc::clone(&sink);
                handles.push(std::thread::spawn(move || {
                    let mut done = 0;
                    let mut i = 0;
                    while i < ops_per_client {
                        let n = window.min(ops_per_client - i);
                        let t = Instant::now();
                        let ok = if n == 1 {
                            c.execute(&worker_op(u, i, update_pct)).is_ok()
                        } else {
                            let ops: Vec<Op> =
                                (i..i + n).map(|j| worker_op(u, j, update_pct)).collect();
                            c.execute_batch(&ops).is_ok()
                        };
                        if !ok {
                            return (done, ops_per_client - done);
                        }
                        // Every op in the window waited for the whole
                        // exchange; each is charged the window latency.
                        for _ in 0..n {
                            record(&sink, t);
                        }
                        done += n;
                        i += n;
                    }
                    (done, 0)
                }));
            }
        }
        other => panic!("run_throughput does not support {other:?}"),
    }
    let (mut ops, mut failed_ops) = (0, 0);
    for h in handles {
        let (done, failed) = h.join().expect("worker");
        ops += done;
        failed_ops += failed;
    }
    let elapsed = start.elapsed();
    server.shutdown();
    let latencies_ns = Arc::try_unwrap(sink)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    ThroughputReport {
        protocol,
        clients: n_clients,
        ops,
        elapsed,
        latencies_ns,
        failed_ops,
    }
}

/// Sharded-grove throughput: `n_clients` worker threads hammer a
/// [`ShardedServer`] of `n_shards` paced shards, each shard charging
/// `wire_latency` of modeled service time per serialized operation
/// ([`PacedServer`]).
///
/// The pacing is the point: sharding multiplies *serialized-resource
/// capacity*, not host CPU, so the scaling probes model the resource
/// (per-op service latency on each shard's write path, as a WAN deployment
/// or commit-bound disk would see) and measure how aggregate throughput
/// grows with N while the modeled per-op cost stays fixed. With
/// `wire_latency == 0` this degenerates to raw single-host CPU, which does
/// not and should not scale with N on fewer cores than shards.
///
/// Supports [`ProtocolKind::Trusted`] (routed baseline; snapshot reads
/// bypass the paced path exactly as real reads bypass the write lock) and
/// [`ProtocolKind::Two`] (per-shard verified batch windows of
/// [`ThroughputOptions::batch_window`] ops).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_throughput(
    protocol: ProtocolKind,
    n_shards: usize,
    n_clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    config: &ProtocolConfig,
    tuning: ThroughputOptions,
    wire_latency: Duration,
    stats: NetStats,
) -> ThroughputReport {
    let root0 = MerkleTree::with_order(config.order).root_digest();
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..n_shards)
        .map(|_| {
            Box::new(PacedServer::new(HonestServer::new(config), wire_latency))
                as Box<dyn ServerApi + Send>
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions {
            publish_every_ops: tuning.publish_every_ops,
            ..NetServerOptions::default()
        },
        stats.clone(),
    );
    let sink: LatencySink = Arc::new(Mutex::new(Vec::with_capacity(
        (n_clients as u64 * ops_per_client) as usize,
    )));

    let start;
    let mut handles: Vec<std::thread::JoinHandle<WorkerTally>> = Vec::new();
    match protocol {
        ProtocolKind::Trusted => {
            start = Instant::now();
            for u in 0..n_clients {
                let mut c = ShardedClientTrusted::new(u, &grove);
                c.set_stats(stats.clone());
                let sink = Arc::clone(&sink);
                handles.push(std::thread::spawn(move || {
                    let mut done = 0;
                    for i in 0..ops_per_client {
                        let t = Instant::now();
                        if c.execute(&worker_op(u, i, update_pct)).is_err() {
                            return (done, ops_per_client - done);
                        }
                        record(&sink, t);
                        done += 1;
                    }
                    (done, 0)
                }));
            }
        }
        ProtocolKind::Two => {
            let window = tuning.batch_window.max(1) as u64;
            let root0s = vec![root0; n_shards];
            start = Instant::now();
            for u in 0..n_clients {
                let mut c = ShardedClient2::new(u, &root0s, *config, &grove);
                c.set_stats(stats.clone());
                let sink = Arc::clone(&sink);
                handles.push(std::thread::spawn(move || {
                    let mut done = 0;
                    let mut i = 0;
                    while i < ops_per_client {
                        let n = window.min(ops_per_client - i);
                        let t = Instant::now();
                        let ok = if n == 1 {
                            c.execute(&worker_op(u, i, update_pct)).is_ok()
                        } else {
                            let ops: Vec<Op> =
                                (i..i + n).map(|j| worker_op(u, j, update_pct)).collect();
                            c.execute_batch(&ops).is_ok()
                        };
                        if !ok {
                            return (done, ops_per_client - done);
                        }
                        for _ in 0..n {
                            record(&sink, t);
                        }
                        done += n;
                        i += n;
                    }
                    (done, 0)
                }));
            }
        }
        other => panic!("run_sharded_throughput does not support {other:?}"),
    }
    let (mut ops, mut failed_ops) = (0, 0);
    for h in handles {
        let (done, failed) = h.join().expect("worker");
        ops += done;
        failed_ops += failed;
    }
    let elapsed = start.elapsed();
    grove.shutdown();
    let latencies_ns = Arc::try_unwrap(sink)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    ThroughputReport {
        protocol,
        clients: n_clients,
        ops,
        elapsed,
        latencies_ns,
        failed_ops,
    }
}
