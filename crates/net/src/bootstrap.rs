//! The client half of chunked verified state sync: fetch a chunk manifest
//! and its chunks over the wire, verify every chunk against the anchor
//! before admitting it, and assemble the full tree.
//!
//! A [`BootstrapClient`] rides the same bounded-retry transport machinery as
//! every other client ([`crate::RetryPolicy`] + the server's request
//! channel), tolerates out-of-order and duplicate delivery (the assembler
//! does), and is **resumable**: an interrupted bootstrap keeps its admitted
//! chunks, and [`BootstrapClient::rebind`] can even move the session to a
//! different peer serving the same snapshot — that is how a restarted shard
//! catches up from whichever replica still holds its state.
//!
//! Trust model: the transport, the manifest, and every chunk are untrusted.
//! The only trusted input is the anchor root the caller pins (from a grove
//! epoch, a signed state, or out-of-band); with no pin, the client verifies
//! internal consistency against the *served* anchor, and the caller must
//! check [`BootstrapReport::root`] against an independently learned root
//! before acting on the data.

use crossbeam::channel::Sender;

use tcvs_core::{Ctr, Digest, EvidenceBuilder, EvidenceBundle, EvidenceKind, TriggerInfo, UserId};
use tcvs_merkle::{ChunkAssembler, ChunkError, ChunkManifest, MerkleTree};

use crate::error::{NetError, RetryPolicy};
use crate::obs::NetStats;
use crate::server::{remote_fetch, Endpoint, Request};

/// Why a bootstrap attempt failed.
#[derive(Debug)]
pub enum BootstrapError {
    /// Transport failure (server gone, retries exhausted).
    Net(NetError),
    /// The endpoint serves no bootstrap path (e.g. an adversarial server
    /// with no read snapshot).
    Unsupported,
    /// The manifest failed to decode or validate.
    Manifest(ChunkError),
    /// The served manifest's anchor does not match the root the caller
    /// pinned.
    AnchorMismatch {
        /// The root the caller expected.
        expected: Digest,
        /// The root the manifest declared.
        got: Digest,
    },
    /// The server declined a chunk of this session's snapshot (it has moved
    /// on), and re-fetching the manifest did not recover within the retry
    /// budget. The session is retained: rebinding to a peer that still
    /// holds the snapshot resumes where this left off.
    ChunkUnavailable {
        /// The declined chunk index.
        index: u32,
    },
    /// Chunk verification failed — a forged, truncated, reordered, or
    /// cross-snapshot chunk, detected at the exact offending index.
    Chunk {
        /// The offending chunk index.
        index: u32,
        /// What the verifier rejected.
        error: ChunkError,
    },
    /// Final assembly failed (an inconsistent manifest that under-covers
    /// the tree surfaces here).
    Assembly(ChunkError),
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::Net(e) => write!(f, "bootstrap transport: {e}"),
            BootstrapError::Unsupported => write!(f, "endpoint serves no bootstrap path"),
            BootstrapError::Manifest(e) => write!(f, "bootstrap manifest: {e}"),
            BootstrapError::AnchorMismatch { .. } => {
                write!(f, "served manifest does not anchor to the pinned root")
            }
            BootstrapError::ChunkUnavailable { index } => {
                write!(f, "server no longer serves chunk {index} of this snapshot")
            }
            BootstrapError::Chunk { index, error } => {
                write!(f, "chunk {index} rejected: {error}")
            }
            BootstrapError::Assembly(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<NetError> for BootstrapError {
    fn from(e: NetError) -> BootstrapError {
        BootstrapError::Net(e)
    }
}

/// The outcome of a completed bootstrap: the verified tree and how much it
/// cost to fetch.
#[derive(Debug)]
pub struct BootstrapReport {
    /// The assembled tree — recomputed bottom-up, its root equals
    /// [`BootstrapReport::root`].
    pub tree: MerkleTree,
    /// The anchor the tree verified against.
    pub root: Digest,
    /// The counter the snapshot was current as of.
    pub ctr: Ctr,
    /// Chunks fetched over the wire by this client, lifetime total for the
    /// session (resumed sessions keep counting).
    pub chunks_fetched: u64,
    /// Payload bytes fetched over the wire, lifetime total for the session.
    pub bytes_fetched: u64,
}

/// An in-flight assembly, kept across failed attempts so a bootstrap can
/// resume instead of starting over.
struct Session {
    assembler: ChunkAssembler,
    ctr: Ctr,
    chunks_fetched: u64,
    bytes_fetched: u64,
}

/// Fetches, verifies, and assembles a chunked snapshot from an endpoint.
pub struct BootstrapClient {
    user: UserId,
    tx: Sender<Request>,
    seq: u64,
    policy: RetryPolicy,
    stats: NetStats,
    session: Option<Session>,
    evidence: Option<EvidenceBundle>,
    evidence_seed: u64,
}

impl BootstrapClient {
    /// Binds a bootstrap client to `server` (any endpoint — a
    /// [`crate::NetServer`] or a [`crate::FaultLink`] in front of one).
    pub fn new(user: UserId, server: &impl Endpoint) -> BootstrapClient {
        BootstrapClient {
            user,
            tx: server.wire().0,
            seq: 0,
            policy: RetryPolicy::default(),
            stats: NetStats::disabled(),
            session: None,
            evidence: None,
            evidence_seed: 0,
        }
    }

    /// Stamps captured evidence bundles with the run seed that produced
    /// them.
    pub fn set_evidence_seed(&mut self, seed: u64) {
        self.evidence_seed = seed;
    }

    /// Takes the evidence bundle captured at the most recent rejected
    /// bootstrap (a forged chunk, a spliced snapshot, a mismatched anchor),
    /// if any.
    pub fn take_evidence(&mut self) -> Option<EvidenceBundle> {
        self.evidence.take()
    }

    /// Replaces the retry policy (timeouts, attempts, jitter).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Attaches observability handles (transport retry counters).
    pub fn set_stats(&mut self, stats: NetStats) {
        self.stats = stats;
    }

    /// Moves this client (and its in-flight session, if any) to a different
    /// endpoint. Admitted chunks are kept: if the new peer serves the same
    /// snapshot, the bootstrap resumes with only the missing chunks.
    pub fn rebind(&mut self, server: &impl Endpoint) {
        self.tx = server.wire().0;
    }

    /// Discards any in-flight session.
    pub fn reset(&mut self) {
        self.session = None;
    }

    /// Chunk indices still missing from the in-flight session, if one
    /// exists (ascending).
    pub fn missing(&self) -> Option<Vec<u32>> {
        self.session.as_ref().map(|s| s.assembler.missing())
    }

    /// Runs a bootstrap to completion: fetch (or resume) the manifest,
    /// fetch and verify every missing chunk, assemble, and run the final
    /// recompute-the-anchor gate.
    ///
    /// With `expected_anchor` pinned, the manifest must declare exactly
    /// that root — a server that moved to a newer snapshot is an
    /// [`BootstrapError::AnchorMismatch`], never silently accepted. With no
    /// pin, the client follows the server's current snapshot, re-fetching
    /// the manifest (bounded by the retry policy) if the snapshot moves
    /// mid-bootstrap.
    pub fn bootstrap(
        &mut self,
        expected_anchor: Option<&Digest>,
    ) -> Result<BootstrapReport, BootstrapError> {
        let result = self.bootstrap_inner(expected_anchor);
        if let Err(e) = &result {
            self.capture_forgery(e, expected_anchor);
        }
        result
    }

    /// Builds and stashes an evidence bundle when the bootstrap failed in a
    /// *verification-shaped* way — a forged or spliced chunk, a manifest
    /// that does not anchor to the pinned root, an assembly that does not
    /// recompute to its anchor. Transport trouble (server gone, chunk
    /// unavailable, no bootstrap path) proves nothing and captures nothing.
    fn capture_forgery(&mut self, e: &BootstrapError, expected_anchor: Option<&Digest>) {
        if self.evidence.is_some() {
            return;
        }
        let trigger = match e {
            BootstrapError::Chunk { index, error } => TriggerInfo {
                deviation: "bootstrap-chunk-forged".to_string(),
                detail: format!("chunk {index} rejected: {error}"),
                user: Some(self.user),
                shard: None,
                ctr: Some(u64::from(*index)),
            },
            BootstrapError::AnchorMismatch { expected, got } => TriggerInfo {
                deviation: "bootstrap-anchor-mismatch".to_string(),
                detail: format!("pinned {expected}, served manifest anchors {got}"),
                user: Some(self.user),
                shard: None,
                ctr: None,
            },
            BootstrapError::Assembly(err) => TriggerInfo {
                deviation: "bootstrap-assembly-failed".to_string(),
                detail: format!("assembly gate: {err}"),
                user: Some(self.user),
                shard: None,
                ctr: None,
            },
            BootstrapError::Manifest(err) => TriggerInfo {
                deviation: "bootstrap-manifest-invalid".to_string(),
                detail: format!("manifest rejected: {err}"),
                user: Some(self.user),
                shard: None,
                ctr: None,
            },
            BootstrapError::Net(_)
            | BootstrapError::Unsupported
            | BootstrapError::ChunkUnavailable { .. } => return,
        };
        let (chunks, bytes) = self
            .session
            .as_ref()
            .map_or((0, 0), |s| (s.chunks_fetched, s.bytes_fetched));
        let mut b = EvidenceBuilder::new(
            EvidenceKind::BootstrapForgery,
            self.evidence_seed,
            "bootstrap",
        )
        .captured_at(chunks)
        .description(format!(
            "chunked state sync rejected after {chunks} chunks / {bytes} bytes admitted"
        ))
        .trigger(trigger);
        if let Some(anchor) = expected_anchor {
            b = b.initials(&[*anchor]);
        }
        self.evidence = Some(b.build());
    }

    fn bootstrap_inner(
        &mut self,
        expected_anchor: Option<&Digest>,
    ) -> Result<BootstrapReport, BootstrapError> {
        let restarts = self.policy.max_attempts.max(1);
        for _ in 0..restarts {
            self.ensure_session(expected_anchor)?;
            match self.fill_session() {
                Ok(()) => return self.finish(),
                Err(BootstrapError::ChunkUnavailable { index }) => {
                    // The server may have moved to a new snapshot. Re-fetch
                    // the manifest: same anchor → the decline was transient
                    // and the session stands; new anchor → start a fresh
                    // session (or fail loudly if the caller pinned a root).
                    match self.refresh_session(expected_anchor) {
                        Ok(()) => continue,
                        Err(_) => return Err(BootstrapError::ChunkUnavailable { index }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let index = self.missing().and_then(|m| m.first().copied()).unwrap_or(0);
        Err(BootstrapError::ChunkUnavailable { index })
    }

    /// Starts a session if none is in flight (or if the caller's pin no
    /// longer matches the session's anchor).
    fn ensure_session(&mut self, expected_anchor: Option<&Digest>) -> Result<(), BootstrapError> {
        if let (Some(sess), Some(exp)) = (&self.session, expected_anchor) {
            if sess.assembler.manifest().anchor != *exp {
                self.session = None;
            }
        }
        if self.session.is_none() {
            let manifest = self.fetch_manifest(expected_anchor)?;
            self.start_session(manifest)?;
        }
        Ok(())
    }

    /// Re-fetches the manifest after a declined chunk. Keeps the session
    /// when the anchor is unchanged, replaces it when the server moved on
    /// (and no pin forbids following).
    fn refresh_session(&mut self, expected_anchor: Option<&Digest>) -> Result<(), BootstrapError> {
        let (mbytes, ctr) = self.fetch_manifest_raw()?;
        let manifest = ChunkManifest::from_bytes(&mbytes).map_err(BootstrapError::Manifest)?;
        if let Some(exp) = expected_anchor {
            if manifest.anchor != *exp {
                return Err(BootstrapError::AnchorMismatch {
                    expected: *exp,
                    got: manifest.anchor,
                });
            }
        }
        match &self.session {
            Some(sess) if sess.assembler.manifest().anchor == manifest.anchor => Ok(()),
            _ => self.start_session((manifest, ctr)),
        }
    }

    fn fetch_manifest(
        &mut self,
        expected_anchor: Option<&Digest>,
    ) -> Result<(ChunkManifest, Ctr), BootstrapError> {
        let (mbytes, ctr) = self.fetch_manifest_raw()?;
        let manifest = ChunkManifest::from_bytes(&mbytes).map_err(BootstrapError::Manifest)?;
        if let Some(exp) = expected_anchor {
            if manifest.anchor != *exp {
                return Err(BootstrapError::AnchorMismatch {
                    expected: *exp,
                    got: manifest.anchor,
                });
            }
        }
        Ok((manifest, ctr))
    }

    fn fetch_manifest_raw(&mut self) -> Result<(Vec<u8>, Ctr), BootstrapError> {
        self.seq += 1;
        remote_fetch(
            &self.tx,
            self.user,
            self.seq,
            &self.policy,
            &self.stats,
            |reply| Request::BootstrapManifest { reply },
        )?
        .ok_or(BootstrapError::Unsupported)
    }

    fn start_session(
        &mut self,
        (manifest, ctr): (ChunkManifest, Ctr),
    ) -> Result<(), BootstrapError> {
        let assembler = ChunkAssembler::new(manifest).map_err(BootstrapError::Manifest)?;
        // Lifetime counters survive session replacement: the report charges
        // the *whole* bootstrap, including work thrown away when a moving
        // snapshot forced a restart.
        let (chunks, bytes) = self
            .session
            .as_ref()
            .map_or((0, 0), |s| (s.chunks_fetched, s.bytes_fetched));
        self.session = Some(Session {
            assembler,
            ctr,
            chunks_fetched: chunks,
            bytes_fetched: bytes,
        });
        Ok(())
    }

    /// Fetches and admits every missing chunk of the current session.
    fn fill_session(&mut self) -> Result<(), BootstrapError> {
        loop {
            let (anchor, missing) = {
                let sess = self.session.as_ref().expect("session in flight");
                (sess.assembler.manifest().anchor, sess.assembler.missing())
            };
            if missing.is_empty() {
                return Ok(());
            }
            for index in missing {
                self.seq += 1;
                let bytes = remote_fetch(
                    &self.tx,
                    self.user,
                    self.seq,
                    &self.policy,
                    &self.stats,
                    |reply| Request::BootstrapChunk {
                        anchor,
                        index,
                        reply,
                    },
                )?
                .ok_or(BootstrapError::ChunkUnavailable { index })?;
                let sess = self.session.as_mut().expect("session in flight");
                sess.chunks_fetched += 1;
                sess.bytes_fetched += bytes.len() as u64;
                sess.assembler
                    .admit(index, &bytes)
                    .map_err(|error| BootstrapError::Chunk { index, error })?;
            }
        }
    }

    /// Consumes the completed session and runs the final assembly gate.
    fn finish(&mut self) -> Result<BootstrapReport, BootstrapError> {
        let sess = self.session.take().expect("session in flight");
        let ctr = sess.ctr;
        let (chunks_fetched, bytes_fetched) = (sess.chunks_fetched, sess.bytes_fetched);
        let tree = sess.assembler.finish().map_err(BootstrapError::Assembly)?;
        let root = tree.root_digest();
        Ok(BootstrapReport {
            tree,
            root,
            ctr,
            chunks_fetched,
            bytes_fetched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use crossbeam::channel::unbounded;
    use tcvs_core::NO_USER;
    use tcvs_merkle::{u64_key, ChunkSource, MerkleTree};

    use crate::server::{sealed, WireHandle};

    const BUDGET: usize = 200;

    fn tree(n: u64) -> MerkleTree {
        let mut t = MerkleTree::with_order(4);
        for i in 0..n {
            t.insert(u64_key(i), vec![(i % 251) as u8; 9]).unwrap();
        }
        t
    }

    /// A chunk server whose chunk responses pass through `mutate(index,
    /// honest_bytes)`: return the honest bytes, forged bytes, or `None` to
    /// decline. The manifest is always served honestly.
    struct FakePeer {
        tx: Sender<Request>,
    }

    impl sealed::Sealed for FakePeer {}
    impl Endpoint for FakePeer {
        fn wire(&self) -> WireHandle {
            WireHandle(self.tx.clone())
        }
    }

    fn fake_peer(
        src: &MerkleTree,
        ctr: Ctr,
        mutate: impl Fn(u32, Vec<u8>) -> Option<Vec<u8>> + Send + 'static,
    ) -> FakePeer {
        let source = ChunkSource::new(src, BUDGET).unwrap();
        let (tx, rx) = unbounded::<Request>();
        std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                match req {
                    Request::BootstrapManifest { reply } => {
                        let _ = reply.send(Some((source.manifest().to_bytes(), ctr)));
                    }
                    Request::BootstrapChunk { index, reply, .. } => {
                        let honest = source.chunk(index);
                        let _ = reply.send(honest.and_then(|b| mutate(index, b)));
                    }
                    // Any other request is dropped (its reply sender with
                    // it); a fake peer serves only the bootstrap path.
                    _ => {}
                }
            }
        });
        FakePeer { tx }
    }

    fn client(peer: &FakePeer) -> BootstrapClient {
        let mut c = BootstrapClient::new(NO_USER, peer);
        c.set_retry_policy(RetryPolicy::fail_fast(Duration::from_secs(5)));
        c
    }

    #[test]
    fn honest_fake_peer_round_trips() {
        let t = tree(120);
        let peer = fake_peer(&t, 120, |_, b| Some(b));
        let report = client(&peer)
            .bootstrap(Some(&t.root_digest()))
            .expect("honest peer");
        assert_eq!(report.root, t.root_digest());
        assert_eq!(report.ctr, 120);
        assert_eq!(report.tree.to_bytes(), t.to_bytes(), "byte-identical tree");
        assert!(report.chunks_fetched > 1, "multi-chunk transfer");
    }

    /// A lying chunk server is detected at the exact offending chunk: for
    /// every index, a peer that forges *that* chunk (bit flip in the node
    /// region) fails the bootstrap with `Chunk {{ index }}` — never with a
    /// wrong index, never by silently accepting.
    #[test]
    fn lying_chunk_server_detected_at_exact_chunk() {
        let t = tree(120);
        let anchor = t.root_digest();
        let n = ChunkSource::new(&t, BUDGET).unwrap().num_chunks();
        assert!(n >= 3, "need several chunks, got {n}");
        for bad in 0..n {
            let peer = fake_peer(&t, 120, move |i, mut b| {
                if i == bad {
                    // Flip a byte well past the codec header, inside the
                    // encoded node region, so the payload stays decodable
                    // but its content no longer matches the anchor.
                    let at = b.len() - 1 - b.len() / 4;
                    b[at] ^= 0x01;
                }
                Some(b)
            });
            match client(&peer).bootstrap(Some(&anchor)) {
                Err(BootstrapError::Chunk { index, .. }) => {
                    assert_eq!(index, bad, "detected at the offending chunk")
                }
                other => panic!("forged chunk {bad} not detected: {other:?}"),
            }
        }
    }

    /// Cross-snapshot splicing: a peer that answers chunk `bad` from a
    /// *different* snapshot (same shape, different values) is caught at
    /// exactly that chunk by the anchor check.
    #[test]
    fn spliced_chunk_detected_at_exact_chunk() {
        let t = tree(120);
        let mut other = tree(120);
        other.insert(u64_key(7), vec![0xEE; 9]).unwrap();
        let source_b = ChunkSource::new(&other, BUDGET).unwrap();
        let anchor = t.root_digest();
        let n = ChunkSource::new(&t, BUDGET).unwrap().num_chunks();
        let common = n.min(source_b.num_chunks());
        for bad in 0..common {
            let sb = ChunkSource::new(&other, BUDGET).unwrap();
            let peer = fake_peer(
                &t,
                120,
                move |i, b| if i == bad { sb.chunk(i) } else { Some(b) },
            );
            match client(&peer).bootstrap(Some(&anchor)) {
                Err(BootstrapError::Chunk { index, .. }) => assert_eq!(index, bad),
                // Same-shape splice of an identical range is content-equal
                // only if the ranges differ in no byte — impossible here
                // because chunk `bad` of `other` either covers key 7 (value
                // differs) or anchors to a different root.
                other => panic!("spliced chunk {bad} not detected: {other:?}"),
            }
        }
    }

    /// A rejected bootstrap (forged chunk) stashes an auditable evidence
    /// bundle naming the offending chunk; transport trouble captures
    /// nothing.
    #[test]
    fn forged_chunk_captures_bootstrap_evidence() {
        let t = tree(120);
        let anchor = t.root_digest();
        let peer = fake_peer(&t, 120, |i, mut b| {
            if i == 1 {
                let at = b.len() - 1 - b.len() / 4;
                b[at] ^= 0x01;
            }
            Some(b)
        });
        let mut c = client(&peer);
        c.set_evidence_seed(42);
        assert!(matches!(
            c.bootstrap(Some(&anchor)),
            Err(BootstrapError::Chunk { index: 1, .. })
        ));
        let bundle = c.take_evidence().expect("forgery captured");
        assert!(c.take_evidence().is_none(), "stash holds one bundle");
        assert_eq!(bundle.kind, tcvs_core::EvidenceKind::BootstrapForgery);
        assert_eq!(bundle.seed, 42);
        assert_eq!(bundle.trigger.deviation, "bootstrap-chunk-forged");
        assert_eq!(bundle.trigger.ctr, Some(1), "the offending chunk index");
        assert_eq!(bundle.initials, vec![anchor], "the pinned anchor rides");
        let report = tcvs_core::audit_bytes(&bundle.to_bytes());
        assert!(report.accepted, "{:?}", report.rejection);
        assert_eq!(report.kind.as_deref(), Some("bootstrap-forgery"));

        // A dying (but honest) peer proves nothing and captures nothing.
        let n = ChunkSource::new(&t, BUDGET).unwrap().num_chunks();
        let split = n / 2;
        let dying = fake_peer(&t, 120, move |i, b| (i < split).then_some(b));
        let mut c = client(&dying);
        assert!(matches!(
            c.bootstrap(Some(&anchor)),
            Err(BootstrapError::ChunkUnavailable { .. })
        ));
        assert!(c.take_evidence().is_none());
    }

    /// A peer that pins a root the server does not serve fails loudly with
    /// `AnchorMismatch` before any chunk is admitted.
    #[test]
    fn pinned_anchor_mismatch_fails_before_chunks() {
        let t = tree(60);
        let peer = fake_peer(&t, 60, |_, b| Some(b));
        let wrong = tree(61).root_digest();
        match client(&peer).bootstrap(Some(&wrong)) {
            Err(BootstrapError::AnchorMismatch { expected, got }) => {
                assert_eq!(expected, wrong);
                assert_eq!(got, t.root_digest());
            }
            other => panic!("expected anchor mismatch, got {other:?}"),
        }
    }

    /// Resumability: a peer that dies mid-transfer leaves a session with
    /// exactly the missing chunks; rebinding to a healthy replica finishes
    /// the bootstrap fetching *only* those, and the lifetime counters
    /// charge the whole journey.
    #[test]
    fn interrupted_bootstrap_resumes_on_rebind() {
        let t = tree(120);
        let anchor = t.root_digest();
        let n = ChunkSource::new(&t, BUDGET).unwrap().num_chunks();
        assert!(n >= 3);
        let split = n / 2;
        let dying = fake_peer(&t, 120, move |i, b| if i < split { Some(b) } else { None });
        let mut c = client(&dying);
        match c.bootstrap(Some(&anchor)) {
            Err(BootstrapError::ChunkUnavailable { index }) => assert_eq!(index, split),
            other => panic!("expected unavailable at {split}, got {other:?}"),
        }
        let missing = c.missing().expect("session retained");
        assert_eq!(missing, (split..n).collect::<Vec<u32>>());

        let healthy = fake_peer(&t, 120, |_, b| Some(b));
        c.rebind(&healthy);
        let report = c.bootstrap(Some(&anchor)).expect("resumed bootstrap");
        assert_eq!(report.root, anchor);
        assert_eq!(
            report.chunks_fetched,
            u64::from(n),
            "split chunks from the dying peer + the rest from the replica, \
             none re-fetched"
        );
        assert_eq!(report.tree.to_bytes(), t.to_bytes());
    }

    /// With no pinned root, a server that moved to a new snapshot between
    /// the manifest and the chunks is followed: the client re-fetches the
    /// manifest and completes against the *new* anchor.
    #[test]
    fn unpinned_bootstrap_follows_a_moving_snapshot() {
        let t_old = tree(60);
        let t_new = tree(90);
        let new_root = t_new.root_digest();
        let old_manifest = ChunkSource::new(&t_old, BUDGET)
            .unwrap()
            .manifest()
            .to_bytes();
        let source_new = ChunkSource::new(&t_new, BUDGET).unwrap();
        let (tx, rx) = unbounded::<Request>();
        std::thread::spawn(move || {
            let mut manifests = 0u32;
            while let Ok(req) = rx.recv() {
                match req {
                    Request::BootstrapManifest { reply } => {
                        manifests += 1;
                        // First manifest: the old snapshot. Every later
                        // one: the server has moved on.
                        let m = if manifests == 1 {
                            old_manifest.clone()
                        } else {
                            source_new.manifest().to_bytes()
                        };
                        let _ = reply.send(Some((m, u64::from(manifests))));
                    }
                    Request::BootstrapChunk {
                        anchor,
                        index,
                        reply,
                    } => {
                        // Only the new snapshot's chunks are still served.
                        let b = (anchor == source_new.manifest().anchor)
                            .then(|| source_new.chunk(index))
                            .flatten();
                        let _ = reply.send(b);
                    }
                    _ => {}
                }
            }
        });
        let peer = FakePeer { tx };
        let mut c = BootstrapClient::new(NO_USER, &peer);
        c.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            base_timeout: Duration::from_secs(5),
            max_jitter: Duration::ZERO,
        });
        let report = c.bootstrap(None).expect("followed the moving snapshot");
        assert_eq!(report.root, new_root);
        assert_eq!(report.tree.to_bytes(), t_new.to_bytes());
    }
}
