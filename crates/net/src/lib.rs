//! # tcvs-net
//!
//! A threaded deployment of the trusted-cvs protocols: one server thread
//! serving crossbeam channels, client handles per user, and a throughput
//! rig for the wall-clock experiments.
//!
//! Protocol I's blocking signature deposit is reproduced physically: the
//! server thread refuses to take the next operation until the previous
//! operation's signature has arrived — experiment E6 measures what that
//! costs under contention, which is the paper's §4.3 motivation for
//! Protocol II ("this additional blocking step affects throughput in
//! systems with frequent updates").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bench_rig;
mod client;
mod server;

pub use bench_rig::{run_throughput, ThroughputReport};
pub use client::{NetClient1, NetClient2, NetClient3, NetClientTrusted};
pub use server::NetServer;
