//! # tcvs-net
//!
//! A threaded deployment of the trusted-cvs protocols: one server thread
//! serving crossbeam channels, client handles per user, a deterministic
//! fault-injection link, and a throughput rig for the wall-clock
//! experiments.
//!
//! Protocol I's blocking signature deposit is reproduced physically: the
//! server thread refuses to take the next operation until the previous
//! operation's signature has arrived — experiment E6 measures what that
//! costs under contention, which is the paper's §4.3 motivation for
//! Protocol II ("this additional blocking step affects throughput in
//! systems with frequent updates"). Under faults the block is bounded by a
//! deposit timeout instead of deadlocking.
//!
//! ## Batching and pipelining
//!
//! Three levers close most of the gap between the verified paths and the
//! trusted baseline (see DESIGN.md for the bounds):
//!
//! * **Batched Protocol II windows** — [`NetClient2::execute_batch`] sends
//!   a window of ops as one exchange; the server answers with one
//!   [`tcvs_core::BatchResponse`] whose spine siblings are shared across
//!   the window and whose σ-token fold telescopes, and the client verifies
//!   the whole window against one pre-state root.
//! * **Pipelined Protocol I deposits** —
//!   [`NetServerOptions::pipeline_depth`] lets the server serve up to `d`
//!   operations ahead of the deposit stream; responses re-anchor each
//!   client at its own last deposited signature, so detection stays
//!   k-bounded (shifted by at most `d`).
//! * **Batched snapshot publication** —
//!   [`NetServerOptions::publish_every_ops`] /
//!   [`NetServerOptions::publish_interval`] amortize the read-slot swap
//!   over a bounded window of writes.
//!
//! ## Resilience
//!
//! Clients return `Result<_, NetError>` on every request path and retry
//! with exponential backoff and deterministic jitter ([`RetryPolicy`]).
//! Operations carry per-user sequence numbers; the server journals its last
//! reply per user, so retries after a dropped reply are answered without
//! re-executing (exactly-once semantics). A [`FaultLink`] interposed
//! between clients and server replays a seeded [`tcvs_core::FaultPlan`]
//! against live traffic; benign faults must never raise a deviation alarm.
//! [`NetServer::crash_restart`] crash-restarts the inner server from its
//! persisted state, and shutdown drains backlogged requests before the
//! thread exits.
//!
//! ## Concurrent read path
//!
//! Servers that opt in (the honest server does; adversaries cannot) expose
//! a second wire serving point/range queries from the latest **published
//! snapshot** — an O(1), structurally shared capture of the database that
//! the write thread refreshes after every committed operation. Reads on
//! this path run in a reader pool, in parallel with each other and with the
//! serialized write path; state transitions (all updates, and every
//! Protocol I/II/III exchange) remain strictly serialized on the original
//! wire. [`NetClientTrusted`] routes reads over it automatically;
//! [`NetSnapshotReader`] adds replay verification against the snapshot root
//! the server commits to.
//!
//! ## Sharded grove
//!
//! [`ShardedServer`] partitions the keyspace over N independent shard
//! servers via the restart-stable `tcvs_core::ShardRouter` and folds the
//! shard roots into one top-level **grove root**, so every verified answer
//! becomes shard proof + grove spine and clients still check a single
//! digest. [`ShardedClient2`], [`ShardedClientTrusted`], and
//! [`GroveReader`] route per key; [`PacedServer`] models per-op service
//! latency for the scaling experiments. See DESIGN.md §"Sharded grove".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bench_rig;
mod bootstrap;
mod client;
mod error;
mod fault;
mod obs;
mod server;
mod shard;

pub use bench_rig::{
    run_sharded_throughput, run_throughput, run_throughput_observed, run_throughput_tuned,
    ThroughputOptions, ThroughputReport,
};
pub use bootstrap::{BootstrapClient, BootstrapError, BootstrapReport};
pub use client::{NetClient1, NetClient2, NetClient3, NetClientTrusted, NetSnapshotReader};
pub use error::{NetError, RetryPolicy};
pub use fault::FaultLink;
pub use obs::NetStats;
pub use server::{Endpoint, NetServer, NetServerOptions, ReadWireHandle, WireHandle};
pub use shard::{
    GroveEpoch, GroveReader, PacedServer, ShardedClient2, ShardedClientTrusted, ShardedServer,
};
