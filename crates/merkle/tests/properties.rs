//! Property-based tests: the Merkle B+-tree must agree with a BTreeMap model
//! under arbitrary operation sequences, maintain its invariants, and produce
//! verification objects that replay to exactly the server transition.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tcvs_merkle::{
    apply_op, prune_for_op, verify_response, MerkleTree, Op, OpResult, VerificationObject,
};

/// A compact operation description for proptest generation.
#[derive(Clone, Debug)]
enum Action {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Range(u16, u16),
    /// Range with optional bounds: `None` on either side is an open end, so
    /// `RangeOpen(None, None)` is a full scan.
    RangeOpen(Option<u16>, Option<u16>),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Action::Put(k % 512, v)),
        any::<u16>().prop_map(|k| Action::Delete(k % 512)),
        any::<u16>().prop_map(|k| Action::Get(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Action::Range(a % 512, b % 512)),
        (any::<bool>(), any::<u16>(), any::<bool>(), any::<u16>()).prop_map(|(la, a, lb, b)| {
            Action::RangeOpen(la.then_some(a % 512), lb.then_some(b % 512))
        }),
    ]
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn to_op(a: &Action) -> Op {
    match a {
        Action::Put(k, v) => Op::Put(key(*k), vec![*v, 0xEE]),
        Action::Delete(k) => Op::Delete(key(*k)),
        Action::Get(k) => Op::Get(key(*k)),
        Action::Range(a, b) => {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            Op::Range(Some(key(lo)), Some(key(hi)))
        }
        Action::RangeOpen(a, b) => {
            let (lo, hi) = match (a, b) {
                (Some(a), Some(b)) if a > b => (Some(*b), Some(*a)),
                _ => (*a, *b),
            };
            Op::Range(lo.map(key), hi.map(key))
        }
    }
}

/// Applies an op to the reference model.
fn model_apply(model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op) -> OpResult {
    match op {
        Op::Get(k) => OpResult::Value(model.get(k).cloned()),
        Op::Range(lo, hi) => {
            let es: Vec<(Vec<u8>, Vec<u8>)> = model
                .iter()
                .filter(|(k, _)| {
                    lo.as_ref().is_none_or(|l| *k >= l) && hi.as_ref().is_none_or(|h| *k < h)
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            OpResult::Entries(es)
        }
        Op::Put(k, v) => OpResult::Replaced(model.insert(k.clone(), v.clone())),
        Op::Delete(k) => OpResult::Deleted(model.remove(k)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tree agrees with a BTreeMap under arbitrary op sequences, for
    /// multiple branching orders, while keeping its invariants.
    #[test]
    fn tree_matches_model(
        actions in proptest::collection::vec(action_strategy(), 1..200),
        order in prop_oneof![Just(4usize), Just(5), Just(8), Just(16)],
    ) {
        let mut tree = MerkleTree::with_order(order);
        let mut model = BTreeMap::new();
        for a in &actions {
            let op = to_op(a);
            let got = apply_op(&mut tree, &op).unwrap();
            let want = model_apply(&mut model, &op);
            prop_assert_eq!(got, want);
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), Some(model.len()));
        // Full scan agrees with the model.
        let entries = tree.entries().unwrap();
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(entries, expect);
    }

    /// Every verification object replays to exactly the server's transition:
    /// same answer, same new root — the heart of §4.1.
    #[test]
    fn verification_objects_replay_faithfully(
        setup in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..100),
        actions in proptest::collection::vec(action_strategy(), 1..60),
    ) {
        let mut server = MerkleTree::with_order(4);
        for (k, v) in &setup {
            server.insert(key(k % 256), vec![*v]).unwrap();
        }
        for a in &actions {
            let op = to_op(a);
            let known_root = server.root_digest();
            let vo = VerificationObject::new(prune_for_op(&server, &op));
            let answer = apply_op(&mut server, &op).unwrap();
            let new_root = server.root_digest();
            let verified = verify_response(
                &known_root, 4, &vo, &op, Some(&answer), Some(&new_root),
            ).map_err(|e| TestCaseError::fail(format!("{a:?}: {e}")))?;
            prop_assert_eq!(verified.new_root, new_root);
        }
    }

    /// Tampering with any materialized byte region of a VO (here: entry
    /// values via a rebuilt tree) must change its root digest — the client
    /// would reject it.
    #[test]
    fn digest_binds_content(
        kvs in proptest::collection::btree_map(any::<u16>(), any::<u8>(), 1..60),
        victim_idx in any::<prop::sample::Index>(),
    ) {
        let mut t1 = MerkleTree::with_order(4);
        let mut t2 = MerkleTree::with_order(4);
        let items: Vec<_> = kvs.iter().collect();
        let victim = victim_idx.index(items.len());
        for (i, (k, v)) in items.iter().enumerate() {
            t1.insert(key(**k), vec![**v]).unwrap();
            let tampered = if i == victim { vec![**v ^ 1] } else { vec![**v] };
            t2.insert(key(**k), tampered).unwrap();
        }
        prop_assert_ne!(t1.root_digest(), t2.root_digest());
    }

    /// Point proofs contain the queried key's leaf and verify even for
    /// absent keys (non-membership).
    #[test]
    fn point_proofs_cover_membership_and_absence(
        present in proptest::collection::btree_set(any::<u16>(), 1..200),
        probe in any::<u16>(),
    ) {
        let mut server = MerkleTree::with_order(8);
        for k in &present {
            server.insert(key(*k), b"v".to_vec()).unwrap();
        }
        let root = server.root_digest();
        let op = Op::Get(key(probe));
        let vo = VerificationObject::new(prune_for_op(&server, &op));
        let verified = verify_response(&root, 8, &vo, &op, None, None).unwrap();
        let expect = if present.contains(&probe) {
            OpResult::Value(Some(b"v".to_vec()))
        } else {
            OpResult::Value(None)
        };
        prop_assert_eq!(verified.result, expect);
    }

    /// Insertion order does not affect the set of entries (content
    /// determinism), and deleting everything returns to the canonical empty
    /// digest regardless of history.
    #[test]
    fn history_independence_of_content(
        mut keys in proptest::collection::vec(any::<u16>(), 1..150),
    ) {
        let mut t = MerkleTree::with_order(4);
        for k in &keys {
            t.insert(key(*k), b"x".to_vec()).unwrap();
        }
        keys.sort();
        keys.dedup();
        prop_assert_eq!(t.len(), Some(keys.len()));
        // Delete in a different order than insertion.
        for k in keys.iter().rev() {
            prop_assert!(t.delete(&key(*k)).unwrap().is_some());
        }
        prop_assert_eq!(t.root_digest(), MerkleTree::with_order(4).root_digest());
    }

    /// An `O(1)` Arc-sharing clone and an eager deep copy (codec round-trip,
    /// zero shared nodes) are observationally identical: same answers,
    /// byte-identical proofs, bit-identical root digests, same verify
    /// verdicts — and the frozen original never moves while its clone
    /// diverges through arbitrary splits and merges.
    #[test]
    fn cow_clone_matches_eager_deep_copy(
        setup in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..120),
        actions in proptest::collection::vec(action_strategy(), 1..60),
        order in prop_oneof![Just(4usize), Just(8)],
    ) {
        let mut base = MerkleTree::with_order(order);
        for (k, v) in &setup {
            base.insert(key(k % 256), vec![*v]).unwrap();
        }
        let frozen = base.root_digest();
        let mut shared = base.clone();
        let mut eager = MerkleTree::from_bytes(&base.to_bytes()).unwrap();
        prop_assert_eq!(shared.root_digest(), eager.root_digest());
        for a in &actions {
            let op = to_op(a);
            let known = shared.root_digest();
            let pruned_shared = prune_for_op(&shared, &op);
            let pruned_eager = prune_for_op(&eager, &op);
            prop_assert_eq!(pruned_shared.to_bytes(), pruned_eager.to_bytes());
            let vo = VerificationObject::new(pruned_shared);
            let got_shared = apply_op(&mut shared, &op).unwrap();
            let got_eager = apply_op(&mut eager, &op).unwrap();
            prop_assert_eq!(&got_shared, &got_eager);
            prop_assert_eq!(shared.root_digest(), eager.root_digest());
            let verified = verify_response(
                &known, order, &vo, &op, Some(&got_shared), Some(&shared.root_digest()),
            ).map_err(|e| TestCaseError::fail(format!("{a:?}: {e}")))?;
            prop_assert_eq!(verified.new_root, eager.root_digest());
        }
        // The original is a frozen snapshot: its clone's mutations (COW)
        // must never have reached back into the shared structure.
        prop_assert_eq!(base.root_digest(), frozen);
        base.check_invariants().map_err(TestCaseError::fail)?;
        shared.check_invariants().map_err(TestCaseError::fail)?;
        eager.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(shared.entries().unwrap(), eager.entries().unwrap());
        prop_assert_eq!(base.entries().unwrap().len(), setup.iter()
            .map(|(k, _)| key(k % 256)).collect::<std::collections::BTreeSet<_>>().len());
    }
}

/// With order 4 and dense sequential keys every leaf sits near capacity: a
/// fresh-key Put splits a leaf whose proof neighbours are stubs, and a
/// Delete underflows a leaf that must merge with (or borrow from) a sibling
/// right at a stub boundary. The Arc-sharing clone and the eager deep copy
/// must produce byte-identical proofs and replay to the same new root in
/// every case — including ranges with one or both ends open.
#[test]
fn stub_adjacent_splits_and_merges_replay_identically() {
    let mut base = MerkleTree::with_order(4);
    for k in 0..256u16 {
        base.insert(key(k), vec![k as u8]).unwrap();
    }
    let shared = base.clone();
    let eager_bytes = base.to_bytes();
    for op in [
        Op::Put(key(100), vec![0xFF]),   // overwrite in place
        Op::Put(key(1000), vec![0xFF]),  // fresh key: leaf split beside stubs
        Op::Delete(key(7)),              // underflow: merge/borrow beside stubs
        Op::Range(None, None),           // full scan
        Op::Range(None, Some(key(42))),  // open low end
        Op::Range(Some(key(200)), None), // open high end
    ] {
        let mut s = shared.clone();
        let mut e = MerkleTree::from_bytes(&eager_bytes).unwrap();
        let known = s.root_digest();
        let pruned_shared = prune_for_op(&s, &op);
        let pruned_eager = prune_for_op(&e, &op);
        assert_eq!(pruned_shared.to_bytes(), pruned_eager.to_bytes(), "{op:?}");
        let vo = VerificationObject::new(pruned_shared);
        let got = apply_op(&mut s, &op).unwrap();
        assert_eq!(got, apply_op(&mut e, &op).unwrap(), "{op:?}");
        assert_eq!(s.root_digest(), e.root_digest(), "{op:?}");
        let verified =
            verify_response(&known, 4, &vo, &op, Some(&got), Some(&s.root_digest())).unwrap();
        assert_eq!(verified.new_root, s.root_digest(), "{op:?}");
        // COW isolation: neither replay leaked back into the shared base.
        assert_eq!(shared.root_digest(), known, "{op:?}");
    }
}
