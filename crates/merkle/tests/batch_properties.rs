//! Adversarial property tests for batched verification objects: for an
//! arbitrary honest window, *any* single forged, reordered, or dropped op
//! in the window must fail batch verification, and tampering with the
//! serialized proof must be detected. Mirrors the pruned-VO splice
//! proptests in `tcvs-store`.

use proptest::prelude::*;
use tcvs_merkle::{
    apply_op, prune_for_ops, replay_batch_unanchored, u64_key, verify_batch_response, BatchProof,
    MerkleTree, Op, OpResult, VerifyError,
};

const ORDER: usize = 8;

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key space maximizes same-key collisions inside a window —
    // the hard case for reorder detection (Put/Get on one key do not
    // commute; distinct-key reorders are semantically invisible).
    prop_oneof![
        (0u64..24).prop_map(|k| Op::Get(u64_key(k))),
        ((0u64..24), proptest::collection::vec(any::<u8>(), 0..12))
            .prop_map(|(k, v)| Op::Put(u64_key(k), v)),
    ]
}

fn window_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(), 1..24)
}

/// Builds a populated server, serves the window, and returns the proof,
/// the honest results, and the pre/post roots.
fn serve(
    ops: &[Op],
    prefill: u64,
) -> (
    MerkleTree,
    BatchProof,
    Vec<OpResult>,
    tcvs_crypto::Digest,
    tcvs_crypto::Digest,
) {
    let mut server = MerkleTree::with_order(ORDER);
    for i in 0..prefill {
        server.insert(u64_key(i % 24), vec![i as u8; 9]).unwrap();
    }
    let root0 = server.root_digest();
    let proof = BatchProof::new(prune_for_ops(&server, ops));
    let results: Vec<OpResult> = ops
        .iter()
        .map(|op| apply_op(&mut server, op).expect("full tree"))
        .collect();
    let root1 = server.root_digest();
    (server, proof, results, root0, root1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Honest windows always verify, anchored and unanchored, and the
    /// final replayed root equals the server's post-state root.
    #[test]
    fn honest_window_verifies(ops in window_strategy(), prefill in 0u64..40) {
        let (_, proof, results, root0, root1) = serve(&ops, prefill);
        let (old_root, steps) =
            replay_batch_unanchored(ORDER, &proof, &ops, Some(&results)).unwrap();
        prop_assert_eq!(old_root, root0);
        prop_assert_eq!(steps.last().unwrap().new_root, root1);
        verify_batch_response(&root0, ORDER, &proof, &ops, Some(&results), Some(&root1))
            .unwrap();
    }

    /// Forging any single claimed result in the window is detected.
    #[test]
    fn forged_result_detected(
        ops in window_strategy(),
        prefill in 0u64..40,
        pick in any::<prop::sample::Index>(),
    ) {
        let (_, proof, mut results, root0, root1) = serve(&ops, prefill);
        let i = pick.index(results.len());
        // 13 bytes, one longer than any generated value, so the forgery
        // can never coincide with the honest result.
        let forged = match &results[i] {
            OpResult::Value(_) => OpResult::Value(Some(vec![0xEE; 13])),
            _ => OpResult::Replaced(Some(vec![0xEE; 13])),
        };
        results[i] = forged;
        prop_assert_eq!(
            replay_batch_unanchored(ORDER, &proof, &ops, Some(&results)).unwrap_err(),
            VerifyError::AnswerMismatch
        );
        prop_assert_eq!(
            verify_batch_response(&root0, ORDER, &proof, &ops, Some(&results), Some(&root1))
                .unwrap_err(),
            VerifyError::AnswerMismatch
        );
    }

    /// Dropping any single claimed result from the window is detected.
    #[test]
    fn dropped_result_detected(
        ops in window_strategy(),
        prefill in 0u64..40,
        pick in any::<prop::sample::Index>(),
    ) {
        let (_, proof, mut results, root0, root1) = serve(&ops, prefill);
        let i = pick.index(results.len());
        results.remove(i);
        prop_assert_eq!(
            replay_batch_unanchored(ORDER, &proof, &ops, Some(&results)).unwrap_err(),
            VerifyError::BatchLengthMismatch
        );
        prop_assert_eq!(
            verify_batch_response(&root0, ORDER, &proof, &ops, Some(&results), Some(&root1))
                .unwrap_err(),
            VerifyError::BatchLengthMismatch
        );
    }

    /// Reordering the claimed results (swapping two adjacent
    /// non-commuting entries) is detected: either the per-slot results
    /// disagree with the replay, or — when the swapped results are
    /// byte-identical — the responses are semantically interchangeable
    /// and verification legitimately succeeds.
    #[test]
    fn reordered_results_detected_unless_identical(
        ops in window_strategy(),
        prefill in 0u64..40,
        pick in any::<prop::sample::Index>(),
    ) {
        if ops.len() < 2 {
            return Ok(());
        }
        let (_, proof, mut results, _, _) = serve(&ops, prefill);
        let i = pick.index(results.len() - 1);
        if results[i] == results[i + 1] {
            return Ok(()); // interchangeable responses: no splice to detect
        }
        results.swap(i, i + 1);
        prop_assert_eq!(
            replay_batch_unanchored(ORDER, &proof, &ops, Some(&results)).unwrap_err(),
            VerifyError::AnswerMismatch
        );
    }

    /// Splicing the serialized proof — flipping any single bit — is
    /// detected: either the decode rejects it outright, or the recomputed
    /// root no longer matches the anchored root.
    #[test]
    fn spliced_proof_bytes_detected(
        ops in window_strategy(),
        prefill in 1u64..40,
        bit in any::<prop::sample::Index>(),
    ) {
        let (_, proof, results, root0, root1) = serve(&ops, prefill);
        let mut bytes = proof.to_bytes();
        let b = bit.index(bytes.len() * 8);
        bytes[b / 8] ^= 1 << (b % 8);
        match BatchProof::from_bytes(&bytes) {
            Err(_) => {} // decode-time rejection
            Ok(tampered) => {
                let out = verify_batch_response(
                    &root0, ORDER, &tampered, &ops, Some(&results), Some(&root1),
                );
                prop_assert!(out.is_err(), "tampered proof verified");
            }
        }
    }

}

/// A proof whose union omits one op's key path (on a leaf far from every
/// covered key) cannot replay that op: the replay hits a stub.
#[test]
fn missing_path_is_incomplete_proof() {
    let mut server = MerkleTree::with_order(ORDER);
    for i in 0..400u64 {
        server.insert(u64_key(i * 10), vec![i as u8; 9]).unwrap();
    }
    let root0 = server.root_digest();
    let ops = vec![
        Op::Get(u64_key(50)),
        Op::Put(u64_key(60), b"x".to_vec()),
        Op::Get(u64_key(3000)), // far-away leaf, left out of the proof
    ];
    let proof = BatchProof::new(prune_for_ops(&server, &ops[..2]));
    let results: Vec<OpResult> = ops
        .iter()
        .map(|op| apply_op(&mut server, op).expect("full tree"))
        .collect();
    let err = verify_batch_response(&root0, ORDER, &proof, &ops, Some(&results), None).unwrap_err();
    assert_eq!(err, VerifyError::IncompleteProof);
}
