//! Structural tests for the Merkle B+-tree: growth, shrinkage, invariants,
//! and proof behaviour across orders and shapes.

use tcvs_merkle::{apply_op, prune_for_op, u64_key, MerkleTree, Op, TreeError};

fn build(order: usize, keys: impl IntoIterator<Item = u64>) -> MerkleTree {
    let mut t = MerkleTree::with_order(order);
    for k in keys {
        t.insert(u64_key(k), format!("value-{k}").into_bytes())
            .unwrap();
    }
    t
}

#[test]
fn empty_tree_basics() {
    let t = MerkleTree::with_order(4);
    assert!(t.is_empty());
    assert_eq!(t.len(), Some(0));
    assert_eq!(t.get(&u64_key(0)).unwrap(), None);
    assert_eq!(t.entries().unwrap(), vec![]);
    t.check_invariants().unwrap();
}

#[test]
fn empty_trees_share_root_digest() {
    assert_eq!(
        MerkleTree::with_order(4).root_digest(),
        MerkleTree::with_order(4).root_digest()
    );
}

#[test]
fn sequential_insert_then_read_back() {
    for order in [4, 5, 8, 16, 64] {
        let t = build(order, 0..500);
        assert_eq!(t.len(), Some(500));
        t.check_invariants()
            .unwrap_or_else(|e| panic!("order {order}: {e}"));
        for k in 0..500 {
            assert_eq!(
                t.get(&u64_key(k)).unwrap(),
                Some(&format!("value-{k}").into_bytes()),
                "order {order} key {k}"
            );
        }
        assert_eq!(t.get(&u64_key(500)).unwrap(), None);
    }
}

#[test]
fn reverse_insert_order_same_content() {
    let a = build(8, 0..200);
    let b = build(8, (0..200).rev());
    // Structure (and hence digest) may differ with insertion order, but the
    // entries must be identical and both must satisfy invariants.
    assert_eq!(a.entries().unwrap(), b.entries().unwrap());
    a.check_invariants().unwrap();
    b.check_invariants().unwrap();
}

#[test]
fn update_changes_root_digest() {
    let mut t = build(8, 0..50);
    let r0 = t.root_digest();
    t.insert(u64_key(25), b"different".to_vec()).unwrap();
    assert_ne!(t.root_digest(), r0);
    assert_eq!(t.len(), Some(50), "replace must not change len");
}

#[test]
fn identical_content_identical_digest() {
    // Same insertion sequence => identical digests (determinism).
    let a = build(8, [5, 1, 9, 3, 7]);
    let b = build(8, [5, 1, 9, 3, 7]);
    assert_eq!(a.root_digest(), b.root_digest());
}

#[test]
fn delete_everything_returns_to_empty_digest() {
    let mut t = build(4, 0..300);
    let empty_digest = MerkleTree::with_order(4).root_digest();
    for k in 0..300 {
        assert_eq!(
            t.delete(&u64_key(k)).unwrap(),
            Some(format!("value-{k}").into_bytes()),
            "key {k}"
        );
        t.check_invariants()
            .unwrap_or_else(|e| panic!("after {k}: {e}"));
    }
    assert!(t.is_empty());
    assert_eq!(t.root_digest(), empty_digest);
}

#[test]
fn delete_in_reverse_and_random_orders() {
    let n = 256u64;
    // Reverse order.
    let mut t = build(4, 0..n);
    for k in (0..n).rev() {
        t.delete(&u64_key(k)).unwrap().expect("present");
        t.check_invariants().unwrap();
    }
    assert!(t.is_empty());

    // Deterministic shuffle (multiplicative permutation mod 257).
    let mut t = build(4, 0..n);
    for i in 1..=n {
        let k = (i * 131) % 257;
        if k < n {
            t.delete(&u64_key(k)).unwrap();
            t.check_invariants().unwrap();
        }
    }
}

#[test]
fn delete_absent_key_is_noop() {
    let mut t = build(4, (0..100).map(|k| k * 2));
    let r0 = t.root_digest();
    assert_eq!(t.delete(&u64_key(51)).unwrap(), None);
    assert_eq!(t.root_digest(), r0);
    assert_eq!(t.len(), Some(100));
}

#[test]
fn range_queries() {
    let t = build(8, (0..100).map(|k| k * 10));
    // Closed-open interval semantics.
    let es = t.range(Some(&u64_key(100)), Some(&u64_key(150))).unwrap();
    let keys: Vec<u64> = es
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k[..8].try_into().unwrap()))
        .collect();
    assert_eq!(keys, vec![100, 110, 120, 130, 140]);

    // Bounds not on existing keys.
    let es = t.range(Some(&u64_key(101)), Some(&u64_key(141))).unwrap();
    assert_eq!(es.len(), 4);

    // Unbounded ends.
    assert_eq!(t.range(None, Some(&u64_key(30))).unwrap().len(), 3);
    assert_eq!(t.range(Some(&u64_key(970)), None).unwrap().len(), 3);
    assert_eq!(t.range(None, None).unwrap().len(), 100);

    // Empty and inverted ranges.
    assert!(t
        .range(Some(&u64_key(55)), Some(&u64_key(56)))
        .unwrap()
        .is_empty());
    assert!(t
        .range(Some(&u64_key(500)), Some(&u64_key(100)))
        .unwrap()
        .is_empty());
}

#[test]
fn variable_length_byte_keys() {
    let mut t = MerkleTree::with_order(4);
    let keys: Vec<&[u8]> = vec![
        b"",
        b"a",
        b"aa",
        b"ab",
        b"b",
        b"ba",
        b"src/main.rs",
        b"src/lib.rs",
        b"Common.h",
    ];
    for (i, k) in keys.iter().enumerate() {
        t.insert(k.to_vec(), vec![i as u8]).unwrap();
    }
    t.check_invariants().unwrap();
    // Lexicographic order.
    let entries = t.entries().unwrap();
    let mut sorted: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
    sorted.sort();
    let got: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
    assert_eq!(got, sorted);
    assert_eq!(t.get(b"src/main.rs").unwrap(), Some(&vec![6u8]));
}

#[test]
fn proof_sizes_are_logarithmic() {
    // Materialized proof nodes for a point op must track tree height, not n.
    let mut sizes = Vec::new();
    for exp in [6u32, 10, 14] {
        let n = 1u64 << exp;
        let t = build(16, 0..n);
        let vo = t.prune_for_point(&u64_key(n / 2));
        sizes.push(vo.materialized_nodes());
    }
    // 2^14 = 256x more entries than 2^6, yet proof grows by only a few nodes.
    assert!(sizes[2] <= sizes[0] + 6, "sizes {sizes:?}");
    // And proofs are vastly smaller than the tree itself.
    let t = build(16, 0..(1 << 14));
    let vo = t.prune_for_point(&u64_key(99));
    assert!(vo.materialized_nodes() * 50 < t.materialized_nodes());
}

#[test]
fn pruned_tree_replays_every_update_shape() {
    // Exercise splits (dense small order) and merges/borrows (deletes) via
    // replay equivalence: pruned-apply == full-apply for every op.
    let mut server = build(4, (0..300).map(|k| k * 3));
    // Deterministic mixed op sequence.
    for i in 0..600u64 {
        let k = (i * 7919) % 1000;
        let op = match i % 4 {
            0 => Op::Put(u64_key(k), format!("w{i}").into_bytes()),
            1 => Op::Delete(u64_key((i * 13) % 900)),
            2 => Op::Get(u64_key(k)),
            _ => Op::Range(Some(u64_key(k)), Some(u64_key(k + 40))),
        };
        let mut pruned = prune_for_op(&server, &op);
        assert_eq!(pruned.root_digest(), server.root_digest());
        let r_replay = apply_op(&mut pruned, &op).unwrap_or_else(|e| panic!("op {i} {op:?}: {e}"));
        let r_server = apply_op(&mut server, &op).unwrap();
        assert_eq!(r_replay, r_server, "op {i}");
        assert_eq!(pruned.root_digest(), server.root_digest(), "op {i}");
        server.check_invariants().unwrap();
    }
}

#[test]
fn pruned_tree_rejects_out_of_scope_ops() {
    let t = build(8, 0..500);
    let pruned = t.prune_for_point(&u64_key(10));
    // Reading a far-away key must hit a stub.
    assert_eq!(
        pruned.get(&u64_key(400)).unwrap_err(),
        TreeError::IncompleteProof
    );
    // Full scans on a pruned tree must fail too.
    assert_eq!(pruned.entries().unwrap_err(), TreeError::IncompleteProof);
}

#[test]
fn pruned_range_skips_unrelated_stubs() {
    let t = build(8, 0..1000);
    let pruned = t.prune_for_range(Some(&u64_key(100)), Some(&u64_key(120)));
    let es = pruned
        .range(Some(&u64_key(100)), Some(&u64_key(120)))
        .unwrap();
    assert_eq!(es.len(), 20);
    // The proof is still small.
    assert!(pruned.materialized_nodes() < 30);
}

#[test]
fn min_order_is_enforced() {
    let result = std::panic::catch_unwind(|| MerkleTree::with_order(3));
    assert!(result.is_err());
}

#[test]
fn clone_is_deep() {
    let mut a = build(8, 0..50);
    let b = a.clone();
    a.insert(u64_key(7), b"mutated".to_vec()).unwrap();
    assert_ne!(a.root_digest(), b.root_digest());
    assert_eq!(b.get(&u64_key(7)).unwrap(), Some(&b"value-7".to_vec()));
}

#[test]
fn large_values_round_trip() {
    let mut t = MerkleTree::with_order(4);
    let big = vec![0xABu8; 1 << 16];
    t.insert(b"blob".to_vec(), big.clone()).unwrap();
    assert_eq!(t.get(b"blob").unwrap(), Some(&big));
    assert!(t.encoded_size() > 1 << 16);
}
