//! Ad-hoc profile of the point-update hot path: where do the microseconds
//! go? Run with `cargo run --release -p tcvs-merkle --example profile_hotpath`.

use std::time::Instant;

use tcvs_merkle::{apply_op, prune_for_op, u64_key, MerkleTree, Op, VerificationObject};

fn main() {
    let n = 1u64 << 14;
    let iters = 20000u64;
    let mut tree = MerkleTree::with_order(16);
    for i in 0..n {
        tree.insert(u64_key(i), vec![0xAB; 24]).unwrap();
    }

    // Prune alone.
    let t = Instant::now();
    for i in 0..iters {
        let op = Op::Put(u64_key((i * 7919) % n), vec![0u8; 24]);
        std::hint::black_box(prune_for_op(&tree, &op));
    }
    println!(
        "prune only:      {:>8.2} ns/op",
        t.elapsed().as_nanos() as f64 / iters as f64
    );

    // Apply alone (no proof held).
    let t = Instant::now();
    for i in 0..iters {
        let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; 24]);
        apply_op(&mut tree, &op).unwrap();
        std::hint::black_box(tree.root_digest());
    }
    println!(
        "apply only:      {:>8.2} ns/op",
        t.elapsed().as_nanos() as f64 / iters as f64
    );

    // Full server step: prune + apply while the proof is alive.
    let t = Instant::now();
    for i in 0..iters {
        let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; 24]);
        let vo = VerificationObject::new(prune_for_op(&tree, &op));
        apply_op(&mut tree, &op).unwrap();
        std::hint::black_box((tree.root_digest(), vo.encoded_size()));
    }
    println!(
        "prune+apply:     {:>8.2} ns/op",
        t.elapsed().as_nanos() as f64 / iters as f64
    );

    // Digest recompute cost in isolation: rehash one leaf-sized payload.
    let payload = vec![0u8; 16 * 32];
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(tcvs_crypto::sha256(&payload));
    }
    println!(
        "one 512B hash:   {:>8.2} ns",
        t.elapsed().as_nanos() as f64 / iters as f64
    );
}
