//! # tcvs-merkle
//!
//! The authenticated dictionary of *"Trusted CVS"* §4.1: a **Merkle
//! B+-tree** — a B+-tree whose every node carries a digest; a leaf digest
//! hashes the leaf's data, an internal digest hashes the children's digests
//! (plus, here, the separator keys). The root digest `M(D)` commits to the
//! entire database state.
//!
//! A server operation is proven with a **verification object** `v(Q, D)`: a
//! pruned copy of the pre-state tree containing every node the operation
//! touches, with all other subtrees replaced by digest stubs. The client
//! checks the proof's root digest against its known `M(D)`, then *replays*
//! the operation on the pruned tree to obtain the authenticated answer and —
//! for updates — the new root digest `M(D')`. Proof sizes are `O(log n)`
//! (experiment E1 measures this).
//!
//! ```
//! use tcvs_merkle::{MerkleTree, Op, apply_op, prune_for_op,
//!                   VerificationObject, verify_response};
//!
//! // Server side.
//! let mut server = MerkleTree::new();
//! server.insert(b"Common.h".to_vec(), b"#define X 1".to_vec()).unwrap();
//! let known_root = server.root_digest();
//!
//! let op = Op::Put(b"Common.h".to_vec(), b"#define X 2".to_vec());
//! let vo = VerificationObject::new(prune_for_op(&server, &op));
//! let answer = apply_op(&mut server, &op).unwrap();
//! let new_root = server.root_digest();
//!
//! // Client side: replay and verify.
//! let verified = verify_response(
//!     &known_root, server.order(), &vo, &op, Some(&answer), Some(&new_root),
//! ).unwrap();
//! assert_eq!(verified.new_root, new_root);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod chunk;
mod codec;
mod error;
mod grove;
mod node;
mod op;
mod tree;
mod verify;

pub use batch::{
    batchable, prune_for_ops, replay_batch_unanchored, verify_batch_response, BatchProof, BatchStep,
};
pub use chunk::{AdmitOutcome, ChunkAssembler, ChunkError, ChunkManifest, ChunkRange, ChunkSource};
pub use codec::CodecError;
pub use error::{TreeError, VerifyError};
pub use grove::{grove_root, verify_grove_response, GroveSpine, GroveVerified, GROVE_FANOUT};
pub use node::{u64_key, Key, Value};
pub use op::{apply_op, prune_for_op, Op, OpResult};
pub use tree::{MerkleTree, DEFAULT_ORDER, MIN_ORDER};
pub use verify::{replay_unanchored, verify_response, VerificationObject, Verified};
