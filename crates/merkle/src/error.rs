//! Error types for Merkle B+-tree operations and proof verification.

use std::fmt;

/// Errors raised while operating on a (possibly pruned) Merkle B+-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// The operation needed the contents of a pruned-away (stub) subtree.
    ///
    /// On a server-side full tree this is impossible; on a client-side
    /// verification object it means the server sent an incomplete proof —
    /// which the protocols treat as deviation.
    IncompleteProof,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::IncompleteProof => {
                write!(
                    f,
                    "operation reached a pruned (stub) subtree: proof incomplete"
                )
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors raised by client-side verification of a server response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The verification object's root digest does not match the root digest
    /// the client knows — the server's proof is against the wrong state.
    RootMismatch,
    /// The proof did not contain the subtrees needed to replay the operation.
    IncompleteProof,
    /// The server's claimed answer disagrees with the replayed answer.
    AnswerMismatch,
    /// The server's claimed new root digest disagrees with the replayed one.
    NewRootMismatch,
    /// The verification object uses a different branching order than agreed.
    OrderMismatch,
    /// A batched response's claimed result list does not match the window
    /// length — an op was dropped from (or spliced into) the window.
    BatchLengthMismatch,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerifyError::RootMismatch => "verification object root digest mismatch",
            VerifyError::IncompleteProof => "verification object incomplete",
            VerifyError::AnswerMismatch => "server answer disagrees with replay",
            VerifyError::NewRootMismatch => "server new-root disagrees with replay",
            VerifyError::OrderMismatch => "verification object branching order mismatch",
            VerifyError::BatchLengthMismatch => "batched result count disagrees with window",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VerifyError {}

impl From<TreeError> for VerifyError {
    fn from(e: TreeError) -> VerifyError {
        match e {
            TreeError::IncompleteProof => VerifyError::IncompleteProof,
        }
    }
}
