//! Chunked verified state sync: slicing a Merkle B+-tree into fixed-budget,
//! independently verifiable chunks and reassembling a byte-identical tree
//! from them.
//!
//! A late joiner (or a restarted shard) knows only the published root digest
//! — the *anchor*. The server slices its full tree into chunks of whole
//! leaves grouped under a byte budget; each chunk is shipped as a **pruned
//! proof** ([`MerkleTree::prune_for_range`] + [`MerkleTree::to_bytes`]) that
//! materializes exactly that key range plus the digest-stub spine connecting
//! it to the root. The receiver verifies every chunk *in isolation* against
//! the anchor before admitting it:
//!
//! 1. decode ([`MerkleTree::from_bytes`] recomputes every digest — cached
//!    digests from the wire are never trusted);
//! 2. the recomputed root must equal the anchor (rejects forged values and
//!    chunks spliced in from a different snapshot);
//! 3. the materialized leaf entries must be exactly the manifest range for
//!    that chunk index (rejects chunks delivered under the wrong index).
//!
//! Admitted chunks are grafted together — every overlap digest-checked —
//! into a single tree; [`ChunkAssembler::finish`] demands no stub remains
//! and that a full bottom-up digest recomputation reproduces the anchor. A
//! forged, truncated, reordered, or cross-snapshot chunk is therefore
//! detected at the exact offending chunk, and a completed assembly is
//! byte-identical (structure and entries) to the server's snapshot.
//!
//! The design follows grovedb-merk's chunk-proof replication: restoring
//! state is just verifying a sequence of range proofs against one trusted
//! root.

use std::sync::Arc;

use tcvs_crypto::Digest;

use crate::codec::{CodecError, Cursor};
use crate::node::{Key, Node};
use crate::tree::{MerkleTree, MIN_ORDER};

/// Wire magic for serialized chunk manifests ("Trusted CVS Bootstrap").
const MANIFEST_MAGIC: &[u8; 4] = b"TCVB";
/// Manifest wire-format version.
const MANIFEST_VERSION: u8 = 1;

/// Errors from slicing, verifying, or assembling chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// The chunk payload failed to decode as a serialized tree (truncated,
    /// bit-flipped, malformed, or carrying an unsatisfiable digest).
    Codec(CodecError),
    /// The manifest is internally inconsistent.
    BadManifest(&'static str),
    /// A chunk index outside the manifest's range table.
    UnknownChunk(u32),
    /// The chunk payload's tree order differs from the manifest's.
    OrderMismatch {
        /// Order the manifest declares.
        expected: usize,
        /// Order the payload decoded with.
        got: usize,
    },
    /// The chunk's recomputed root digest does not equal the anchor: a
    /// forged value, or a chunk spliced in from a different snapshot.
    AnchorMismatch {
        /// The offending chunk index.
        index: u32,
    },
    /// The chunk's materialized entries are not exactly the manifest range
    /// for this index (e.g. a valid chunk delivered under the wrong index).
    RangeMismatch {
        /// The offending chunk index.
        index: u32,
        /// What about the range was wrong.
        reason: &'static str,
    },
    /// Two admitted chunks disagree about an overlapping node. Unreachable
    /// for chunks that individually anchor to the same root, kept as a
    /// defense-in-depth check.
    GraftConflict(&'static str),
    /// [`ChunkAssembler::finish`] called before every chunk was admitted.
    Incomplete {
        /// How many chunks are still missing.
        missing: usize,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Codec(e) => write!(f, "chunk payload: {e}"),
            ChunkError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            ChunkError::UnknownChunk(i) => write!(f, "unknown chunk index {i}"),
            ChunkError::OrderMismatch { expected, got } => {
                write!(f, "order mismatch: manifest {expected}, payload {got}")
            }
            ChunkError::AnchorMismatch { index } => {
                write!(f, "chunk {index} does not anchor to the expected root")
            }
            ChunkError::RangeMismatch { index, reason } => {
                write!(f, "chunk {index} range mismatch: {reason}")
            }
            ChunkError::GraftConflict(m) => write!(f, "graft conflict: {m}"),
            ChunkError::Incomplete { missing } => {
                write!(f, "assembly incomplete: {missing} chunk(s) missing")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

impl From<CodecError> for ChunkError {
    fn from(e: CodecError) -> ChunkError {
        ChunkError::Codec(e)
    }
}

/// The closed key interval one chunk covers, and how many entries it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRange {
    /// First key in the chunk (inclusive).
    pub lo: Key,
    /// Last key in the chunk (inclusive).
    pub hi: Key,
    /// Number of entries the chunk materializes.
    pub entries: u32,
}

/// The table of contents for one chunked snapshot: the anchor root, the tree
/// order, the total entry count, and the per-chunk key ranges.
///
/// The manifest itself is *untrusted* input — a bootstrapping client checks
/// `anchor` against the independently published root and relies on the
/// per-chunk verification plus [`ChunkAssembler::finish`]'s final recompute
/// gate, never on the manifest's honesty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkManifest {
    /// Root digest every chunk must anchor to.
    pub anchor: Digest,
    /// B+-tree order of the snapshot.
    pub order: u32,
    /// Total number of entries across all chunks.
    pub entry_count: u64,
    /// Per-chunk closed key ranges, sorted and disjoint.
    pub ranges: Vec<ChunkRange>,
}

impl ChunkManifest {
    /// Number of chunks this manifest describes.
    pub fn num_chunks(&self) -> u32 {
        self.ranges.len() as u32
    }

    /// Structural self-consistency: order bounds, sorted disjoint non-empty
    /// ranges, entry counts summing to `entry_count`, and the empty-tree
    /// special case (`entry_count == 0` iff there are no chunks).
    pub fn validate(&self) -> Result<(), ChunkError> {
        if (self.order as usize) < MIN_ORDER {
            return Err(ChunkError::BadManifest("order below minimum"));
        }
        if self.ranges.is_empty() != (self.entry_count == 0) {
            return Err(ChunkError::BadManifest(
                "entry count and chunk list disagree about emptiness",
            ));
        }
        let mut total: u64 = 0;
        for (i, r) in self.ranges.iter().enumerate() {
            if r.entries == 0 {
                return Err(ChunkError::BadManifest("empty chunk range"));
            }
            if r.lo > r.hi {
                return Err(ChunkError::BadManifest("range lo > hi"));
            }
            if i > 0 && self.ranges[i - 1].hi >= r.lo {
                return Err(ChunkError::BadManifest("ranges unsorted or overlapping"));
            }
            total = total
                .checked_add(u64::from(r.entries))
                .ok_or(ChunkError::BadManifest("entry count overflow"))?;
        }
        if total != self.entry_count {
            return Err(ChunkError::BadManifest("entry counts do not sum"));
        }
        Ok(())
    }

    /// Serializes the manifest (`TCVB` magic, version, order, entry count,
    /// anchor, then length-prefixed ranges).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(49 + self.ranges.len() * 24);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.order.to_le_bytes());
        out.extend_from_slice(&self.entry_count.to_le_bytes());
        out.extend_from_slice(self.anchor.as_bytes());
        out.extend_from_slice(&(self.ranges.len() as u32).to_le_bytes());
        for r in &self.ranges {
            out.extend_from_slice(&(r.lo.len() as u32).to_le_bytes());
            out.extend_from_slice(&r.lo);
            out.extend_from_slice(&(r.hi.len() as u32).to_le_bytes());
            out.extend_from_slice(&r.hi);
            out.extend_from_slice(&r.entries.to_le_bytes());
        }
        out
    }

    /// Decodes and validates a serialized manifest. Any truncation, bad
    /// framing, or structural inconsistency is rejected without panicking.
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkManifest, ChunkError> {
        let mut c = Cursor::new(bytes);
        if c.take(4)? != MANIFEST_MAGIC {
            return Err(ChunkError::BadManifest("bad magic"));
        }
        if c.u8()? != MANIFEST_VERSION {
            return Err(ChunkError::BadManifest("unsupported version"));
        }
        let order = c.u32()?;
        let entry_count = c.u64()?;
        let anchor = c.digest()?;
        let n = c.u32()? as usize;
        let mut ranges = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let lo = c.bytes()?.to_vec();
            let hi = c.bytes()?.to_vec();
            let entries = c.u32()?;
            ranges.push(ChunkRange { lo, hi, entries });
        }
        if !c.at_end() {
            return Err(ChunkError::Codec(CodecError::TrailingBytes));
        }
        let m = ChunkManifest {
            anchor,
            order,
            entry_count,
            ranges,
        };
        m.validate()?;
        Ok(m)
    }
}

/// Server side: slices a full tree into chunks of whole leaves grouped under
/// a byte budget, and serves each chunk as a root-anchored pruned proof.
///
/// Holds a copy-on-write clone of the snapshot (an `Arc` root pointer), so
/// a source stays consistent even while the live tree moves on.
pub struct ChunkSource {
    tree: MerkleTree,
    manifest: ChunkManifest,
}

impl ChunkSource {
    /// Slices `tree` into chunks whose *payload* encodings target
    /// `budget_bytes`. Whole leaves are never split: a chunk holds at least
    /// one leaf, so a single oversized leaf yields an oversized chunk rather
    /// than an error. Fails on a pruned tree (only full snapshots can be
    /// served).
    pub fn new(tree: &MerkleTree, budget_bytes: usize) -> Result<ChunkSource, ChunkError> {
        if tree.is_pruned() {
            return Err(ChunkError::BadManifest("source tree is pruned"));
        }
        let mut leaves = Vec::new();
        collect_leaf_spans(tree.root_ref(), &mut leaves);
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < leaves.len() {
            let mut j = i;
            let mut bytes = leaves[i].bytes;
            let mut entries = u64::from(leaves[i].entries);
            while j + 1 < leaves.len() && bytes + leaves[j + 1].bytes <= budget_bytes {
                j += 1;
                bytes += leaves[j].bytes;
                entries += u64::from(leaves[j].entries);
            }
            ranges.push(ChunkRange {
                lo: leaves[i].lo.clone(),
                hi: leaves[j].hi.clone(),
                entries: u32::try_from(entries)
                    .map_err(|_| ChunkError::BadManifest("chunk entry count overflow"))?,
            });
            i = j + 1;
        }
        let manifest = ChunkManifest {
            anchor: tree.root_digest(),
            order: tree.order() as u32,
            entry_count: tree.root_ref().entry_count() as u64,
            ranges,
        };
        manifest.validate()?;
        Ok(ChunkSource {
            tree: tree.clone(),
            manifest,
        })
    }

    /// The manifest describing this source's chunks.
    pub fn manifest(&self) -> &ChunkManifest {
        &self.manifest
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> u32 {
        self.manifest.num_chunks()
    }

    /// Encodes chunk `index`: a pruned proof materializing exactly that
    /// chunk's key range, anchored to the snapshot root. `None` for an
    /// out-of-range index.
    pub fn chunk(&self, index: u32) -> Option<Vec<u8>> {
        let r = self.manifest.ranges.get(index as usize)?;
        Some(
            self.tree
                .prune_for_range(Some(&r.lo), Some(&r.hi))
                .to_bytes(),
        )
    }
}

/// One leaf's span during slicing: its key interval, entry count, and
/// approximate encoded size.
struct LeafSpan {
    lo: Key,
    hi: Key,
    entries: u32,
    bytes: usize,
}

fn collect_leaf_spans(node: &Node, out: &mut Vec<LeafSpan>) {
    match node {
        Node::Stub(_) => {}
        Node::Leaf { entries, .. } => {
            if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
                out.push(LeafSpan {
                    lo: first.key.clone(),
                    hi: last.key.clone(),
                    entries: entries.len() as u32,
                    bytes: node.encoded_size(),
                });
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                collect_leaf_spans(c, out);
            }
        }
    }
}

/// Whether [`ChunkAssembler::admit`] actually consumed the chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// First delivery: the chunk verified and was grafted in.
    Admitted,
    /// The chunk verified but this index was already admitted; nothing
    /// changed. (A *forged* duplicate still errors — verification runs
    /// before deduplication.)
    Duplicate,
}

/// Client side: verifies chunks against the anchor and assembles the full
/// tree. Out-of-order and duplicate delivery are tolerated; any forged,
/// truncated, reordered, or cross-snapshot chunk is rejected at
/// [`ChunkAssembler::admit`] time with the offending index.
pub struct ChunkAssembler {
    manifest: ChunkManifest,
    admitted: Vec<bool>,
    root: Arc<Node>,
}

impl ChunkAssembler {
    /// Starts an assembly for `manifest` (validated first). The in-progress
    /// tree begins as a single stub carrying the anchor.
    pub fn new(manifest: ChunkManifest) -> Result<ChunkAssembler, ChunkError> {
        manifest.validate()?;
        let admitted = vec![false; manifest.ranges.len()];
        let root = Arc::new(Node::Stub(manifest.anchor));
        Ok(ChunkAssembler {
            manifest,
            admitted,
            root,
        })
    }

    /// The manifest this assembly is working from.
    pub fn manifest(&self) -> &ChunkManifest {
        &self.manifest
    }

    /// Chunk indices not yet admitted, ascending.
    pub fn missing(&self) -> Vec<u32> {
        self.admitted
            .iter()
            .enumerate()
            .filter(|(_, a)| !**a)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// True once every chunk has been admitted.
    pub fn is_complete(&self) -> bool {
        self.admitted.iter().all(|a| *a)
    }

    /// Verifies chunk `index` and grafts it into the assembly. Verification
    /// always runs in full — decode with digest recomputation, order check,
    /// anchor check, strict range check — before the duplicate shortcut, so
    /// a forged payload for an already-admitted index still errors.
    pub fn admit(&mut self, index: u32, bytes: &[u8]) -> Result<AdmitOutcome, ChunkError> {
        let range = self
            .manifest
            .ranges
            .get(index as usize)
            .ok_or(ChunkError::UnknownChunk(index))?;
        let chunk = MerkleTree::from_bytes(bytes)?;
        if chunk.order() != self.manifest.order as usize {
            return Err(ChunkError::OrderMismatch {
                expected: self.manifest.order as usize,
                got: chunk.order(),
            });
        }
        // `from_bytes` recomputed every materialized digest bottom-up, so
        // this equality means the materialized content genuinely hangs off
        // the anchor — a value forgery or a chunk from another snapshot
        // lands here.
        if chunk.root_digest() != self.manifest.anchor {
            return Err(ChunkError::AnchorMismatch { index });
        }
        // Strict range check: the materialized entries must be exactly this
        // chunk's manifest range. Anchoring already proves the entries are
        // *true* data; this pins them to the *right chunk index*, so a valid
        // chunk replayed under another index is rejected.
        let mut keys = Vec::with_capacity(range.entries as usize);
        materialized_keys(chunk.root_ref(), &mut keys);
        if keys.len() != range.entries as usize {
            return Err(ChunkError::RangeMismatch {
                index,
                reason: "entry count differs from manifest",
            });
        }
        match (keys.first(), keys.last()) {
            (Some(first), Some(last)) => {
                if *first != range.lo.as_slice() {
                    return Err(ChunkError::RangeMismatch {
                        index,
                        reason: "first key differs from manifest lo",
                    });
                }
                if *last != range.hi.as_slice() {
                    return Err(ChunkError::RangeMismatch {
                        index,
                        reason: "last key differs from manifest hi",
                    });
                }
            }
            _ => {
                return Err(ChunkError::RangeMismatch {
                    index,
                    reason: "chunk materializes no entries",
                })
            }
        }
        if self.admitted[index as usize] {
            return Ok(AdmitOutcome::Duplicate);
        }
        self.root = graft(&self.root, chunk.root_arc())?;
        self.admitted[index as usize] = true;
        Ok(AdmitOutcome::Admitted)
    }

    /// Finishes the assembly: every chunk admitted, no stub left, entry
    /// count as promised, and — the final gate — a full bottom-up digest
    /// recomputation of the assembled tree must reproduce the anchor.
    /// Returns the complete tree, byte-identical to the source snapshot.
    pub fn finish(self) -> Result<MerkleTree, ChunkError> {
        let missing = self.admitted.iter().filter(|a| !**a).count();
        if missing > 0 {
            return Err(ChunkError::Incomplete { missing });
        }
        let order = self.manifest.order as usize;
        if self.manifest.entry_count == 0 {
            let tree = MerkleTree::with_order(order);
            if tree.root_digest() != self.manifest.anchor {
                return Err(ChunkError::BadManifest("anchor is not the empty tree"));
            }
            return Ok(tree);
        }
        if self.root.contains_stub() {
            return Err(ChunkError::BadManifest(
                "manifest ranges do not cover the tree",
            ));
        }
        let entry_count = self.root.entry_count();
        if entry_count as u64 != self.manifest.entry_count {
            return Err(ChunkError::BadManifest(
                "assembled entry count differs from manifest",
            ));
        }
        let mut tree = MerkleTree::from_parts((*self.root).clone(), order, Some(entry_count));
        tree.recompute_all_digests();
        if tree.root_digest() != self.manifest.anchor {
            return Err(ChunkError::GraftConflict(
                "assembled root does not reproduce the anchor",
            ));
        }
        Ok(tree)
    }
}

/// Merges two digest-equal views of the same subtree, preferring
/// materialized content over stubs. Every overlapping node is digest-checked
/// — a disagreement is a [`ChunkError::GraftConflict`].
fn graft(a: &Arc<Node>, b: &Arc<Node>) -> Result<Arc<Node>, ChunkError> {
    if a.digest() != b.digest() {
        return Err(ChunkError::GraftConflict("overlapping digests differ"));
    }
    if Arc::ptr_eq(a, b) {
        return Ok(Arc::clone(a));
    }
    match (&**a, &**b) {
        (Node::Stub(_), _) => Ok(Arc::clone(b)),
        (_, Node::Stub(_)) => Ok(Arc::clone(a)),
        (Node::Leaf { .. }, Node::Leaf { .. }) => Ok(Arc::clone(a)),
        (
            Node::Internal {
                keys: ka,
                children: ca,
                digest,
            },
            Node::Internal {
                keys: kb,
                children: cb,
                ..
            },
        ) => {
            if ka != kb || ca.len() != cb.len() {
                return Err(ChunkError::GraftConflict("internal node shapes differ"));
            }
            let children = ca
                .iter()
                .zip(cb.iter())
                .map(|(x, y)| graft(x, y))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Arc::new(Node::Internal {
                keys: ka.clone(),
                children,
                digest: *digest,
            }))
        }
        _ => Err(ChunkError::GraftConflict("node kinds differ")),
    }
}

/// Collects the keys of all materialized leaf entries, in tree order.
fn materialized_keys<'a>(node: &'a Node, out: &mut Vec<&'a [u8]>) {
    match node {
        Node::Stub(_) => {}
        Node::Leaf { entries, .. } => out.extend(entries.iter().map(|e| e.key.as_slice())),
        Node::Internal { children, .. } => {
            for c in children {
                materialized_keys(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;

    fn tree(n: u64, order: usize) -> MerkleTree {
        let mut t = MerkleTree::with_order(order);
        for i in 0..n {
            t.insert(u64_key(i * 7 % n.max(1)), format!("value-{i}").into_bytes())
                .unwrap();
        }
        t
    }

    fn assemble_all(src: &ChunkSource) -> MerkleTree {
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        for i in 0..src.num_chunks() {
            assert_eq!(
                asm.admit(i, &src.chunk(i).unwrap()).unwrap(),
                AdmitOutcome::Admitted
            );
        }
        asm.finish().unwrap()
    }

    #[test]
    fn round_trip_across_sizes_and_budgets() {
        for n in [0u64, 1, 5, 64, 300] {
            let t = tree(n, 4);
            for budget in [1usize, 200, 4096, usize::MAX] {
                let src = ChunkSource::new(&t, budget).unwrap();
                let got = assemble_all(&src);
                assert_eq!(got.root_digest(), t.root_digest(), "n={n} budget={budget}");
                assert_eq!(got.entries().unwrap(), t.entries().unwrap());
                assert_eq!(got.len(), Some(n as usize));
                got.check_invariants().unwrap();
                // Byte-identical: the assembled tree re-encodes to exactly
                // the source snapshot's encoding.
                assert_eq!(got.to_bytes(), t.to_bytes());
            }
        }
    }

    #[test]
    fn manifest_round_trips_and_budget_scales_chunk_count() {
        let t = tree(200, 4);
        let tiny = ChunkSource::new(&t, 1).unwrap();
        let huge = ChunkSource::new(&t, usize::MAX).unwrap();
        assert_eq!(huge.num_chunks(), 1, "unbounded budget gives one chunk");
        assert!(
            tiny.num_chunks() > huge.num_chunks(),
            "tiny budget gives one chunk per leaf"
        );
        for src in [&tiny, &huge] {
            let m = src.manifest();
            assert_eq!(
                ChunkManifest::from_bytes(&m.to_bytes()).unwrap(),
                *m,
                "manifest wire round trip"
            );
        }
        // A mid-sized budget sits strictly between the two extremes.
        let src = ChunkSource::new(&t, 2048).unwrap();
        assert!(src.num_chunks() > huge.num_chunks());
        assert!(src.num_chunks() < tiny.num_chunks());
    }

    #[test]
    fn out_of_order_and_duplicate_delivery_tolerated() {
        let t = tree(120, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        assert!(src.num_chunks() >= 3, "need several chunks");
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        let mut order: Vec<u32> = (0..src.num_chunks()).collect();
        order.reverse();
        for &i in &order {
            assert_eq!(
                asm.admit(i, &src.chunk(i).unwrap()).unwrap(),
                AdmitOutcome::Admitted
            );
            // Duplicate delivery of an already-admitted chunk is a no-op.
            assert_eq!(
                asm.admit(i, &src.chunk(i).unwrap()).unwrap(),
                AdmitOutcome::Duplicate
            );
        }
        assert!(asm.is_complete());
        assert!(asm.missing().is_empty());
        let got = asm.finish().unwrap();
        assert_eq!(got.root_digest(), t.root_digest());
    }

    #[test]
    fn truncation_at_every_byte_boundary_rejected() {
        let t = tree(40, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        let bytes = src.chunk(0).unwrap();
        for cut in 0..bytes.len() {
            let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
            let err = asm.admit(0, &bytes[..cut]);
            assert!(
                err.is_err(),
                "prefix of {cut}/{} bytes accepted",
                bytes.len()
            );
        }
        let m = src.manifest().to_bytes();
        for cut in 0..m.len() {
            assert!(
                ChunkManifest::from_bytes(&m[..cut]).is_err(),
                "manifest prefix of {cut}/{} bytes accepted",
                m.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_change_assembled_content() {
        // Flipping any byte either fails verification or (for bytes the
        // codec ignores, like the unknown-length sentinel of a pruned
        // payload) leaves the admitted content identical — it can never
        // smuggle in different data, because admission re-derives the root
        // from the materialized content.
        let t = tree(60, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        let bytes = src.chunk(1).unwrap();
        for pos in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x01;
            let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
            match asm.admit(1, &evil) {
                Err(_) => {}
                Ok(outcome) => {
                    assert_eq!(outcome, AdmitOutcome::Admitted);
                    // The flip survived decoding, so it must have been
                    // content-neutral: completing the assembly still
                    // reproduces the honest tree exactly.
                    for i in 0..src.num_chunks() {
                        if i != 1 {
                            asm.admit(i, &src.chunk(i).unwrap()).unwrap();
                        }
                    }
                    let got = asm.finish().unwrap();
                    assert_eq!(got.to_bytes(), t.to_bytes(), "flip at {pos} changed data");
                }
            }
        }
    }

    #[test]
    fn chunk_under_wrong_index_rejected() {
        let t = tree(120, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        assert!(src.num_chunks() >= 2);
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        // A perfectly valid chunk — delivered under another chunk's index.
        let err = asm.admit(0, &src.chunk(1).unwrap()).unwrap_err();
        assert!(
            matches!(err, ChunkError::RangeMismatch { index: 0, .. }),
            "reordered chunk must fail the index-0 range check, got {err:?}"
        );
    }

    #[test]
    fn cross_snapshot_splice_rejected_at_offending_chunk() {
        let mut a = tree(120, 4);
        let mut b = a.clone();
        // Same keys, one divergent value: different snapshots, near-identical
        // chunking.
        b.insert(u64_key(11), b"divergent".to_vec()).unwrap();
        a.recompute_all_digests();
        b.recompute_all_digests();
        let src_a = ChunkSource::new(&a, 512).unwrap();
        let src_b = ChunkSource::new(&b, 512).unwrap();
        assert_ne!(src_a.manifest().anchor, src_b.manifest().anchor);
        let mut asm = ChunkAssembler::new(src_a.manifest().clone()).unwrap();
        let common = src_a.num_chunks().min(src_b.num_chunks());
        assert!(common >= 2);
        for i in 0..common {
            match asm.admit(i, &src_b.chunk(i).unwrap()) {
                Err(ChunkError::AnchorMismatch { index }) => {
                    assert_eq!(index, i, "detection names the offending chunk");
                }
                Err(e) => panic!("chunk {i}: unexpected error {e:?}"),
                Ok(_) => panic!("chunk {i} of snapshot B admitted under anchor A"),
            }
        }
        // Honest delivery after the attack: a bad chunk never poisons the
        // assembly.
        for i in 0..src_a.num_chunks() {
            asm.admit(i, &src_a.chunk(i).unwrap()).unwrap();
        }
        assert_eq!(asm.finish().unwrap().root_digest(), a.root_digest());
    }

    #[test]
    fn forged_value_rejected() {
        let t = tree(80, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        // A lying server serves a chunk from a *modified* tree while
        // advertising the honest manifest.
        let mut forged = t.clone();
        forged.insert(u64_key(3), b"forged".to_vec()).unwrap();
        let lying = ChunkSource::new(&forged, 512).unwrap();
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        let err = asm.admit(0, &lying.chunk(0).unwrap()).unwrap_err();
        assert!(matches!(err, ChunkError::AnchorMismatch { index: 0 }));
    }

    #[test]
    fn forged_duplicate_still_errors() {
        let t = tree(80, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        asm.admit(0, &src.chunk(0).unwrap()).unwrap();
        let mut forged = t.clone();
        forged.insert(u64_key(2), b"evil".to_vec()).unwrap();
        let lying = ChunkSource::new(&forged, 512).unwrap();
        // Verification runs before the duplicate shortcut.
        assert!(asm.admit(0, &lying.chunk(0).unwrap()).is_err());
    }

    #[test]
    fn unknown_index_and_incomplete_finish_rejected() {
        let t = tree(60, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        let mut asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        assert_eq!(
            asm.admit(99, &src.chunk(0).unwrap()).unwrap_err(),
            ChunkError::UnknownChunk(99)
        );
        asm.admit(0, &src.chunk(0).unwrap()).unwrap();
        let missing = src.num_chunks() as usize - 1;
        assert_eq!(
            asm.finish().unwrap_err(),
            ChunkError::Incomplete { missing }
        );
    }

    #[test]
    fn empty_tree_bootstraps_from_zero_chunks() {
        let t = MerkleTree::with_order(8);
        let src = ChunkSource::new(&t, 1024).unwrap();
        assert_eq!(src.num_chunks(), 0);
        let asm = ChunkAssembler::new(src.manifest().clone()).unwrap();
        assert!(asm.is_complete());
        let got = asm.finish().unwrap();
        assert_eq!(got.root_digest(), t.root_digest());
        assert_eq!(got.len(), Some(0));
    }

    #[test]
    fn malformed_manifests_rejected() {
        let t = tree(60, 4);
        let src = ChunkSource::new(&t, 512).unwrap();
        let good = src.manifest().clone();

        let mut overlap = good.clone();
        overlap.ranges[1].lo = overlap.ranges[0].lo.clone();
        assert!(ChunkAssembler::new(overlap).is_err());

        let mut unsorted = good.clone();
        unsorted.ranges.swap(0, 1);
        assert!(ChunkAssembler::new(unsorted).is_err());

        let mut bad_sum = good.clone();
        bad_sum.entry_count += 1;
        assert!(ChunkAssembler::new(bad_sum).is_err());

        let mut zero_range = good.clone();
        zero_range.ranges[0].entries = 0;
        assert!(ChunkAssembler::new(zero_range).is_err());

        let mut empty_lie = good.clone();
        empty_lie.ranges.clear();
        assert!(
            ChunkAssembler::new(empty_lie).is_err(),
            "nonzero entry count with no chunks"
        );

        let mut tiny_order = good.clone();
        tiny_order.order = 1;
        assert!(ChunkAssembler::new(tiny_order).is_err());

        // A manifest that under-covers the tree: ranges are consistent, but
        // finishing must notice the stubs left behind.
        let mut partial = good.clone();
        let dropped = partial.ranges.pop().unwrap();
        partial.entry_count -= u64::from(dropped.entries);
        let mut asm = ChunkAssembler::new(partial.clone()).unwrap();
        for i in 0..partial.ranges.len() as u32 {
            asm.admit(i, &src.chunk(i).unwrap()).unwrap();
        }
        assert!(asm.finish().is_err(), "under-covering manifest caught");
    }

    #[test]
    fn pruned_source_tree_rejected() {
        let t = tree(60, 4);
        let pruned = t.prune_for_range(Some(&u64_key(0)), Some(&u64_key(5)));
        assert!(ChunkSource::new(&pruned, 512).is_err());
    }
}
