//! B+-tree nodes with cached digests, including pruned (stub) subtrees.
//!
//! The digest scheme follows §4.1 of the paper: a leaf's digest hashes the
//! data stored at the leaf; an internal node's digest hashes its children's
//! digests. We additionally bind the separator keys into internal digests so
//! a proof also authenticates the *search structure*, not just the data.

use tcvs_crypto::{Digest, Sha256};

/// A key stored in the tree (arbitrary bytes, ordered lexicographically).
pub type Key = Vec<u8>;
/// A value stored in the tree (arbitrary bytes).
pub type Value = Vec<u8>;

/// Encodes a `u64` as an order-preserving 8-byte key.
pub fn u64_key(x: u64) -> Key {
    x.to_be_bytes().to_vec()
}

/// A node of the Merkle B+-tree.
///
/// `Stub` nodes appear only in *pruned* trees (verification objects): they
/// stand for an entire subtree, represented solely by its digest. Full
/// server-side trees contain no stubs.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    /// A pruned-away subtree, known only by its digest.
    Stub(Digest),
    /// A leaf holding sorted `(key, value)` entries.
    Leaf {
        entries: Vec<(Key, Value)>,
        digest: Digest,
    },
    /// An internal node with `keys.len() + 1` children; subtree `i` holds
    /// keys `k` with `keys[i-1] <= k < keys[i]` (lexicographic).
    Internal {
        keys: Vec<Key>,
        children: Vec<Node>,
        digest: Digest,
    },
}

impl Node {
    /// Creates an empty leaf (the root of an empty tree).
    pub(crate) fn empty_leaf() -> Node {
        let mut leaf = Node::Leaf {
            entries: Vec::new(),
            digest: Digest::ZERO,
        };
        leaf.recompute_digest();
        leaf
    }

    /// The cached digest of this node.
    pub(crate) fn digest(&self) -> Digest {
        match self {
            Node::Stub(d) => *d,
            Node::Leaf { digest, .. } => *digest,
            Node::Internal { digest, .. } => *digest,
        }
    }

    /// Recomputes and caches this node's digest from its (already-correct)
    /// children digests / entries. Stubs keep their stored digest.
    pub(crate) fn recompute_digest(&mut self) {
        match self {
            Node::Stub(_) => {}
            Node::Leaf { entries, digest } => {
                let mut h = Sha256::new();
                h.update(b"tcvs-merkle-leaf");
                h.update(&(entries.len() as u64).to_be_bytes());
                for (k, v) in entries.iter() {
                    h.update(&(k.len() as u64).to_be_bytes());
                    h.update(k);
                    h.update(&(v.len() as u64).to_be_bytes());
                    h.update(v);
                }
                *digest = h.finalize();
            }
            Node::Internal {
                keys,
                children,
                digest,
            } => {
                let mut h = Sha256::new();
                h.update(b"tcvs-merkle-int");
                h.update(&(keys.len() as u64).to_be_bytes());
                for k in keys.iter() {
                    h.update(&(k.len() as u64).to_be_bytes());
                    h.update(k);
                }
                h.update(&(children.len() as u64).to_be_bytes());
                for c in children.iter() {
                    h.update(c.digest().as_bytes());
                }
                *digest = h.finalize();
            }
        }
    }

    /// True iff this node is a stub.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub(crate) fn is_stub(&self) -> bool {
        matches!(self, Node::Stub(_))
    }

    /// Replaces this node with a stub carrying its digest.
    pub(crate) fn to_stub(&self) -> Node {
        Node::Stub(self.digest())
    }

    /// Shallow copy: a leaf is copied fully; an internal node keeps its keys
    /// but its children become stubs. Used to materialize the siblings a
    /// delete may need for borrow/merge.
    pub(crate) fn shallow_copy(&self) -> Node {
        match self {
            Node::Stub(d) => Node::Stub(*d),
            Node::Leaf { entries, digest } => Node::Leaf {
                entries: entries.clone(),
                digest: *digest,
            },
            Node::Internal {
                keys,
                children,
                digest,
            } => Node::Internal {
                keys: keys.clone(),
                children: children.iter().map(Node::to_stub).collect(),
                digest: *digest,
            },
        }
    }

    /// Number of materialized (non-stub) nodes in this subtree.
    pub(crate) fn materialized_nodes(&self) -> usize {
        match self {
            Node::Stub(_) => 0,
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(Node::materialized_nodes).sum::<usize>()
            }
        }
    }

    /// Wire-size estimate in bytes of this subtree's encoding (used for the
    /// verification-object size experiments).
    pub(crate) fn encoded_size(&self) -> usize {
        match self {
            Node::Stub(_) => 1 + Digest::LEN,
            Node::Leaf { entries, .. } => {
                1 + 8
                    + entries
                        .iter()
                        .map(|(k, v)| 16 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, children, .. } => {
                1 + 8
                    + keys.iter().map(|k| 8 + k.len()).sum::<usize>()
                    + 8
                    + children.iter().map(Node::encoded_size).sum::<usize>()
            }
        }
    }

    /// Recomputes every materialized digest in the subtree bottom-up (stub
    /// digests are taken as given). Clients run this on received proofs so
    /// the root digest provably commits to the *materialized content*, not
    /// to whatever cached digests the server chose to send.
    pub(crate) fn recompute_all(&mut self) {
        if let Node::Internal { children, .. } = self {
            for c in children.iter_mut() {
                c.recompute_all();
            }
        }
        self.recompute_digest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_leaf_has_stable_digest() {
        let a = Node::empty_leaf();
        let b = Node::empty_leaf();
        assert_eq!(a.digest(), b.digest());
        assert!(!a.digest().is_zero());
    }

    #[test]
    fn leaf_digest_binds_keys_and_values() {
        let mut l1 = Node::Leaf {
            entries: vec![(b"k".to_vec(), b"v1".to_vec())],
            digest: Digest::ZERO,
        };
        let mut l2 = Node::Leaf {
            entries: vec![(b"k".to_vec(), b"v2".to_vec())],
            digest: Digest::ZERO,
        };
        let mut l3 = Node::Leaf {
            entries: vec![(b"j".to_vec(), b"v1".to_vec())],
            digest: Digest::ZERO,
        };
        l1.recompute_digest();
        l2.recompute_digest();
        l3.recompute_digest();
        assert_ne!(l1.digest(), l2.digest());
        assert_ne!(l1.digest(), l3.digest());
    }

    #[test]
    fn leaf_digest_binds_entry_boundaries() {
        // ("ab","c") vs ("a","bc") must not collide.
        let mut l1 = Node::Leaf {
            entries: vec![(b"ab".to_vec(), b"c".to_vec())],
            digest: Digest::ZERO,
        };
        let mut l2 = Node::Leaf {
            entries: vec![(b"a".to_vec(), b"bc".to_vec())],
            digest: Digest::ZERO,
        };
        l1.recompute_digest();
        l2.recompute_digest();
        assert_ne!(l1.digest(), l2.digest());
    }

    #[test]
    fn internal_digest_binds_children_order() {
        let mut a = Node::empty_leaf();
        a = Node::Leaf {
            entries: vec![(b"a".to_vec(), b"1".to_vec())],
            digest: a.digest(),
        };
        a.recompute_digest();
        let mut b = Node::Leaf {
            entries: vec![(b"b".to_vec(), b"2".to_vec())],
            digest: Digest::ZERO,
        };
        b.recompute_digest();

        let mut n1 = Node::Internal {
            keys: vec![b"b".to_vec()],
            children: vec![a.clone(), b.clone()],
            digest: Digest::ZERO,
        };
        let mut n2 = Node::Internal {
            keys: vec![b"b".to_vec()],
            children: vec![b, a],
            digest: Digest::ZERO,
        };
        n1.recompute_digest();
        n2.recompute_digest();
        assert_ne!(n1.digest(), n2.digest());
    }

    #[test]
    fn stub_preserves_digest() {
        let mut l = Node::Leaf {
            entries: vec![(b"k".to_vec(), b"v".to_vec())],
            digest: Digest::ZERO,
        };
        l.recompute_digest();
        let s = l.to_stub();
        assert_eq!(s.digest(), l.digest());
        assert!(s.is_stub());
        assert_eq!(s.materialized_nodes(), 0);
    }

    #[test]
    fn shallow_copy_of_internal_keeps_digest() {
        let mut a = Node::Leaf {
            entries: vec![(b"a".to_vec(), b"1".to_vec())],
            digest: Digest::ZERO,
        };
        a.recompute_digest();
        let mut b = Node::Leaf {
            entries: vec![(b"m".to_vec(), b"2".to_vec())],
            digest: Digest::ZERO,
        };
        b.recompute_digest();
        let mut n = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![a, b],
            digest: Digest::ZERO,
        };
        n.recompute_digest();
        let s = n.shallow_copy();
        assert_eq!(s.digest(), n.digest());
        assert_eq!(s.materialized_nodes(), 1);
    }

    #[test]
    fn u64_keys_preserve_order() {
        let mut ks: Vec<Key> = [5u64, 300, 2, 70000, 0]
            .iter()
            .map(|&x| u64_key(x))
            .collect();
        ks.sort();
        let back: Vec<u64> = ks
            .iter()
            .map(|k| u64::from_be_bytes(k[..8].try_into().unwrap()))
            .collect();
        assert_eq!(back, vec![0, 2, 5, 300, 70000]);
    }
}
