//! Copy-on-write B+-tree nodes with cached digests, including pruned (stub)
//! subtrees.
//!
//! The digest scheme follows §4.1 of the paper: a leaf's digest hashes the
//! data stored at the leaf; an internal node's digest hashes its children's
//! digests. We additionally bind the separator keys into internal digests so
//! a proof also authenticates the *search structure*, not just the data.
//!
//! Two representation choices make the hot path cheap:
//!
//! * children are [`Arc<Node>`], so trees share structure: cloning a tree is
//!   an O(1) root-pointer copy, a mutation copies only the O(log n) spine
//!   (see [`std::sync::Arc::make_mut`]), and pruning shares whole subtrees
//!   with the live tree instead of deep-cloning entries;
//! * each leaf entry caches its `kv_hash` (the digest of the key/value
//!   pair), and the leaf digest hashes those fixed-width digests — so
//!   updating one value rehashes that one pair plus 32-byte digests, not
//!   every value in the leaf.

use std::sync::Arc;

use tcvs_crypto::{Digest, Sha256};

/// A key stored in the tree (arbitrary bytes, ordered lexicographically).
pub type Key = Vec<u8>;
/// A value stored in the tree (arbitrary bytes).
pub type Value = Vec<u8>;

/// Encodes a `u64` as an order-preserving 8-byte key.
pub fn u64_key(x: u64) -> Key {
    x.to_be_bytes().to_vec()
}

/// One `(key, value)` pair in a leaf, with its cached pair digest.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub(crate) key: Key,
    pub(crate) value: Value,
    /// `H("tcvs-merkle-kv" ‖ |k| ‖ k ‖ |v| ‖ v)`, cached so leaf digests
    /// hash fixed-width digests instead of raw values.
    pub(crate) kv_hash: Digest,
}

/// The pair digest an entry caches (length-prefixed, so entry boundaries
/// are unambiguous).
pub(crate) fn kv_hash(key: &[u8], value: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"tcvs-merkle-kv");
    h.update(&(key.len() as u64).to_be_bytes());
    h.update(key);
    h.update(&(value.len() as u64).to_be_bytes());
    h.update(value);
    h.finalize()
}

/// The exact byte stream [`kv_hash`] feeds to SHA-256, materialized as one
/// message so a whole leaf's entries can be rehashed through the
/// multi-lane backend ([`tcvs_crypto::sha256_many`]) in interleaved lanes.
fn kv_message(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(30 + key.len() + value.len());
    m.extend_from_slice(b"tcvs-merkle-kv");
    m.extend_from_slice(&(key.len() as u64).to_be_bytes());
    m.extend_from_slice(key);
    m.extend_from_slice(&(value.len() as u64).to_be_bytes());
    m.extend_from_slice(value);
    m
}

impl LeafEntry {
    /// Builds an entry, computing its pair digest.
    pub(crate) fn new(key: Key, value: Value) -> LeafEntry {
        let kv_hash = kv_hash(&key, &value);
        LeafEntry {
            key,
            value,
            kv_hash,
        }
    }

    /// Replaces the value (and pair digest), returning the old value.
    pub(crate) fn replace_value(&mut self, value: Value) -> Value {
        self.kv_hash = kv_hash(&self.key, &value);
        std::mem::replace(&mut self.value, value)
    }

    /// Recomputes the cached pair digest from the stored key and value.
    /// Clients run this on received proofs — a cached digest from the wire
    /// is never trusted.
    pub(crate) fn rehash(&mut self) {
        self.kv_hash = kv_hash(&self.key, &self.value);
    }
}

/// A node of the Merkle B+-tree.
///
/// `Stub` nodes appear only in *pruned* trees (verification objects): they
/// stand for an entire subtree, represented solely by its digest. Full
/// server-side trees contain no stubs.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    /// A pruned-away subtree, known only by its digest.
    Stub(Digest),
    /// A leaf holding sorted `(key, value)` entries.
    Leaf {
        entries: Vec<LeafEntry>,
        digest: Digest,
    },
    /// An internal node with `keys.len() + 1` children; subtree `i` holds
    /// keys `k` with `keys[i-1] <= k < keys[i]` (lexicographic).
    Internal {
        keys: Vec<Key>,
        children: Vec<Arc<Node>>,
        digest: Digest,
    },
}

impl Node {
    /// Creates an empty leaf (the root of an empty tree).
    pub(crate) fn empty_leaf() -> Node {
        let mut leaf = Node::Leaf {
            entries: Vec::new(),
            digest: Digest::ZERO,
        };
        leaf.recompute_digest();
        leaf
    }

    /// The cached digest of this node.
    pub(crate) fn digest(&self) -> Digest {
        match self {
            Node::Stub(d) => *d,
            Node::Leaf { digest, .. } => *digest,
            Node::Internal { digest, .. } => *digest,
        }
    }

    /// Recomputes and caches this node's digest from its (already-correct)
    /// children digests / entry pair digests. Stubs keep their stored
    /// digest.
    pub(crate) fn recompute_digest(&mut self) {
        match self {
            Node::Stub(_) => {}
            Node::Leaf { entries, digest } => {
                let mut h = Sha256::new();
                h.update(b"tcvs-merkle-leaf");
                h.update(&(entries.len() as u64).to_be_bytes());
                for e in entries.iter() {
                    h.update(e.kv_hash.as_bytes());
                }
                *digest = h.finalize();
            }
            Node::Internal {
                keys,
                children,
                digest,
            } => {
                let mut h = Sha256::new();
                h.update(b"tcvs-merkle-int");
                h.update(&(keys.len() as u64).to_be_bytes());
                for k in keys.iter() {
                    h.update(&(k.len() as u64).to_be_bytes());
                    h.update(k);
                }
                h.update(&(children.len() as u64).to_be_bytes());
                for c in children.iter() {
                    h.update(c.digest().as_bytes());
                }
                *digest = h.finalize();
            }
        }
    }

    /// True iff this node is a stub.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub(crate) fn is_stub(&self) -> bool {
        matches!(self, Node::Stub(_))
    }

    /// True iff this subtree contains a stub anywhere.
    pub(crate) fn contains_stub(&self) -> bool {
        match self {
            Node::Stub(_) => true,
            Node::Leaf { .. } => false,
            Node::Internal { children, .. } => children.iter().any(|c| c.contains_stub()),
        }
    }

    /// Replaces this node with a stub carrying its digest.
    pub(crate) fn to_stub(&self) -> Node {
        Node::Stub(self.digest())
    }

    /// Number of entries stored in materialized leaves of this subtree.
    pub(crate) fn entry_count(&self) -> usize {
        match self {
            Node::Stub(_) => 0,
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { children, .. } => children.iter().map(|c| c.entry_count()).sum(),
        }
    }

    /// Number of materialized (non-stub) nodes in this subtree.
    pub(crate) fn materialized_nodes(&self) -> usize {
        match self {
            Node::Stub(_) => 0,
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children
                    .iter()
                    .map(|c| c.materialized_nodes())
                    .sum::<usize>()
            }
        }
    }

    /// Wire-size estimate in bytes of this subtree's encoding (used for the
    /// verification-object size experiments).
    pub(crate) fn encoded_size(&self) -> usize {
        match self {
            Node::Stub(_) => 1 + Digest::LEN,
            Node::Leaf { entries, .. } => {
                1 + 8
                    + entries
                        .iter()
                        .map(|e| 16 + e.key.len() + e.value.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, children, .. } => {
                1 + 8
                    + keys.iter().map(|k| 8 + k.len()).sum::<usize>()
                    + 8
                    + children.iter().map(|c| c.encoded_size()).sum::<usize>()
            }
        }
    }
}

/// Shallow copy for proof construction: a leaf is *shared* (the Arc is
/// cloned, zero-copy); an internal node keeps its keys but its children
/// become stubs. Used to materialize the siblings a delete may need for
/// borrow/merge.
pub(crate) fn shallow_copy(node: &Arc<Node>) -> Arc<Node> {
    match &**node {
        Node::Stub(_) | Node::Leaf { .. } => Arc::clone(node),
        Node::Internal {
            keys,
            children,
            digest,
        } => Arc::new(Node::Internal {
            keys: keys.clone(),
            children: children.iter().map(|c| Arc::new(c.to_stub())).collect(),
            digest: *digest,
        }),
    }
}

/// Recomputes every materialized digest in the subtree bottom-up —
/// including the per-entry pair digests (stub digests are taken as given).
/// Clients run this on received proofs so the root digest provably commits
/// to the *materialized content*, not to whatever cached digests the server
/// chose to send.
///
/// Copy-on-write: shared nodes are cloned before being rehashed, so a tree
/// this proof shares structure with is never written through.
pub(crate) fn recompute_all(node: &mut Arc<Node>) {
    let n = Arc::make_mut(node);
    match n {
        Node::Stub(_) => {}
        Node::Leaf { entries, .. } => {
            if entries.len() < 2 {
                for e in entries.iter_mut() {
                    e.rehash();
                }
            } else {
                // The leaf's pair digests are independent hashes, so feed
                // them through the interleaved multi-lane backend; the
                // per-entry byte stream is identical to `kv_hash`.
                let msgs: Vec<Vec<u8>> = entries
                    .iter()
                    .map(|e| kv_message(&e.key, &e.value))
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                for (e, d) in entries.iter_mut().zip(tcvs_crypto::sha256_many(&refs)) {
                    e.kv_hash = d;
                }
            }
        }
        Node::Internal { children, .. } => {
            for c in children.iter_mut() {
                recompute_all(c);
            }
        }
    }
    n.recompute_digest();
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn leaf(entries: Vec<(Key, Value)>) -> Node {
        let mut l = Node::Leaf {
            entries: entries
                .into_iter()
                .map(|(k, v)| LeafEntry::new(k, v))
                .collect(),
            digest: Digest::ZERO,
        };
        l.recompute_digest();
        l
    }

    #[test]
    fn empty_leaf_has_stable_digest() {
        let a = Node::empty_leaf();
        let b = Node::empty_leaf();
        assert_eq!(a.digest(), b.digest());
        assert!(!a.digest().is_zero());
    }

    #[test]
    fn leaf_digest_binds_keys_and_values() {
        let l1 = leaf(vec![(b"k".to_vec(), b"v1".to_vec())]);
        let l2 = leaf(vec![(b"k".to_vec(), b"v2".to_vec())]);
        let l3 = leaf(vec![(b"j".to_vec(), b"v1".to_vec())]);
        assert_ne!(l1.digest(), l2.digest());
        assert_ne!(l1.digest(), l3.digest());
    }

    #[test]
    fn leaf_digest_binds_entry_boundaries() {
        // ("ab","c") vs ("a","bc") must not collide.
        let l1 = leaf(vec![(b"ab".to_vec(), b"c".to_vec())]);
        let l2 = leaf(vec![(b"a".to_vec(), b"bc".to_vec())]);
        assert_ne!(l1.digest(), l2.digest());
    }

    #[test]
    fn replace_value_updates_pair_digest() {
        let mut l = leaf(vec![(b"k".to_vec(), b"v1".to_vec())]);
        let before = l.digest();
        if let Node::Leaf { entries, .. } = &mut l {
            let old = entries[0].replace_value(b"v2".to_vec());
            assert_eq!(old, b"v1".to_vec());
        }
        l.recompute_digest();
        assert_ne!(l.digest(), before);
        // And the digest equals that of a freshly-built identical leaf.
        assert_eq!(
            l.digest(),
            leaf(vec![(b"k".to_vec(), b"v2".to_vec())]).digest()
        );
    }

    #[test]
    fn internal_digest_binds_children_order() {
        let a = Arc::new(leaf(vec![(b"a".to_vec(), b"1".to_vec())]));
        let b = Arc::new(leaf(vec![(b"b".to_vec(), b"2".to_vec())]));

        let mut n1 = Node::Internal {
            keys: vec![b"b".to_vec()],
            children: vec![Arc::clone(&a), Arc::clone(&b)],
            digest: Digest::ZERO,
        };
        let mut n2 = Node::Internal {
            keys: vec![b"b".to_vec()],
            children: vec![b, a],
            digest: Digest::ZERO,
        };
        n1.recompute_digest();
        n2.recompute_digest();
        assert_ne!(n1.digest(), n2.digest());
    }

    #[test]
    fn stub_preserves_digest() {
        let l = leaf(vec![(b"k".to_vec(), b"v".to_vec())]);
        let s = l.to_stub();
        assert_eq!(s.digest(), l.digest());
        assert!(s.is_stub());
        assert_eq!(s.materialized_nodes(), 0);
    }

    #[test]
    fn shallow_copy_of_internal_keeps_digest() {
        let a = Arc::new(leaf(vec![(b"a".to_vec(), b"1".to_vec())]));
        let b = Arc::new(leaf(vec![(b"m".to_vec(), b"2".to_vec())]));
        let mut n = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![a, b],
            digest: Digest::ZERO,
        };
        n.recompute_digest();
        let n = Arc::new(n);
        let s = shallow_copy(&n);
        assert_eq!(s.digest(), n.digest());
        assert_eq!(s.materialized_nodes(), 1);
    }

    #[test]
    fn shallow_copy_of_leaf_is_shared() {
        let l = Arc::new(leaf(vec![(b"k".to_vec(), b"v".to_vec())]));
        let s = shallow_copy(&l);
        assert!(Arc::ptr_eq(&l, &s), "leaf shallow copies share the Arc");
    }

    #[test]
    fn recompute_all_restores_tampered_caches() {
        // Corrupt a cached kv_hash; recompute_all must heal it so the root
        // commits to the actual content.
        let honest = Arc::new(leaf(vec![(b"k".to_vec(), b"v".to_vec())]));
        let mut tampered = (*honest).clone();
        if let Node::Leaf { entries, .. } = &mut tampered {
            entries[0].kv_hash = Digest::ZERO;
        }
        tampered.recompute_digest();
        assert_ne!(tampered.digest(), honest.digest());
        let mut t = Arc::new(tampered);
        recompute_all(&mut t);
        assert_eq!(t.digest(), honest.digest());
    }

    #[test]
    fn u64_keys_preserve_order() {
        let mut ks: Vec<Key> = [5u64, 300, 2, 70000, 0]
            .iter()
            .map(|&x| u64_key(x))
            .collect();
        ks.sort();
        let back: Vec<u64> = ks
            .iter()
            .map(|k| u64::from_be_bytes(k[..8].try_into().unwrap()))
            .collect();
        assert_eq!(back, vec![0, 2, 5, 300, 70000]);
    }
}
