//! Client-side verification of server responses (§4.1).
//!
//! The server answers an operation with a [`VerificationObject`]: a pruned
//! copy of the pre-state tree. The client
//!
//! 1. checks the proof's root digest against its known root digest `M(D)`,
//! 2. *replays* the operation on the pruned tree,
//! 3. compares the replayed answer with the server's claimed answer, and
//! 4. (for updates) compares the replayed new root digest with the server's
//!    claimed new root digest, adopting it as the next `M(D')`.
//!
//! Any mismatch is proof of server misbehaviour — the protocols map it to a
//! deviation report.

use tcvs_crypto::Digest;

use crate::error::VerifyError;
use crate::op::{apply_op, Op, OpResult};
use crate::tree::MerkleTree;

/// The verification object `v(Q, D)`: a pruned pre-state tree sufficient to
/// replay `Q`.
#[derive(Clone, Debug)]
pub struct VerificationObject {
    tree: MerkleTree,
}

impl VerificationObject {
    /// Wraps a pruned tree produced by [`crate::op::prune_for_op`].
    pub fn new(pruned: MerkleTree) -> VerificationObject {
        VerificationObject { tree: pruned }
    }

    /// Root digest the proof claims to be rooted at.
    pub fn root_digest(&self) -> Digest {
        self.tree.root_digest()
    }

    /// Proof size in materialized nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.tree.materialized_nodes()
    }

    /// Proof size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        self.tree.encoded_size()
    }

    /// The branching order the proof was built with.
    pub fn order(&self) -> usize {
        self.tree.order()
    }

    /// Serializes the proof (its pruned tree) for persistence. Stub nodes
    /// carry their digests, so the encoding commits to exactly what the
    /// proof committed to.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tree.to_bytes()
    }

    /// Decodes a persisted proof; all materialized digests are re-verified
    /// during decode, so a corrupted proof is rejected rather than trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<VerificationObject, crate::CodecError> {
        let mut tree = MerkleTree::from_bytes(bytes)?;
        // A proof never authenticates an entry count; erase the count the
        // decoder recomputed so decode→encode stays byte-identical even
        // for proofs whose pruning kept every leaf.
        tree.forget_len();
        Ok(VerificationObject { tree })
    }
}

/// Outcome of a successful verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verified {
    /// The (replayed, hence authenticated) answer to the operation.
    pub result: OpResult,
    /// Root digest after the operation: equals the pre-state root for reads,
    /// and the post-state root `M(D')` for updates.
    pub new_root: Digest,
}

/// Replays `op` against a proof **without** an independently-known root
/// digest, as Protocol II/III clients must (they keep no root between
/// operations; trust flows through the XOR accumulators instead).
///
/// All materialized digests are recomputed from the proof's content first,
/// so the returned `old_root` genuinely commits to the materialized data —
/// the server cannot decouple content from digests.
///
/// Returns `(old_root, verified)` where `old_root` is the pre-state root the
/// proof commits to.
pub fn replay_unanchored(
    expected_order: usize,
    vo: &VerificationObject,
    op: &Op,
    claimed: Option<&OpResult>,
) -> Result<(Digest, Verified), VerifyError> {
    if vo.order() != expected_order {
        return Err(VerifyError::OrderMismatch);
    }
    let mut replay = vo.tree.clone();
    replay.recompute_all_digests();
    let old_root = replay.root_digest();
    let result = apply_op(&mut replay, op)?;
    if let Some(c) = claimed {
        if c != &result {
            return Err(VerifyError::AnswerMismatch);
        }
    }
    let new_root = replay.root_digest();
    Ok((old_root, Verified { result, new_root }))
}

/// Verifies a server response against a known root and replays the
/// operation.
///
/// * `known_root` — the client's current `M(D)`.
/// * `vo` — the server-supplied verification object.
/// * `op` — the operation the client asked for.
/// * `claimed` — the answer the server returned, if the transport carries
///   one; `None` makes the replayed answer authoritative without comparison.
/// * `claimed_new_root` — the server's claimed `M(D')`, if any.
pub fn verify_response(
    known_root: &Digest,
    expected_order: usize,
    vo: &VerificationObject,
    op: &Op,
    claimed: Option<&OpResult>,
    claimed_new_root: Option<&Digest>,
) -> Result<Verified, VerifyError> {
    if vo.order() != expected_order {
        return Err(VerifyError::OrderMismatch);
    }
    let mut replay = vo.tree.clone();
    replay.recompute_all_digests();
    // Root check comes before replay so a stale proof reports RootMismatch
    // rather than whatever the replay happens to hit.
    if replay.root_digest() != *known_root {
        return Err(VerifyError::RootMismatch);
    }
    let result = apply_op(&mut replay, op)?;
    if let Some(c) = claimed {
        if c != &result {
            return Err(VerifyError::AnswerMismatch);
        }
    }
    let new_root = replay.root_digest();
    if let Some(nr) = claimed_new_root {
        if nr != &new_root {
            return Err(VerifyError::NewRootMismatch);
        }
    }
    Ok(Verified { result, new_root })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;
    use crate::op::prune_for_op;

    fn tree_with(n: u64, order: usize) -> MerkleTree {
        let mut t = MerkleTree::with_order(order);
        for i in 0..n {
            t.insert(u64_key(i), format!("v{i}").into_bytes()).unwrap();
        }
        t
    }

    fn serve(tree: &mut MerkleTree, op: &Op) -> (VerificationObject, OpResult, Digest) {
        let vo = VerificationObject::new(prune_for_op(tree, op));
        let result = apply_op(tree, op).unwrap();
        (vo, result, tree.root_digest())
    }

    #[test]
    fn honest_update_verifies() {
        let mut server = tree_with(100, 8);
        let root0 = server.root_digest();
        let op = Op::Put(u64_key(42), b"changed".to_vec());
        let (vo, result, new_root) = serve(&mut server, &op);
        let v = verify_response(&root0, 8, &vo, &op, Some(&result), Some(&new_root)).unwrap();
        assert_eq!(v.new_root, new_root);
        assert_eq!(v.result, result);
    }

    #[test]
    fn honest_read_keeps_root() {
        let mut server = tree_with(50, 8);
        let root0 = server.root_digest();
        let op = Op::Get(u64_key(7));
        let (vo, result, _) = serve(&mut server, &op);
        let v = verify_response(&root0, 8, &vo, &op, Some(&result), None).unwrap();
        assert_eq!(v.new_root, root0);
        assert_eq!(v.result, OpResult::Value(Some(b"v7".to_vec())));
    }

    #[test]
    fn stale_proof_detected() {
        // Server builds a proof against an *old* state (replay attack on the
        // database): the root digest no longer matches.
        let mut server = tree_with(30, 8);
        let stale = server.clone();
        apply_op(&mut server, &Op::Put(u64_key(1), b"x".to_vec())).unwrap();
        let current_root = server.root_digest();
        let op = Op::Get(u64_key(2));
        let vo = VerificationObject::new(prune_for_op(&stale, &op));
        let err = verify_response(&current_root, 8, &vo, &op, None, None).unwrap_err();
        assert_eq!(err, VerifyError::RootMismatch);
    }

    #[test]
    fn tampered_answer_detected() {
        // Server answers with a value that is not in the authenticated state
        // (integrity violation): the replay disagrees.
        let mut server = tree_with(30, 8);
        let root0 = server.root_digest();
        let op = Op::Get(u64_key(3));
        let (vo, _, _) = serve(&mut server, &op);
        let forged = OpResult::Value(Some(b"evil".to_vec()));
        let err = verify_response(&root0, 8, &vo, &op, Some(&forged), None).unwrap_err();
        assert_eq!(err, VerifyError::AnswerMismatch);
    }

    #[test]
    fn dropped_update_detected() {
        // Server acknowledges an update with the *old* root (availability
        // violation: it never applied it).
        let mut server = tree_with(30, 8);
        let root0 = server.root_digest();
        let op = Op::Put(u64_key(5), b"important".to_vec());
        let (vo, result, _) = serve(&mut server, &op);
        // The server lies: claims the root did not change.
        let err = verify_response(&root0, 8, &vo, &op, Some(&result), Some(&root0)).unwrap_err();
        assert_eq!(err, VerifyError::NewRootMismatch);
    }

    #[test]
    fn incomplete_proof_detected() {
        let mut server = tree_with(200, 4);
        let root0 = server.root_digest();
        let op = Op::Put(u64_key(42), b"v".to_vec());
        // Serve a proof for the wrong key: the path for 42 stays pruned.
        let vo = VerificationObject::new(server.prune_for_point(&u64_key(180)));
        let result = apply_op(&mut server, &op).unwrap();
        let err = verify_response(&root0, 4, &vo, &op, Some(&result), None).unwrap_err();
        assert_eq!(err, VerifyError::IncompleteProof);
    }

    #[test]
    fn order_mismatch_detected() {
        let mut server = tree_with(10, 8);
        let op = Op::Get(u64_key(1));
        let root0 = server.root_digest();
        let (vo, _, _) = serve(&mut server, &op);
        let err = verify_response(&root0, 16, &vo, &op, None, None).unwrap_err();
        assert_eq!(err, VerifyError::OrderMismatch);
    }

    #[test]
    fn non_membership_is_verifiable() {
        let mut server = tree_with(50, 8);
        let root0 = server.root_digest();
        let op = Op::Get(u64_key(999));
        let (vo, result, _) = serve(&mut server, &op);
        assert_eq!(result, OpResult::Value(None));
        let v = verify_response(&root0, 8, &vo, &op, Some(&result), None).unwrap();
        assert_eq!(v.result, OpResult::Value(None));
    }
}
