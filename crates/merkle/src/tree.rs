//! The Merkle B+-tree (§4.1 of the paper) and its pruning operations.
//!
//! One tree type serves both sides of the protocol:
//!
//! * the **server** holds a *full* tree (no stubs) and answers queries;
//! * the **client** receives a *pruned* tree — the verification object — in
//!   which every subtree irrelevant to the operation is replaced by a
//!   [`Stub`](crate::node::Node) carrying only its digest.
//!
//! Because both trees run exactly the same operation code, the client
//! *replays* the server's operation on the pruned tree: if the pruned tree's
//! root digest matches the client's known root digest `M(D)`, and the replay
//! succeeds, the recomputed answer and new root digest are authoritative.
//! Touching a stub during replay means the proof was incomplete (server
//! misbehaviour).
//!
//! ## Copy-on-write
//!
//! Nodes are held behind [`Arc`], so trees *share structure*:
//!
//! * `Clone` is an O(1) root-pointer copy — a clone is a snapshot;
//! * a mutation clones only the root-to-leaf spine it touches
//!   ([`Arc::make_mut`]); untouched siblings stay shared with every
//!   snapshot taken earlier;
//! * pruning shares the materialized leaves and in-range subtrees with the
//!   live tree instead of deep-cloning their entries — proof construction
//!   allocates only the spine of stub-filled internal nodes.
//!
//! Sharing is never observable through the API: any mutation of one tree
//! first un-shares the affected nodes, so other handles keep their exact
//! pre-mutation state.

use std::sync::Arc;

use tcvs_crypto::Digest;

use crate::error::TreeError;
use crate::node::{recompute_all, shallow_copy, Key, LeafEntry, Node, Value};

/// Minimum supported branching order.
pub const MIN_ORDER: usize = 4;
/// Default branching order (max children per internal node and max entries
/// per leaf).
pub const DEFAULT_ORDER: usize = 16;

/// A Merkle B+-tree over byte keys and values.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    root: Arc<Node>,
    order: usize,
    /// Entry count: `Some` for full trees, `None` for pruned trees, where
    /// the count is not authenticated and must not be relied upon.
    len: Option<usize>,
}

/// Returns the index of the child subtree that covers `key`.
#[inline]
fn child_index(keys: &[Key], key: &[u8]) -> usize {
    keys.partition_point(|k| k.as_slice() <= key)
}

impl MerkleTree {
    /// Creates an empty tree with the default branching order.
    pub fn new() -> MerkleTree {
        MerkleTree::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with branching order `order` (≥ 4).
    pub fn with_order(order: usize) -> MerkleTree {
        assert!(order >= MIN_ORDER, "order {order} < minimum {MIN_ORDER}");
        MerkleTree {
            root: Arc::new(Node::empty_leaf()),
            order,
            len: Some(0),
        }
    }

    /// The root digest `M(D)` of the current state.
    pub fn root_digest(&self) -> Digest {
        self.root.digest()
    }

    /// The branching order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of entries: `Some(n)` for a full tree, `None` for a pruned
    /// tree (a proof does not authenticate a count, so pruned trees refuse
    /// to report one — misuse fails to compile instead of returning the
    /// unverified server value).
    pub fn len(&self) -> Option<usize> {
        self.len
    }

    /// True iff this is a full tree known to hold no entries.
    pub fn is_empty(&self) -> bool {
        self.len == Some(0)
    }

    /// True iff this tree contains a stub anywhere (i.e. it is pruned).
    pub fn is_pruned(&self) -> bool {
        self.root.contains_stub()
    }

    /// Number of materialized (non-stub) nodes; for a pruned tree this is
    /// the proof size in nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.root.materialized_nodes()
    }

    /// Wire-size estimate of this tree's encoding in bytes.
    pub fn encoded_size(&self) -> usize {
        self.root.encoded_size()
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup. `Err(IncompleteProof)` if the search hits a stub.
    pub fn get(&self, key: &[u8]) -> Result<Option<&Value>, TreeError> {
        let mut node: &Node = &self.root;
        loop {
            match node {
                Node::Stub(_) => return Err(TreeError::IncompleteProof),
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|e| e.key.as_slice().cmp(key))
                        .ok()
                        .map(|i| &entries[i].value));
                }
                Node::Internal { keys, children, .. } => {
                    node = &children[child_index(keys, key)];
                }
            }
        }
    }

    /// Range scan over `[lo, hi)`; `None` bounds are unbounded. Results are
    /// in key order. Stubs that *cannot* overlap the range are skipped;
    /// overlapping stubs raise `IncompleteProof`.
    pub fn range(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Key, Value)>, TreeError> {
        let mut out = Vec::new();
        range_rec(&self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    /// All entries in key order (full trees).
    pub fn entries(&self) -> Result<Vec<(Key, Value)>, TreeError> {
        self.range(None, None)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Inserts or replaces `key`; returns the previous value if any.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<Option<Value>, TreeError> {
        let (old, split) = insert_rec(&mut self.root, key, value, self.order)?;
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(&mut self.root, Arc::new(Node::empty_leaf()));
            let mut new_root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
                digest: Digest::ZERO,
            };
            new_root.recompute_digest();
            self.root = Arc::new(new_root);
        }
        if old.is_none() {
            if let Some(len) = &mut self.len {
                *len += 1;
            }
        }
        Ok(old)
    }

    /// Deletes `key`; returns the removed value if it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<Option<Value>, TreeError> {
        let old = delete_rec(&mut self.root, key, self.order)?;
        // Collapse a root that shrank to a single child.
        let collapsed = match &*self.root {
            Node::Internal { children, .. } if children.len() == 1 => {
                Some(Arc::clone(&children[0]))
            }
            _ => None,
        };
        if let Some(child) = collapsed {
            self.root = child;
        }
        if old.is_some() {
            if let Some(len) = &mut self.len {
                *len -= 1;
            }
        }
        Ok(old)
    }

    /// Recomputes every materialized digest bottom-up — including per-entry
    /// pair digests — replacing any cached digests. Run on *received* pruned
    /// trees before trusting their root digest.
    pub fn recompute_all_digests(&mut self) {
        recompute_all(&mut self.root);
    }

    /// Borrow of the root node (crate-internal, for the codec).
    pub(crate) fn root_ref(&self) -> &Node {
        &self.root
    }

    /// The shared root pointer (crate-internal). Lets [`crate::chunk`] graft
    /// subtrees with O(1) `Arc` sharing instead of deep clones.
    pub(crate) fn root_arc(&self) -> &Arc<Node> {
        &self.root
    }

    /// Erases the cached entry count (crate-internal). Proofs decode
    /// through [`crate::VerificationObject::from_bytes`], and a proof never
    /// authenticates a count — erasing it keeps decode→encode an identity
    /// even for proofs whose pruning happened to keep every leaf.
    pub(crate) fn forget_len(&mut self) {
        self.len = None;
    }

    /// Reassembles a tree from decoded parts (crate-internal, for the
    /// codec; the caller has already verified digests and structure).
    pub(crate) fn from_parts(root: Node, order: usize, len: Option<usize>) -> MerkleTree {
        MerkleTree {
            root: Arc::new(root),
            order,
            len,
        }
    }

    // ------------------------------------------------------------------
    // Pruning (verification-object construction)
    // ------------------------------------------------------------------

    /// Pruned tree sufficient to replay `get(key)` or `insert(key, _)`:
    /// the root-to-leaf path for `key` is materialized, everything else is
    /// stubs. Zero-copy: the materialized leaf is shared with `self`.
    pub fn prune_for_point(&self, key: &[u8]) -> MerkleTree {
        MerkleTree {
            root: prune_interval_rec(&self.root, Some(key), Some(key)),
            order: self.order,
            len: None,
        }
    }

    /// Pruned tree sufficient to replay `range(lo, hi)`: every subtree
    /// intersecting the closed interval `[lo, hi]` is materialized.
    /// Zero-copy: in-range subtrees are shared whole with `self`.
    pub fn prune_for_range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> MerkleTree {
        MerkleTree {
            root: prune_interval_rec(&self.root, lo, hi),
            order: self.order,
            len: None,
        }
    }

    /// Pruned tree sufficient to replay `delete(key)`: the path for `key`
    /// is materialized, and at every level the path node's adjacent siblings
    /// are shallow-materialized (leaves shared whole; internal nodes
    /// keys-only) so the replay can decide and perform borrows/merges.
    pub fn prune_for_delete(&self, key: &[u8]) -> MerkleTree {
        MerkleTree {
            root: prune_delete_rec(&self.root, key),
            order: self.order,
            len: None,
        }
    }

    /// Pruned tree sufficient to replay **any sequence** of point
    /// operations (`get`/`insert`) on `keys`: the union of the
    /// root-to-leaf paths, with spine siblings shared once instead of once
    /// per key. Zero-copy like [`MerkleTree::prune_for_point`].
    ///
    /// Replay-sufficiency of the union holds because point inserts split
    /// only nodes on their own root-to-leaf path: a split never destroys
    /// the materialization of another key's path (both halves of a split
    /// leaf stay materialized, and separator insertion shifts the other
    /// keys' child indices exactly as on the full tree). Deletes rebalance
    /// across *sibling* nodes and are therefore not covered — batch them
    /// via [`MerkleTree::prune_for_delete`] per key instead.
    pub fn prune_for_points(&self, keys: &[&[u8]]) -> MerkleTree {
        let mut sorted: Vec<&[u8]> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let root = if sorted.is_empty() {
            Arc::new(self.root.to_stub())
        } else {
            prune_points_rec(&self.root, &sorted)
        };
        MerkleTree {
            root,
            order: self.order,
            len: None,
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests and debug assertions)
    // ------------------------------------------------------------------

    /// Verifies structural invariants: key order, separator correctness,
    /// occupancy bounds, uniform depth, and digest/pair-digest consistency.
    /// Intended for tests; cost is O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut depth = None;
        check_rec(&self.root, None, None, self.order, true, 0, &mut depth)?;
        let counted = self.root.entry_count();
        match self.len {
            Some(len) if counted != len => Err(format!("len {len} != counted {counted}")),
            None => Err("full tree with unknown len".into()),
            _ => Ok(()),
        }
    }
}

impl Default for MerkleTree {
    fn default() -> Self {
        MerkleTree::new()
    }
}

// ----------------------------------------------------------------------
// Recursive workers
// ----------------------------------------------------------------------

type SplitInfo = Option<(Key, Arc<Node>)>;

fn insert_rec(
    node: &mut Arc<Node>,
    key: Key,
    value: Value,
    order: usize,
) -> Result<(Option<Value>, SplitInfo), TreeError> {
    if matches!(&**node, Node::Stub(_)) {
        return Err(TreeError::IncompleteProof);
    }
    // Copy-on-write: un-share this node before mutating it, so snapshots
    // and proofs holding the old version are unaffected.
    let node = Arc::make_mut(node);
    match node {
        Node::Stub(_) => unreachable!("checked above"),
        Node::Leaf { entries, .. } => {
            let old = match entries.binary_search_by(|e| e.key.as_slice().cmp(&key)) {
                Ok(i) => Some(entries[i].replace_value(value)),
                Err(i) => {
                    entries.insert(i, LeafEntry::new(key, value));
                    None
                }
            };
            let split = if entries.len() > order {
                let right_entries = entries.split_off(entries.len() / 2);
                let sep = right_entries[0].key.clone();
                let mut right = Node::Leaf {
                    entries: right_entries,
                    digest: Digest::ZERO,
                };
                right.recompute_digest();
                Some((sep, Arc::new(right)))
            } else {
                None
            };
            node.recompute_digest();
            Ok((old, split))
        }
        Node::Internal { keys, children, .. } => {
            let idx = child_index(keys, &key);
            let (old, child_split) = insert_rec(&mut children[idx], key, value, order)?;
            if let Some((sep, right)) = child_split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
            }
            let split = if children.len() > order {
                let mid = children.len() / 2;
                let right_children = children.split_off(mid);
                let right_keys = keys.split_off(mid);
                // keys now holds `keys[..mid]`; its last entry is promoted
                // as the separator between the two halves.
                let promote = keys.pop().expect("non-empty separator set");
                let mut right = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                    digest: Digest::ZERO,
                };
                right.recompute_digest();
                Some((promote, Arc::new(right)))
            } else {
                None
            };
            node.recompute_digest();
            Ok((old, split))
        }
    }
}

fn delete_rec(node: &mut Arc<Node>, key: &[u8], order: usize) -> Result<Option<Value>, TreeError> {
    if matches!(&**node, Node::Stub(_)) {
        return Err(TreeError::IncompleteProof);
    }
    let node = Arc::make_mut(node);
    match node {
        Node::Stub(_) => unreachable!("checked above"),
        Node::Leaf { entries, .. } => {
            let old = entries
                .binary_search_by(|e| e.key.as_slice().cmp(key))
                .ok()
                .map(|i| entries.remove(i).value);
            node.recompute_digest();
            Ok(old)
        }
        Node::Internal { keys, children, .. } => {
            let idx = child_index(keys, key);
            let old = delete_rec(&mut children[idx], key, order)?;
            if old.is_some() && is_underfull(&children[idx], order)? {
                rebalance(keys, children, idx, order)?;
            }
            node.recompute_digest();
            Ok(old)
        }
    }
}

/// Minimum entries for a non-root leaf / minimum children for a non-root
/// internal node.
#[inline]
fn min_fill(order: usize) -> usize {
    order / 2
}

fn is_underfull(node: &Node, order: usize) -> Result<bool, TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => Ok(entries.len() < min_fill(order)),
        Node::Internal { children, .. } => Ok(children.len() < min_fill(order)),
    }
}

fn has_spare(node: &Node, order: usize) -> Result<bool, TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => Ok(entries.len() > min_fill(order)),
        Node::Internal { children, .. } => Ok(children.len() > min_fill(order)),
    }
}

/// Repairs an underfull `children[idx]` by borrowing from or merging with an
/// adjacent sibling. Borrowing is preferred (left first), matching classic
/// B+-tree deletion; the choice order is part of the protocol: server and
/// client must transform state identically.
fn rebalance(
    keys: &mut Vec<Key>,
    children: &mut Vec<Arc<Node>>,
    idx: usize,
    order: usize,
) -> Result<(), TreeError> {
    if idx > 0 && has_spare(&children[idx - 1], order)? {
        borrow_from_left(keys, children, idx)
    } else if idx + 1 < children.len() && has_spare(&children[idx + 1], order)? {
        borrow_from_right(keys, children, idx)
    } else if idx > 0 {
        merge_into_left(keys, children, idx - 1)
    } else {
        merge_into_left(keys, children, idx)
    }
}

fn borrow_from_left(
    keys: &mut [Key],
    children: &mut [Arc<Node>],
    idx: usize,
) -> Result<(), TreeError> {
    let (l, r) = children.split_at_mut(idx);
    let left = Arc::make_mut(&mut l[idx - 1]);
    let cur = Arc::make_mut(&mut r[0]);
    match (left, cur) {
        (Node::Leaf { entries: le, .. }, Node::Leaf { entries: ce, .. }) => {
            let moved = le.pop().ok_or(TreeError::IncompleteProof)?;
            ce.insert(0, moved);
            keys[idx - 1] = ce[0].key.clone();
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
                ..
            },
            Node::Internal {
                keys: ck,
                children: cc,
                ..
            },
        ) => {
            let sep = std::mem::replace(
                &mut keys[idx - 1],
                lk.pop().ok_or(TreeError::IncompleteProof)?,
            );
            ck.insert(0, sep);
            cc.insert(0, lc.pop().ok_or(TreeError::IncompleteProof)?);
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    // Both nodes are unique after make_mut above, so these are in-place.
    Arc::make_mut(&mut children[idx - 1]).recompute_digest();
    Arc::make_mut(&mut children[idx]).recompute_digest();
    Ok(())
}

fn borrow_from_right(
    keys: &mut [Key],
    children: &mut [Arc<Node>],
    idx: usize,
) -> Result<(), TreeError> {
    let (l, r) = children.split_at_mut(idx + 1);
    let cur = Arc::make_mut(&mut l[idx]);
    let right = Arc::make_mut(&mut r[0]);
    match (cur, right) {
        (Node::Leaf { entries: ce, .. }, Node::Leaf { entries: re, .. }) => {
            if re.is_empty() {
                return Err(TreeError::IncompleteProof);
            }
            let moved = re.remove(0);
            ce.push(moved);
            keys[idx] = re[0].key.clone();
        }
        (
            Node::Internal {
                keys: ck,
                children: cc,
                ..
            },
            Node::Internal {
                keys: rk,
                children: rc,
                ..
            },
        ) => {
            if rk.is_empty() || rc.is_empty() {
                return Err(TreeError::IncompleteProof);
            }
            let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
            ck.push(sep);
            cc.push(rc.remove(0));
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    Arc::make_mut(&mut children[idx]).recompute_digest();
    Arc::make_mut(&mut children[idx + 1]).recompute_digest();
    Ok(())
}

/// Merges `children[li + 1]` into `children[li]`, consuming separator
/// `keys[li]`.
fn merge_into_left(
    keys: &mut Vec<Key>,
    children: &mut Vec<Arc<Node>>,
    li: usize,
) -> Result<(), TreeError> {
    let right = children.remove(li + 1);
    let sep = keys.remove(li);
    // Take the right node by value, cloning only if a snapshot still
    // shares it.
    let right = Arc::try_unwrap(right).unwrap_or_else(|shared| (*shared).clone());
    let left = Arc::make_mut(&mut children[li]);
    match (left, right) {
        (Node::Leaf { entries: le, .. }, Node::Leaf { entries: re, .. }) => {
            le.extend(re);
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
                ..
            },
            Node::Internal {
                keys: rk,
                children: rc,
                ..
            },
        ) => {
            lk.push(sep);
            lk.extend(rk);
            lc.extend(rc);
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    Arc::make_mut(&mut children[li]).recompute_digest();
    Ok(())
}

fn range_rec(
    node: &Node,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    out: &mut Vec<(Key, Value)>,
) -> Result<(), TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => {
            for e in entries {
                let above_lo = lo.is_none_or(|l| e.key.as_slice() >= l);
                let below_hi = hi.is_none_or(|h| e.key.as_slice() < h);
                if above_lo && below_hi {
                    out.push((e.key.clone(), e.value.clone()));
                }
            }
            Ok(())
        }
        Node::Internal { keys, children, .. } => {
            let start = lo.map_or(0, |l| child_index(keys, l));
            // Children up to and including the first whose lower bound is
            // >= hi can contain keys < hi.
            let end = hi.map_or(children.len() - 1, |h| {
                keys.partition_point(|k| k.as_slice() < h)
            });
            if start > end {
                // Inverted (empty) range.
                return Ok(());
            }
            for child in &children[start..=end] {
                range_rec(child, lo, hi, out)?;
            }
            Ok(())
        }
    }
}

/// Materializes exactly the subtrees whose key interval intersects the
/// closed interval `[lo, hi]` (`None` = unbounded), *sharing* them with the
/// source tree: leaves and fully-in-range subtrees are `Arc`-cloned whole;
/// only the boundary spine of internal nodes (with out-of-range children
/// stubbed) is freshly allocated.
fn prune_interval_rec(node: &Arc<Node>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Arc<Node> {
    match &**node {
        Node::Stub(_) | Node::Leaf { .. } => Arc::clone(node),
        Node::Internal {
            keys,
            children,
            digest,
        } => {
            let start = lo.map_or(0, |l| child_index(keys, l));
            let end = hi.map_or(children.len() - 1, |h| child_index(keys, h));
            let new_children: Vec<Arc<Node>> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i < start || i > end {
                        Arc::new(c.to_stub())
                    } else if (i > start || lo.is_none()) && (i < end || hi.is_none()) {
                        // The child's whole key interval lies inside
                        // [lo, hi]: recursing would materialize every
                        // node, so share the subtree as-is.
                        Arc::clone(c)
                    } else {
                        prune_interval_rec(c, lo, hi)
                    }
                })
                .collect();
            Arc::new(Node::Internal {
                keys: keys.clone(),
                children: new_children,
                digest: *digest,
            })
        }
    }
}

/// Materializes the union of the root-to-leaf paths for a **sorted,
/// deduplicated, non-empty** slice of keys. Each internal node partitions
/// the sorted keys into contiguous per-child groups; children covering no
/// key become stubs, the rest recurse with their group.
fn prune_points_rec(node: &Arc<Node>, keys: &[&[u8]]) -> Arc<Node> {
    debug_assert!(!keys.is_empty());
    match &**node {
        Node::Stub(_) | Node::Leaf { .. } => Arc::clone(node),
        Node::Internal {
            keys: seps,
            children,
            digest,
        } => {
            let mut at = 0usize;
            let new_children: Vec<Arc<Node>> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let start = at;
                    while at < keys.len() && child_index(seps, keys[at]) == i {
                        at += 1;
                    }
                    if start == at {
                        Arc::new(c.to_stub())
                    } else {
                        prune_points_rec(c, &keys[start..at])
                    }
                })
                .collect();
            Arc::new(Node::Internal {
                keys: seps.clone(),
                children: new_children,
                digest: *digest,
            })
        }
    }
}

fn prune_delete_rec(node: &Arc<Node>, key: &[u8]) -> Arc<Node> {
    match &**node {
        Node::Stub(_) | Node::Leaf { .. } => Arc::clone(node),
        Node::Internal {
            keys,
            children,
            digest,
        } => {
            let idx = child_index(keys, key);
            let new_children: Vec<Arc<Node>> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == idx {
                        prune_delete_rec(c, key)
                    } else if i + 1 == idx || i == idx + 1 {
                        shallow_copy(c)
                    } else {
                        Arc::new(c.to_stub())
                    }
                })
                .collect();
            Arc::new(Node::Internal {
                keys: keys.clone(),
                children: new_children,
                digest: *digest,
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_rec(
    node: &Node,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    order: usize,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
) -> Result<(), String> {
    match node {
        Node::Stub(_) => Err("full tree contains a stub".into()),
        Node::Leaf { entries, .. } => {
            match leaf_depth {
                Some(d) if *d != depth => {
                    return Err(format!("leaf depth {depth} != expected {d}"))
                }
                None => *leaf_depth = Some(depth),
                _ => {}
            }
            if !is_root && entries.len() < min_fill(order) {
                return Err(format!("leaf underfull: {}", entries.len()));
            }
            if entries.len() > order {
                return Err(format!("leaf overfull: {}", entries.len()));
            }
            for w in entries.windows(2) {
                if w[0].key >= w[1].key {
                    return Err("leaf keys out of order".into());
                }
            }
            for e in entries {
                if let Some(l) = lo {
                    if e.key.as_slice() < l {
                        return Err("leaf key below lower bound".into());
                    }
                }
                if let Some(h) = hi {
                    if e.key.as_slice() >= h {
                        return Err("leaf key above upper bound".into());
                    }
                }
            }
            // Recompute both the per-entry pair digests and the leaf digest
            // to catch a stale cache at either level.
            let mut copy = node.clone();
            if let Node::Leaf { entries, .. } = &mut copy {
                for e in entries.iter_mut() {
                    e.rehash();
                }
            }
            copy.recompute_digest();
            if copy.digest() != node.digest() {
                return Err("stale leaf digest".into());
            }
            Ok(())
        }
        Node::Internal { keys, children, .. } => {
            if children.len() != keys.len() + 1 {
                return Err("child/separator count mismatch".into());
            }
            let min = if is_root { 2 } else { min_fill(order) };
            if children.len() < min {
                return Err(format!("internal underfull: {}", children.len()));
            }
            if children.len() > order {
                return Err(format!("internal overfull: {}", children.len()));
            }
            for w in keys.windows(2) {
                if w[0] >= w[1] {
                    return Err("separator keys out of order".into());
                }
            }
            for (i, child) in children.iter().enumerate() {
                let clo = if i == 0 {
                    lo
                } else {
                    Some(keys[i - 1].as_slice())
                };
                let chi = if i == keys.len() {
                    hi
                } else {
                    Some(keys[i].as_slice())
                };
                check_rec(child, clo, chi, order, false, depth + 1, leaf_depth)?;
            }
            let mut copy = node.clone();
            copy.recompute_digest();
            if copy.digest() != node.digest() {
                return Err("stale internal digest".into());
            }
            Ok(())
        }
    }
}
