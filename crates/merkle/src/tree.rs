//! The Merkle B+-tree (§4.1 of the paper) and its pruning operations.
//!
//! One tree type serves both sides of the protocol:
//!
//! * the **server** holds a *full* tree (no stubs) and answers queries;
//! * the **client** receives a *pruned* tree — the verification object — in
//!   which every subtree irrelevant to the operation is replaced by a
//!   [`Stub`](crate::node::Node) carrying only its digest.
//!
//! Because both trees run exactly the same operation code, the client
//! *replays* the server's operation on the pruned tree: if the pruned tree's
//! root digest matches the client's known root digest `M(D)`, and the replay
//! succeeds, the recomputed answer and new root digest are authoritative.
//! Touching a stub during replay means the proof was incomplete (server
//! misbehaviour).

use tcvs_crypto::Digest;

use crate::error::TreeError;
use crate::node::{Key, Node, Value};

/// Minimum supported branching order.
pub const MIN_ORDER: usize = 4;
/// Default branching order (max children per internal node and max entries
/// per leaf).
pub const DEFAULT_ORDER: usize = 16;

/// A Merkle B+-tree over byte keys and values.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    root: Node,
    order: usize,
    /// Entry count; meaningful for full trees (pruned trees inherit the
    /// server value only if the server chooses to send it — clients must not
    /// rely on it).
    len: usize,
}

/// Returns the index of the child subtree that covers `key`.
#[inline]
fn child_index(keys: &[Key], key: &[u8]) -> usize {
    keys.partition_point(|k| k.as_slice() <= key)
}

impl MerkleTree {
    /// Creates an empty tree with the default branching order.
    pub fn new() -> MerkleTree {
        MerkleTree::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with branching order `order` (≥ 4).
    pub fn with_order(order: usize) -> MerkleTree {
        assert!(order >= MIN_ORDER, "order {order} < minimum {MIN_ORDER}");
        MerkleTree {
            root: Node::empty_leaf(),
            order,
            len: 0,
        }
    }

    /// The root digest `M(D)` of the current state.
    pub fn root_digest(&self) -> Digest {
        self.root.digest()
    }

    /// The branching order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of entries (full trees only).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of materialized (non-stub) nodes; for a pruned tree this is
    /// the proof size in nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.root.materialized_nodes()
    }

    /// Wire-size estimate of this tree's encoding in bytes.
    pub fn encoded_size(&self) -> usize {
        self.root.encoded_size()
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup. `Err(IncompleteProof)` if the search hits a stub.
    pub fn get(&self, key: &[u8]) -> Result<Option<&Value>, TreeError> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Stub(_) => return Err(TreeError::IncompleteProof),
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| &entries[i].1));
                }
                Node::Internal { keys, children, .. } => {
                    node = &children[child_index(keys, key)];
                }
            }
        }
    }

    /// Range scan over `[lo, hi)`; `None` bounds are unbounded. Results are
    /// in key order. Stubs that *cannot* overlap the range are skipped;
    /// overlapping stubs raise `IncompleteProof`.
    pub fn range(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Key, Value)>, TreeError> {
        let mut out = Vec::new();
        range_rec(&self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    /// All entries in key order (full trees).
    pub fn entries(&self) -> Result<Vec<(Key, Value)>, TreeError> {
        self.range(None, None)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Inserts or replaces `key`; returns the previous value if any.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<Option<Value>, TreeError> {
        let (old, split) = insert_rec(&mut self.root, key, value, self.order)?;
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
            let mut new_root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
                digest: Digest::ZERO,
            };
            new_root.recompute_digest();
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    /// Deletes `key`; returns the removed value if it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<Option<Value>, TreeError> {
        let old = delete_rec(&mut self.root, key, self.order)?;
        // Collapse a root that shrank to a single child.
        if let Node::Internal { children, .. } = &mut self.root {
            if children.len() == 1 {
                self.root = children.pop().expect("one child");
            }
        }
        if old.is_some() {
            self.len -= 1;
        }
        Ok(old)
    }

    /// Recomputes every materialized node digest bottom-up, replacing any
    /// cached digests. Run on *received* pruned trees before trusting their
    /// root digest.
    pub fn recompute_all_digests(&mut self) {
        self.root.recompute_all();
    }

    /// Borrow of the root node (crate-internal, for the codec).
    pub(crate) fn root_ref(&self) -> &Node {
        &self.root
    }

    /// Reassembles a tree from decoded parts (crate-internal, for the
    /// codec; the caller has already verified digests and structure).
    pub(crate) fn from_parts(root: Node, order: usize, len: usize) -> MerkleTree {
        MerkleTree { root, order, len }
    }

    // ------------------------------------------------------------------
    // Pruning (verification-object construction)
    // ------------------------------------------------------------------

    /// Pruned copy sufficient to replay `get(key)` or `insert(key, _)`:
    /// the root-to-leaf path for `key` is materialized, everything else is
    /// stubs.
    pub fn prune_for_point(&self, key: &[u8]) -> MerkleTree {
        MerkleTree {
            root: prune_interval_rec(&self.root, Some(key), Some(key)),
            order: self.order,
            len: self.len,
        }
    }

    /// Pruned copy sufficient to replay `range(lo, hi)`: every subtree
    /// intersecting the closed interval `[lo, hi]` is materialized.
    pub fn prune_for_range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> MerkleTree {
        MerkleTree {
            root: prune_interval_rec(&self.root, lo, hi),
            order: self.order,
            len: self.len,
        }
    }

    /// Pruned copy sufficient to replay `delete(key)`: the path for `key`
    /// is materialized, and at every level the path node's adjacent siblings
    /// are shallow-materialized (leaves fully; internal nodes keys-only) so
    /// the replay can decide and perform borrows/merges.
    pub fn prune_for_delete(&self, key: &[u8]) -> MerkleTree {
        MerkleTree {
            root: prune_delete_rec(&self.root, key),
            order: self.order,
            len: self.len,
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests and debug assertions)
    // ------------------------------------------------------------------

    /// Verifies structural invariants: key order, separator correctness,
    /// occupancy bounds, uniform depth, and digest consistency. Intended for
    /// tests; cost is O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut depth = None;
        check_rec(&self.root, None, None, self.order, true, 0, &mut depth)?;
        let counted = count_entries(&self.root);
        if counted != self.len {
            return Err(format!("len {} != counted {}", self.len, counted));
        }
        Ok(())
    }
}

impl Default for MerkleTree {
    fn default() -> Self {
        MerkleTree::new()
    }
}

// ----------------------------------------------------------------------
// Recursive workers
// ----------------------------------------------------------------------

type SplitInfo = Option<(Key, Node)>;

fn insert_rec(
    node: &mut Node,
    key: Key,
    value: Value,
    order: usize,
) -> Result<(Option<Value>, SplitInfo), TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => {
            let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(&key)) {
                Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
                Err(i) => {
                    entries.insert(i, (key, value));
                    None
                }
            };
            let split = if entries.len() > order {
                let right_entries = entries.split_off(entries.len() / 2);
                let sep = right_entries[0].0.clone();
                let mut right = Node::Leaf {
                    entries: right_entries,
                    digest: Digest::ZERO,
                };
                right.recompute_digest();
                Some((sep, right))
            } else {
                None
            };
            node.recompute_digest();
            Ok((old, split))
        }
        Node::Internal { keys, children, .. } => {
            let idx = child_index(keys, &key);
            let (old, child_split) = insert_rec(&mut children[idx], key, value, order)?;
            if let Some((sep, right)) = child_split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
            }
            let split = if children.len() > order {
                let mid = children.len() / 2;
                let right_children = children.split_off(mid);
                let right_keys = keys.split_off(mid);
                // keys now holds `keys[..mid]`; its last entry is promoted
                // as the separator between the two halves.
                let promote = keys.pop().expect("non-empty separator set");
                let mut right = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                    digest: Digest::ZERO,
                };
                right.recompute_digest();
                Some((promote, right))
            } else {
                None
            };
            node.recompute_digest();
            Ok((old, split))
        }
    }
}

fn delete_rec(node: &mut Node, key: &[u8], order: usize) -> Result<Option<Value>, TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => {
            let old = entries
                .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| entries.remove(i).1);
            node.recompute_digest();
            Ok(old)
        }
        Node::Internal { keys, children, .. } => {
            let idx = child_index(keys, key);
            let old = delete_rec(&mut children[idx], key, order)?;
            if old.is_some() && is_underfull(&children[idx], order)? {
                rebalance(keys, children, idx, order)?;
            }
            node.recompute_digest();
            Ok(old)
        }
    }
}

/// Minimum entries for a non-root leaf / minimum children for a non-root
/// internal node.
#[inline]
fn min_fill(order: usize) -> usize {
    order / 2
}

fn is_underfull(node: &Node, order: usize) -> Result<bool, TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => Ok(entries.len() < min_fill(order)),
        Node::Internal { children, .. } => Ok(children.len() < min_fill(order)),
    }
}

fn has_spare(node: &Node, order: usize) -> Result<bool, TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => Ok(entries.len() > min_fill(order)),
        Node::Internal { children, .. } => Ok(children.len() > min_fill(order)),
    }
}

/// Repairs an underfull `children[idx]` by borrowing from or merging with an
/// adjacent sibling. Borrowing is preferred (left first), matching classic
/// B+-tree deletion; the choice order is part of the protocol: server and
/// client must transform state identically.
fn rebalance(
    keys: &mut Vec<Key>,
    children: &mut Vec<Node>,
    idx: usize,
    order: usize,
) -> Result<(), TreeError> {
    if idx > 0 && has_spare(&children[idx - 1], order)? {
        borrow_from_left(keys, children, idx)
    } else if idx + 1 < children.len() && has_spare(&children[idx + 1], order)? {
        borrow_from_right(keys, children, idx)
    } else if idx > 0 {
        merge_into_left(keys, children, idx - 1)
    } else {
        merge_into_left(keys, children, idx)
    }
}

fn borrow_from_left(keys: &mut [Key], children: &mut [Node], idx: usize) -> Result<(), TreeError> {
    let (l, r) = children.split_at_mut(idx);
    let left = &mut l[idx - 1];
    let cur = &mut r[0];
    match (left, cur) {
        (
            Node::Leaf {
                entries: le,
                digest: ld,
            },
            Node::Leaf {
                entries: ce,
                digest: cd,
            },
        ) => {
            let moved = le.pop().ok_or(TreeError::IncompleteProof)?;
            ce.insert(0, moved);
            keys[idx - 1] = ce[0].0.clone();
            // Recompute both digests in place.
            *ld = Digest::ZERO;
            *cd = Digest::ZERO;
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
                digest: ld,
            },
            Node::Internal {
                keys: ck,
                children: cc,
                digest: cd,
            },
        ) => {
            let sep = std::mem::replace(
                &mut keys[idx - 1],
                lk.pop().ok_or(TreeError::IncompleteProof)?,
            );
            ck.insert(0, sep);
            cc.insert(0, lc.pop().ok_or(TreeError::IncompleteProof)?);
            *ld = Digest::ZERO;
            *cd = Digest::ZERO;
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    children[idx - 1].recompute_digest();
    children[idx].recompute_digest();
    Ok(())
}

fn borrow_from_right(keys: &mut [Key], children: &mut [Node], idx: usize) -> Result<(), TreeError> {
    let (l, r) = children.split_at_mut(idx + 1);
    let cur = &mut l[idx];
    let right = &mut r[0];
    match (cur, right) {
        (
            Node::Leaf {
                entries: ce,
                digest: cd,
            },
            Node::Leaf {
                entries: re,
                digest: rd,
            },
        ) => {
            if re.is_empty() {
                return Err(TreeError::IncompleteProof);
            }
            let moved = re.remove(0);
            ce.push(moved);
            keys[idx] = re[0].0.clone();
            *cd = Digest::ZERO;
            *rd = Digest::ZERO;
        }
        (
            Node::Internal {
                keys: ck,
                children: cc,
                digest: cd,
            },
            Node::Internal {
                keys: rk,
                children: rc,
                digest: rd,
            },
        ) => {
            if rk.is_empty() || rc.is_empty() {
                return Err(TreeError::IncompleteProof);
            }
            let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
            ck.push(sep);
            cc.push(rc.remove(0));
            *cd = Digest::ZERO;
            *rd = Digest::ZERO;
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    children[idx].recompute_digest();
    children[idx + 1].recompute_digest();
    Ok(())
}

/// Merges `children[li + 1]` into `children[li]`, consuming separator
/// `keys[li]`.
fn merge_into_left(
    keys: &mut Vec<Key>,
    children: &mut Vec<Node>,
    li: usize,
) -> Result<(), TreeError> {
    let right = children.remove(li + 1);
    let sep = keys.remove(li);
    match (&mut children[li], right) {
        (Node::Leaf { entries: le, .. }, Node::Leaf { entries: re, .. }) => {
            le.extend(re);
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
                ..
            },
            Node::Internal {
                keys: rk,
                children: rc,
                ..
            },
        ) => {
            lk.push(sep);
            lk.extend(rk);
            lc.extend(rc);
        }
        _ => return Err(TreeError::IncompleteProof),
    }
    children[li].recompute_digest();
    Ok(())
}

fn range_rec(
    node: &Node,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    out: &mut Vec<(Key, Value)>,
) -> Result<(), TreeError> {
    match node {
        Node::Stub(_) => Err(TreeError::IncompleteProof),
        Node::Leaf { entries, .. } => {
            for (k, v) in entries {
                let above_lo = lo.is_none_or(|l| k.as_slice() >= l);
                let below_hi = hi.is_none_or(|h| k.as_slice() < h);
                if above_lo && below_hi {
                    out.push((k.clone(), v.clone()));
                }
            }
            Ok(())
        }
        Node::Internal { keys, children, .. } => {
            let start = lo.map_or(0, |l| child_index(keys, l));
            // Children up to and including the first whose lower bound is
            // >= hi can contain keys < hi.
            let end = hi.map_or(children.len() - 1, |h| {
                keys.partition_point(|k| k.as_slice() < h)
            });
            if start > end {
                // Inverted (empty) range.
                return Ok(());
            }
            for child in &children[start..=end] {
                range_rec(child, lo, hi, out)?;
            }
            Ok(())
        }
    }
}

/// Materializes exactly the subtrees whose key interval intersects the
/// closed interval `[lo, hi]` (`None` = unbounded).
fn prune_interval_rec(node: &Node, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Node {
    match node {
        Node::Stub(d) => Node::Stub(*d),
        Node::Leaf { entries, digest } => Node::Leaf {
            entries: entries.clone(),
            digest: *digest,
        },
        Node::Internal {
            keys,
            children,
            digest,
        } => {
            let start = lo.map_or(0, |l| child_index(keys, l));
            let end = hi.map_or(children.len() - 1, |h| child_index(keys, h));
            let new_children: Vec<Node> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i >= start && i <= end {
                        prune_interval_rec(c, lo, hi)
                    } else {
                        c.to_stub()
                    }
                })
                .collect();
            Node::Internal {
                keys: keys.clone(),
                children: new_children,
                digest: *digest,
            }
        }
    }
}

fn prune_delete_rec(node: &Node, key: &[u8]) -> Node {
    match node {
        Node::Stub(d) => Node::Stub(*d),
        Node::Leaf { entries, digest } => Node::Leaf {
            entries: entries.clone(),
            digest: *digest,
        },
        Node::Internal {
            keys,
            children,
            digest,
        } => {
            let idx = child_index(keys, key);
            let new_children: Vec<Node> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == idx {
                        prune_delete_rec(c, key)
                    } else if i + 1 == idx || i == idx + 1 {
                        c.shallow_copy()
                    } else {
                        c.to_stub()
                    }
                })
                .collect();
            Node::Internal {
                keys: keys.clone(),
                children: new_children,
                digest: *digest,
            }
        }
    }
}

fn count_entries(node: &Node) -> usize {
    match node {
        Node::Stub(_) => 0,
        Node::Leaf { entries, .. } => entries.len(),
        Node::Internal { children, .. } => children.iter().map(count_entries).sum(),
    }
}

#[allow(clippy::too_many_arguments)]
fn check_rec(
    node: &Node,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    order: usize,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
) -> Result<(), String> {
    match node {
        Node::Stub(_) => Err("full tree contains a stub".into()),
        Node::Leaf { entries, .. } => {
            match leaf_depth {
                Some(d) if *d != depth => {
                    return Err(format!("leaf depth {depth} != expected {d}"))
                }
                None => *leaf_depth = Some(depth),
                _ => {}
            }
            if !is_root && entries.len() < min_fill(order) {
                return Err(format!("leaf underfull: {}", entries.len()));
            }
            if entries.len() > order {
                return Err(format!("leaf overfull: {}", entries.len()));
            }
            for w in entries.windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err("leaf keys out of order".into());
                }
            }
            for (k, _) in entries {
                if let Some(l) = lo {
                    if k.as_slice() < l {
                        return Err("leaf key below lower bound".into());
                    }
                }
                if let Some(h) = hi {
                    if k.as_slice() >= h {
                        return Err("leaf key above upper bound".into());
                    }
                }
            }
            let mut copy = node.clone();
            copy.recompute_digest();
            if copy.digest() != node.digest() {
                return Err("stale leaf digest".into());
            }
            Ok(())
        }
        Node::Internal { keys, children, .. } => {
            if children.len() != keys.len() + 1 {
                return Err("child/separator count mismatch".into());
            }
            let min = if is_root { 2 } else { min_fill(order) };
            if children.len() < min {
                return Err(format!("internal underfull: {}", children.len()));
            }
            if children.len() > order {
                return Err(format!("internal overfull: {}", children.len()));
            }
            for w in keys.windows(2) {
                if w[0] >= w[1] {
                    return Err("separator keys out of order".into());
                }
            }
            for (i, child) in children.iter().enumerate() {
                let clo = if i == 0 {
                    lo
                } else {
                    Some(keys[i - 1].as_slice())
                };
                let chi = if i == keys.len() {
                    hi
                } else {
                    Some(keys[i].as_slice())
                };
                check_rec(child, clo, chi, order, false, depth + 1, leaf_depth)?;
            }
            let mut copy = node.clone();
            copy.recompute_digest();
            if copy.digest() != node.digest() {
                return Err("stale internal digest".into());
            }
            Ok(())
        }
    }
}
