//! The grove: a fixed-fanout Merkle combine of N shard roots.
//!
//! Sharding partitions the keyspace across N independent Merkle B+-trees
//! (one per shard server). Clients must still verify against a *single*
//! root, so the N shard roots are folded into one **grove root** by a small
//! fixed-fanout Merkle tree built here. A sharded verification object then
//! becomes two pieces:
//!
//! 1. the ordinary per-shard [`VerificationObject`] (pruned pre-state tree
//!    of the shard that owns the key), and
//! 2. a [`GroveSpine`]: the sibling digests along the fold from that
//!    shard's leaf up to the grove root.
//!
//! [`verify_grove_response`] replays the op on the shard proof, checks that
//! the shard's pre-state root folds (through the spine) to the known grove
//! root, and re-folds the shard's post-state root to obtain the new grove
//! root — so the client-side trust story is unchanged: one root digest
//! commits to the entire sharded database.
//!
//! Leaves are domain-separated and bind both the shard index and the shard
//! count, so a proof for shard `i` of `N` can never be replayed as a proof
//! for shard `j` of `M`.

use tcvs_crypto::{hash_parts, Digest};

use crate::error::VerifyError;
use crate::op::{Op, OpResult};
use crate::verify::{replay_unanchored, VerificationObject};

/// Fixed fanout of the grove combine. Small and constant: with realistic
/// shard counts (≤ 64) the spine is at most three levels.
pub const GROVE_FANOUT: usize = 4;

const LEAF_TAG: &[u8] = b"tcvs-grove-leaf";
const NODE_TAG: &[u8] = b"tcvs-grove-node";

fn leaf_digest(shard_index: usize, n_shards: usize, shard_root: &Digest) -> Digest {
    hash_parts(&[
        LEAF_TAG,
        &(shard_index as u64).to_le_bytes(),
        &(n_shards as u64).to_le_bytes(),
        shard_root.as_bytes(),
    ])
}

fn node_digest(children: &[Digest]) -> Digest {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(children.len() + 1);
    parts.push(NODE_TAG);
    for c in children {
        parts.push(c.as_bytes());
    }
    hash_parts(&parts)
}

/// Folds N shard roots into the grove root.
///
/// Deterministic in the shard-root slice alone — no RNG, clock, or spawn
/// order — so any party holding the same per-shard roots computes the same
/// grove root.
///
/// # Panics
///
/// Panics on an empty slice: a grove has at least one shard.
pub fn grove_root(shard_roots: &[Digest]) -> Digest {
    assert!(!shard_roots.is_empty(), "grove of zero shards");
    let n = shard_roots.len();
    let mut level: Vec<Digest> = shard_roots
        .iter()
        .enumerate()
        .map(|(i, r)| leaf_digest(i, n, r))
        .collect();
    while level.len() > 1 {
        level = level.chunks(GROVE_FANOUT).map(node_digest).collect();
    }
    level[0]
}

/// The fold path from one shard's leaf to the grove root: at every level,
/// the shard-side node's position within its chunk and the sibling digests
/// in order (ours excluded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroveSpine {
    shard_index: usize,
    n_shards: usize,
    levels: Vec<(usize, Vec<Digest>)>,
}

impl GroveSpine {
    /// Builds the spine for `shard_index` from the full shard-root set.
    ///
    /// # Panics
    ///
    /// Panics if `shard_index` is out of range or `shard_roots` is empty.
    pub fn prove(shard_roots: &[Digest], shard_index: usize) -> GroveSpine {
        assert!(!shard_roots.is_empty(), "grove of zero shards");
        assert!(shard_index < shard_roots.len(), "shard index out of range");
        let n = shard_roots.len();
        let mut level: Vec<Digest> = shard_roots
            .iter()
            .enumerate()
            .map(|(i, r)| leaf_digest(i, n, r))
            .collect();
        let mut idx = shard_index;
        let mut levels = Vec::new();
        while level.len() > 1 {
            let chunk_start = (idx / GROVE_FANOUT) * GROVE_FANOUT;
            let chunk_end = (chunk_start + GROVE_FANOUT).min(level.len());
            let pos = idx - chunk_start;
            let siblings: Vec<Digest> = level[chunk_start..chunk_end]
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, d)| *d)
                .collect();
            levels.push((pos, siblings));
            level = level.chunks(GROVE_FANOUT).map(node_digest).collect();
            idx /= GROVE_FANOUT;
        }
        GroveSpine {
            shard_index,
            n_shards: n,
            levels,
        }
    }

    /// The shard this spine authenticates.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The shard count the spine binds to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Folds a shard root up the spine to the grove root it implies.
    pub fn resolve(&self, shard_root: &Digest) -> Digest {
        let mut d = leaf_digest(self.shard_index, self.n_shards, shard_root);
        for (pos, siblings) in &self.levels {
            let mut children: Vec<Digest> = Vec::with_capacity(siblings.len() + 1);
            children.extend_from_slice(&siblings[..*pos]);
            children.push(d);
            children.extend_from_slice(&siblings[*pos..]);
            d = node_digest(&children);
        }
        d
    }

    /// Spine size estimate in bytes (sibling digests plus per-level
    /// positions), for proof-size accounting alongside
    /// [`VerificationObject::encoded_size`].
    pub fn encoded_size(&self) -> usize {
        let sib_bytes: usize = self.levels.iter().map(|(_, s)| s.len() * 32).sum();
        16 + self.levels.len() * 8 + sib_bytes
    }
}

/// Outcome of a successful sharded verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroveVerified {
    /// The replayed (hence authenticated) answer.
    pub result: OpResult,
    /// The owning shard's root after the operation.
    pub new_shard_root: Digest,
    /// The grove root after the operation: the spine re-folded over
    /// `new_shard_root`. Equals the pre-state grove root for reads.
    pub new_grove_root: Digest,
}

/// Verifies a sharded server response against a known **grove** root.
///
/// Replays `op` on the shard's verification object, folds the shard's
/// pre-state root up the spine and compares against `known_grove_root`,
/// then re-folds the post-state shard root to produce the next grove root.
/// A deviation *anywhere* — in the shard proof, in the spine, or in a
/// sibling shard root the server misreports — surfaces as a mismatch here,
/// exactly as in the single-tree [`crate::verify_response`] flow.
pub fn verify_grove_response(
    known_grove_root: &Digest,
    expected_order: usize,
    spine: &GroveSpine,
    vo: &VerificationObject,
    op: &Op,
    claimed: Option<&OpResult>,
    claimed_new_grove_root: Option<&Digest>,
) -> Result<GroveVerified, VerifyError> {
    let (old_shard_root, verified) = replay_unanchored(expected_order, vo, op, claimed)?;
    if spine.resolve(&old_shard_root) != *known_grove_root {
        return Err(VerifyError::RootMismatch);
    }
    let new_grove_root = spine.resolve(&verified.new_root);
    if let Some(claimed_root) = claimed_new_grove_root {
        if claimed_root != &new_grove_root {
            return Err(VerifyError::NewRootMismatch);
        }
    }
    Ok(GroveVerified {
        result: verified.result,
        new_shard_root: verified.new_root,
        new_grove_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;
    use crate::op::{apply_op, prune_for_op};
    use crate::tree::MerkleTree;

    fn roots(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| hash_parts(&[b"test-shard-root", &(i as u64).to_le_bytes()]))
            .collect()
    }

    #[test]
    fn spine_resolves_to_grove_root_for_every_index_and_count() {
        for n in 1..=17 {
            let rs = roots(n);
            let gr = grove_root(&rs);
            for i in 0..n {
                let spine = GroveSpine::prove(&rs, i);
                assert_eq!(spine.resolve(&rs[i]), gr, "n={n} i={i}");
                assert_eq!(spine.shard_index(), i);
                assert_eq!(spine.n_shards(), n);
            }
        }
    }

    #[test]
    fn grove_root_binds_shard_count() {
        // The same root multiset under a different shard count must fold to
        // a different grove root (leaf digests bind n).
        let rs3 = roots(3);
        let mut rs4 = rs3.clone();
        rs4.push(rs3[0]);
        assert_ne!(grove_root(&rs3), grove_root(&rs4));
    }

    #[test]
    fn grove_root_binds_position() {
        let mut rs = roots(4);
        let gr = grove_root(&rs);
        rs.swap(1, 2);
        assert_ne!(grove_root(&rs), gr);
    }

    #[test]
    fn tampered_sibling_changes_resolution() {
        let rs = roots(8);
        let gr = grove_root(&rs);
        let mut spine = GroveSpine::prove(&rs, 3);
        spine.levels[0].1[0] = hash_parts(&[b"evil"]);
        assert_ne!(spine.resolve(&rs[3]), gr);
    }

    #[test]
    fn single_shard_grove_differs_from_bare_root() {
        // Even a 1-shard grove is domain-separated from the raw tree root,
        // so a grove client can never be confused with a single-tree client.
        let rs = roots(1);
        assert_ne!(grove_root(&rs), rs[0]);
    }

    fn shard_tree(n: u64, order: usize) -> MerkleTree {
        let mut t = MerkleTree::with_order(order);
        for i in 0..n {
            t.insert(u64_key(i), format!("v{i}").into_bytes()).unwrap();
        }
        t
    }

    #[test]
    fn honest_sharded_update_verifies_and_updates_grove_root() {
        let order = 8;
        let mut shards: Vec<MerkleTree> = (0..4).map(|_| shard_tree(64, order)).collect();
        let rs: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        let gr0 = grove_root(&rs);

        let shard = 2;
        let op = Op::Put(u64_key(10), b"changed".to_vec());
        let vo = VerificationObject::new(prune_for_op(&shards[shard], &op));
        let result = apply_op(&mut shards[shard], &op).unwrap();
        let spine = GroveSpine::prove(&rs, shard);

        let v = verify_grove_response(&gr0, order, &spine, &vo, &op, Some(&result), None).unwrap();
        assert_eq!(v.new_shard_root, shards[shard].root_digest());

        let rs1: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        assert_eq!(v.new_grove_root, grove_root(&rs1));
    }

    #[test]
    fn sharded_read_keeps_grove_root() {
        let order = 8;
        let shards: Vec<MerkleTree> = (0..3).map(|_| shard_tree(32, order)).collect();
        let rs: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        let gr0 = grove_root(&rs);

        let shard = 1;
        let op = Op::Get(u64_key(7));
        let vo = VerificationObject::new(prune_for_op(&shards[shard], &op));
        let spine = GroveSpine::prove(&rs, shard);
        let v = verify_grove_response(&gr0, order, &spine, &vo, &op, None, None).unwrap();
        assert_eq!(v.new_grove_root, gr0);
        assert_eq!(v.result, OpResult::Value(Some(b"v7".to_vec())));
    }

    #[test]
    fn stale_spine_detected() {
        // Spine built against old sibling roots: the fold misses the known
        // grove root.
        let order = 8;
        let mut shards: Vec<MerkleTree> = (0..4).map(|_| shard_tree(32, order)).collect();
        let rs_old: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        // Shard 0 advances; the client tracks the fresh grove root.
        apply_op(&mut shards[0], &Op::Put(u64_key(1), b"x".to_vec())).unwrap();
        let rs_new: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        let gr_new = grove_root(&rs_new);

        // Server answers a shard-2 read with a spine sampled at the *old*
        // grove epoch.
        let op = Op::Get(u64_key(3));
        let vo = VerificationObject::new(prune_for_op(&shards[2], &op));
        let stale_spine = GroveSpine::prove(&rs_old, 2);
        let err =
            verify_grove_response(&gr_new, order, &stale_spine, &vo, &op, None, None).unwrap_err();
        assert_eq!(err, VerifyError::RootMismatch);
    }

    #[test]
    fn wrong_shard_proof_detected() {
        // A proof from shard 1 presented under shard 0's spine slot: the
        // leaf binding (index) makes the fold miss.
        let order = 8;
        let shards: Vec<MerkleTree> = (0..2).map(|i| shard_tree(16 + i as u64, order)).collect();
        let rs: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        let gr = grove_root(&rs);
        let op = Op::Get(u64_key(3));
        let vo = VerificationObject::new(prune_for_op(&shards[1], &op));
        let spine = GroveSpine::prove(&rs, 0);
        let err = verify_grove_response(&gr, order, &spine, &vo, &op, None, None).unwrap_err();
        assert_eq!(err, VerifyError::RootMismatch);
    }

    #[test]
    fn forged_grove_new_root_detected() {
        let order = 8;
        let mut shards: Vec<MerkleTree> = (0..2).map(|_| shard_tree(16, order)).collect();
        let rs: Vec<Digest> = shards.iter().map(|t| t.root_digest()).collect();
        let gr0 = grove_root(&rs);
        let op = Op::Put(u64_key(2), b"v".to_vec());
        let vo = VerificationObject::new(prune_for_op(&shards[0], &op));
        let result = apply_op(&mut shards[0], &op).unwrap();
        let spine = GroveSpine::prove(&rs, 0);
        // Server claims the grove root did not move (dropped update).
        let err = verify_grove_response(&gr0, order, &spine, &vo, &op, Some(&result), Some(&gr0))
            .unwrap_err();
        assert_eq!(err, VerifyError::NewRootMismatch);
    }

    #[test]
    fn spine_size_is_logarithmic() {
        let rs = roots(64);
        let spine = GroveSpine::prove(&rs, 17);
        // 64 shards at fanout 4 → 3 levels × 3 siblings × 32 bytes + overhead.
        assert!(spine.encoded_size() < 512, "{}", spine.encoded_size());
    }
}
