//! Structure-preserving serialization of Merkle B+-trees.
//!
//! Used for server snapshots/backups and for shipping verification objects
//! across process boundaries. The encoding preserves the exact node
//! structure (not just the entries), so digests — including the root digest
//! the whole protocol hangs off — are bit-identical after a round trip.
//! Stub nodes encode their digest, so pruned trees (proofs) serialize too.
//!
//! Decoding recomputes and verifies every materialized digest: a corrupted
//! or tampered byte stream is rejected rather than trusted.

use tcvs_crypto::Digest;

use crate::node::{LeafEntry, Node};
use crate::tree::MerkleTree;

/// Errors from decoding a serialized tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended early.
    Truncated,
    /// Unknown node tag byte.
    BadTag(u8),
    /// Structural rule violated (child/key arity, order bounds).
    Malformed(&'static str),
    /// A stored digest does not match the recomputed digest of the decoded
    /// content.
    DigestMismatch,
    /// Trailing bytes after the tree.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadTag(t) => write!(f, "unknown node tag {t}"),
            CodecError::Malformed(m) => write!(f, "malformed tree: {m}"),
            CodecError::DigestMismatch => write!(f, "stored digest mismatch"),
            CodecError::TrailingBytes => write!(f, "trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_STUB: u8 = 0;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const MAGIC: &[u8; 4] = b"TCVM";
const VERSION: u8 = 1;
/// Header sentinel for "entry count unknown" (pruned trees).
const LEN_UNKNOWN: u64 = u64::MAX;

/// Bounds-checked byte reader shared by the tree codec and the chunk
/// manifest codec ([`crate::chunk`]). Every read that runs off the end
/// reports [`CodecError::Truncated`] instead of panicking.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub(crate) fn digest(&mut self) -> Result<Digest, CodecError> {
        Ok(Digest::from_slice(self.take(32)?).expect("32 bytes"))
    }

    /// True once every input byte has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_node(node: &Node, out: &mut Vec<u8>) {
    match node {
        Node::Stub(d) => {
            out.push(TAG_STUB);
            out.extend_from_slice(d.as_bytes());
        }
        Node::Leaf { entries, .. } => {
            out.push(TAG_LEAF);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries {
                out.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
                out.extend_from_slice(&e.key);
                out.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
                out.extend_from_slice(&e.value);
            }
        }
        Node::Internal { keys, children, .. } => {
            out.push(TAG_INTERNAL);
            out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for k in keys {
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
            }
            for c in children {
                encode_node(c, out);
            }
        }
    }
}

fn decode_node(c: &mut Cursor<'_>, order: usize, depth: usize) -> Result<Node, CodecError> {
    if depth > 64 {
        return Err(CodecError::Malformed("tree too deep"));
    }
    match c.u8()? {
        TAG_STUB => Ok(Node::Stub(c.digest()?)),
        TAG_LEAF => {
            let n = c.u32()? as usize;
            if n > order {
                return Err(CodecError::Malformed("leaf overfull"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = c.bytes()?.to_vec();
                let v = c.bytes()?.to_vec();
                // Pair digests are recomputed from content, never trusted
                // from the wire (they are not even serialized).
                entries.push(LeafEntry::new(k, v));
            }
            let mut node = Node::Leaf {
                entries,
                digest: Digest::ZERO,
            };
            node.recompute_digest();
            Ok(node)
        }
        TAG_INTERNAL => {
            let nk = c.u32()? as usize;
            if nk + 1 > order || nk == 0 {
                return Err(CodecError::Malformed("bad separator count"));
            }
            let mut keys = Vec::with_capacity(nk);
            for _ in 0..nk {
                keys.push(c.bytes()?.to_vec());
            }
            let mut children = Vec::with_capacity(nk + 1);
            for _ in 0..=nk {
                children.push(std::sync::Arc::new(decode_node(c, order, depth + 1)?));
            }
            let mut node = Node::Internal {
                keys,
                children,
                digest: Digest::ZERO,
            };
            node.recompute_digest();
            Ok(node)
        }
        t => Err(CodecError::BadTag(t)),
    }
}

impl MerkleTree {
    /// Serializes the tree (full or pruned) to bytes, digests implicit.
    /// Pruned trees carry no authenticated entry count; their header
    /// records the `LEN_UNKNOWN` sentinel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.encoded_size());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.order() as u32).to_le_bytes());
        let len = self.len().map_or(LEN_UNKNOWN, |l| l as u64);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(self.root_digest().as_bytes());
        encode_node(self.root_ref(), &mut out);
        out
    }

    /// Decodes a tree serialized by [`MerkleTree::to_bytes`], recomputing
    /// every materialized digest and verifying the recorded root digest.
    pub fn from_bytes(bytes: &[u8]) -> Result<MerkleTree, CodecError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err(CodecError::Malformed("bad magic"));
        }
        if c.u8()? != VERSION {
            return Err(CodecError::Malformed("unsupported version"));
        }
        let order = c.u32()? as usize;
        if order < crate::tree::MIN_ORDER {
            return Err(CodecError::Malformed("order below minimum"));
        }
        let recorded_len = u64::from_le_bytes(c.take(8)?.try_into().expect("8"));
        let recorded_root = c.digest()?;
        let root = decode_node(&mut c, order, 0)?;
        if c.pos != bytes.len() {
            return Err(CodecError::TrailingBytes);
        }
        if root.digest() != recorded_root {
            return Err(CodecError::DigestMismatch);
        }
        // Pruned trees never report a length (it is unauthenticated); for
        // full trees the header count must match the decoded content.
        let len = if root.contains_stub() {
            None
        } else {
            let counted = root.entry_count();
            if recorded_len != LEN_UNKNOWN && recorded_len != counted as u64 {
                return Err(CodecError::Malformed("entry count mismatch"));
            }
            Some(counted)
        };
        Ok(MerkleTree::from_parts(root, order, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;
    use crate::op::{apply_op, prune_for_op, Op};

    fn tree(n: u64, order: usize) -> MerkleTree {
        let mut t = MerkleTree::with_order(order);
        for i in 0..n {
            t.insert(u64_key(i * 3), format!("value {i}").into_bytes())
                .unwrap();
        }
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        for (n, order) in [(0u64, 4usize), (5, 4), (300, 4), (300, 16)] {
            let t = tree(n, order);
            let bytes = t.to_bytes();
            let back = MerkleTree::from_bytes(&bytes).unwrap();
            assert_eq!(back.root_digest(), t.root_digest(), "n={n} order={order}");
            assert_eq!(back.len(), t.len());
            assert_eq!(back.order(), t.order());
            assert_eq!(back.entries().unwrap(), t.entries().unwrap());
            back.check_invariants().unwrap();
        }
    }

    #[test]
    fn round_trip_continues_identically() {
        // A restored server must produce the same future digests.
        let mut a = tree(100, 8);
        let mut b = MerkleTree::from_bytes(&a.to_bytes()).unwrap();
        for i in 0..20u64 {
            let op = Op::Put(u64_key(i * 7), vec![i as u8]);
            apply_op(&mut a, &op).unwrap();
            apply_op(&mut b, &op).unwrap();
            assert_eq!(a.root_digest(), b.root_digest(), "op {i}");
        }
    }

    #[test]
    fn pruned_trees_serialize() {
        let t = tree(500, 8);
        let pruned = prune_for_op(&t, &Op::Get(u64_key(42)));
        let back = MerkleTree::from_bytes(&pruned.to_bytes()).unwrap();
        assert_eq!(back.root_digest(), t.root_digest());
        assert_eq!(
            back.materialized_nodes(),
            pruned.materialized_nodes(),
            "stubs stay stubs"
        );
        // The proof still replays.
        assert_eq!(
            back.get(&u64_key(42)).unwrap(),
            t.get(&u64_key(42)).unwrap()
        );
    }

    #[test]
    fn corruption_rejected() {
        let t = tree(50, 4);
        let bytes = t.to_bytes();
        // Truncation.
        assert!(MerkleTree::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Bit flip in content: either the digest check or structure fails.
        for pos in [50usize, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(MerkleTree::from_bytes(&bad).is_err(), "flip at {pos}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            MerkleTree::from_bytes(&long),
            Err(CodecError::TrailingBytes)
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(MerkleTree::from_bytes(b"nope").is_err());
        let t = tree(2, 4);
        let mut bytes = t.to_bytes();
        bytes[4] = 99; // version
        assert!(MerkleTree::from_bytes(&bytes).is_err());
    }
}
