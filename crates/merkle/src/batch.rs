//! Batched verification objects: one proof for a window of point
//! operations.
//!
//! Per-operation proofs repeat the spine of the tree once per op — for a
//! window of `n` point reads/updates against the same pre-state, the
//! O(log N) internal siblings are shipped (and re-hashed by the client) `n`
//! times. A [`BatchProof`] prunes the pre-state **once** for the union of
//! the window's key paths ([`MerkleTree::prune_for_points`]), so the spine
//! is shared across the window, and the client replays the whole window
//! sequentially on the single pruned tree — recomputing the materialized
//! digests once instead of once per op.
//!
//! The batch is restricted to point operations ([`batchable`]): `Get` and
//! `Put`. Point inserts split only nodes on their own root-to-leaf path,
//! so the union of paths stays replay-sufficient across the whole window;
//! `Delete` rebalances across siblings outside the union and `Range` has
//! its own interval pruner, so both fall back to per-op proofs.
//!
//! Verification gives per-op granularity: [`replay_batch_unanchored`]
//! returns every intermediate root (one [`BatchStep`] per op), so Protocol
//! II's token algebra can telescope over the window while still checking
//! each claimed answer against the replay. Forging, reordering, or
//! dropping any single claimed result in the window makes the replay
//! disagree ([`VerifyError::AnswerMismatch`] /
//! [`VerifyError::BatchLengthMismatch`]); tampering with the proof itself
//! shifts the recomputed root ([`VerifyError::RootMismatch`] when
//! anchored, a σ mismatch at sync-up otherwise).

use tcvs_crypto::Digest;

use crate::error::VerifyError;
use crate::op::{apply_op, Op, OpResult};
use crate::tree::MerkleTree;

/// True iff `op` may be covered by a [`BatchProof`]: the point operations
/// whose replay touches only their own root-to-leaf path.
pub fn batchable(op: &Op) -> bool {
    matches!(op, Op::Get(_) | Op::Put(..))
}

/// Builds the pruned pre-state tree sufficient to replay the whole window
/// `ops` in order: the union of each operation's point path.
///
/// # Panics
///
/// Panics if any op is not [`batchable`] — callers gate the batch path on
/// `ops.iter().all(batchable)` and fall back to per-op proofs otherwise.
pub fn prune_for_ops(tree: &MerkleTree, ops: &[Op]) -> MerkleTree {
    let keys: Vec<&[u8]> = ops
        .iter()
        .map(|op| match op {
            Op::Get(k) | Op::Put(k, _) => k.as_slice(),
            other => panic!("prune_for_ops: non-batchable op `{}`", other.kind()),
        })
        .collect();
    tree.prune_for_points(&keys)
}

/// A batched verification object: one pruned pre-state tree covering a
/// window of point operations against a single root.
#[derive(Clone, Debug)]
pub struct BatchProof {
    tree: MerkleTree,
}

impl BatchProof {
    /// Wraps a pruned tree produced by [`prune_for_ops`].
    pub fn new(pruned: MerkleTree) -> BatchProof {
        BatchProof { tree: pruned }
    }

    /// Root digest the proof claims to be rooted at.
    pub fn root_digest(&self) -> Digest {
        self.tree.root_digest()
    }

    /// Proof size in materialized nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.tree.materialized_nodes()
    }

    /// Proof size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        self.tree.encoded_size()
    }

    /// The branching order the proof was built with.
    pub fn order(&self) -> usize {
        self.tree.order()
    }

    /// Serializes the proof (its pruned tree).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tree.to_bytes()
    }

    /// Decodes a persisted proof; materialized digests are re-verified
    /// during decode, so a corrupted proof is rejected rather than trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<BatchProof, crate::CodecError> {
        let mut tree = MerkleTree::from_bytes(bytes)?;
        tree.forget_len();
        Ok(BatchProof { tree })
    }
}

/// One verified step of a batch replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchStep {
    /// The (replayed, hence authenticated) answer to this op.
    pub result: OpResult,
    /// Root digest after this op.
    pub new_root: Digest,
}

/// Replays the window `ops` against `proof` **without** an
/// independently-known root digest (the Protocol II/III trust model; see
/// [`crate::replay_unanchored`]). Materialized digests are recomputed once
/// for the whole window.
///
/// `claimed`, when present, must hold exactly one result per op in window
/// order; any dropped, reordered, or forged entry fails the replay.
///
/// Returns `(old_root, steps)`: the pre-state root the proof commits to,
/// and one [`BatchStep`] per op with its intermediate root.
pub fn replay_batch_unanchored(
    expected_order: usize,
    proof: &BatchProof,
    ops: &[Op],
    claimed: Option<&[OpResult]>,
) -> Result<(Digest, Vec<BatchStep>), VerifyError> {
    if proof.order() != expected_order {
        return Err(VerifyError::OrderMismatch);
    }
    if let Some(c) = claimed {
        if c.len() != ops.len() {
            return Err(VerifyError::BatchLengthMismatch);
        }
    }
    let mut replay = proof.tree.clone();
    replay.recompute_all_digests();
    let old_root = replay.root_digest();
    let mut steps = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let result = apply_op(&mut replay, op)?;
        if let Some(c) = claimed {
            if c[i] != result {
                return Err(VerifyError::AnswerMismatch);
            }
        }
        steps.push(BatchStep {
            result,
            new_root: replay.root_digest(),
        });
    }
    Ok((old_root, steps))
}

/// Verifies a batched response against a known root and replays the whole
/// window (the Protocol I trust model; see [`crate::verify_response`]).
pub fn verify_batch_response(
    known_root: &Digest,
    expected_order: usize,
    proof: &BatchProof,
    ops: &[Op],
    claimed: Option<&[OpResult]>,
    claimed_new_root: Option<&Digest>,
) -> Result<Vec<BatchStep>, VerifyError> {
    if proof.order() != expected_order {
        return Err(VerifyError::OrderMismatch);
    }
    if let Some(c) = claimed {
        if c.len() != ops.len() {
            return Err(VerifyError::BatchLengthMismatch);
        }
    }
    let mut replay = proof.tree.clone();
    replay.recompute_all_digests();
    if replay.root_digest() != *known_root {
        return Err(VerifyError::RootMismatch);
    }
    let mut steps = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let result = apply_op(&mut replay, op)?;
        if let Some(c) = claimed {
            if c[i] != result {
                return Err(VerifyError::AnswerMismatch);
            }
        }
        steps.push(BatchStep {
            result,
            new_root: replay.root_digest(),
        });
    }
    if let Some(nr) = claimed_new_root {
        if steps.last().map(|s| s.new_root).unwrap_or(*known_root) != *nr {
            return Err(VerifyError::NewRootMismatch);
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;

    fn tree_with(n: u64, order: usize) -> MerkleTree {
        let mut t = MerkleTree::with_order(order);
        for i in 0..n {
            t.insert(u64_key(i), format!("v{i}").into_bytes()).unwrap();
        }
        t
    }

    fn window(seed: u64, n: usize) -> Vec<Op> {
        (0..n as u64)
            .map(|i| {
                let k = u64_key((seed.wrapping_mul(31) + i * 7) % 97);
                if i % 3 == 0 {
                    Op::Put(k, format!("w{seed}-{i}").into_bytes())
                } else {
                    Op::Get(k)
                }
            })
            .collect()
    }

    fn serve_batch(tree: &mut MerkleTree, ops: &[Op]) -> (BatchProof, Vec<OpResult>, Digest) {
        let proof = BatchProof::new(prune_for_ops(tree, ops));
        let results: Vec<OpResult> = ops
            .iter()
            .map(|op| apply_op(tree, op).expect("full tree"))
            .collect();
        (proof, results, tree.root_digest())
    }

    #[test]
    fn honest_batch_replays_to_server_state() {
        for order in [4, 8, 16] {
            let mut server = tree_with(200, order);
            let root0 = server.root_digest();
            let ops = window(3, 24);
            let (proof, results, new_root) = serve_batch(&mut server, &ops);
            let (old_root, steps) =
                replay_batch_unanchored(order, &proof, &ops, Some(&results)).unwrap();
            assert_eq!(old_root, root0);
            assert_eq!(steps.len(), ops.len());
            assert_eq!(steps.last().unwrap().new_root, new_root);
            let anchored =
                verify_batch_response(&root0, order, &proof, &ops, Some(&results), Some(&new_root))
                    .unwrap();
            assert_eq!(anchored, steps);
        }
    }

    #[test]
    fn batch_matches_per_op_replay_through_splits() {
        // Dense Put window on a small order forces leaf and internal splits
        // mid-window: the union pruning must stay replay-sufficient.
        let mut server = tree_with(16, 4);
        let root0 = server.root_digest();
        let ops: Vec<Op> = (0..32u64)
            .map(|i| Op::Put(u64_key(100 + i), vec![i as u8; 20]))
            .collect();
        let (proof, results, new_root) = serve_batch(&mut server, &ops);
        let (old_root, steps) = replay_batch_unanchored(4, &proof, &ops, Some(&results)).unwrap();
        assert_eq!(old_root, root0);
        assert_eq!(steps.last().unwrap().new_root, new_root);
        server.check_invariants().unwrap();
    }

    #[test]
    fn proof_shares_spine_across_window() {
        let server = tree_with(500, 8);
        let ops = window(11, 16);
        let (proof, _, _) = serve_batch(&mut server.clone(), &ops);
        let per_op: usize = ops
            .iter()
            .map(|op| {
                crate::verify::VerificationObject::new(crate::op::prune_for_op(&server, op))
                    .encoded_size()
            })
            .sum();
        assert!(
            proof.encoded_size() < per_op,
            "batch {} !< per-op {}",
            proof.encoded_size(),
            per_op
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut server = tree_with(50, 8);
        let ops = window(5, 8);
        let (proof, mut results, _) = serve_batch(&mut server, &ops);
        results.pop();
        assert_eq!(
            replay_batch_unanchored(8, &proof, &ops, Some(&results)).unwrap_err(),
            VerifyError::BatchLengthMismatch
        );
    }

    #[test]
    fn forged_result_rejected() {
        let mut server = tree_with(50, 8);
        let ops = window(5, 8);
        let (proof, mut results, _) = serve_batch(&mut server, &ops);
        results[3] = OpResult::Value(Some(b"evil".to_vec()));
        assert_eq!(
            replay_batch_unanchored(8, &proof, &ops, Some(&results)).unwrap_err(),
            VerifyError::AnswerMismatch
        );
    }

    #[test]
    fn non_batchable_ops_are_classified() {
        assert!(batchable(&Op::Get(u64_key(1))));
        assert!(batchable(&Op::Put(u64_key(1), vec![])));
        assert!(!batchable(&Op::Delete(u64_key(1))));
        assert!(!batchable(&Op::Range(None, None)));
    }

    #[test]
    fn empty_window_is_a_stub_proof() {
        let server = tree_with(50, 8);
        let proof = BatchProof::new(prune_for_ops(&server, &[]));
        assert_eq!(proof.root_digest(), server.root_digest());
        assert_eq!(proof.materialized_nodes(), 0);
        let (old_root, steps) = replay_batch_unanchored(8, &proof, &[], Some(&[])).unwrap();
        assert_eq!(old_root, server.root_digest());
        assert!(steps.is_empty());
    }
}
