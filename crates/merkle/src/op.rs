//! Database operations and their results.
//!
//! The paper models the CVS server as "a database of data items": `checkout`
//! becomes a read and `commit` an update (§2.1). [`Op`] is that common
//! operation vocabulary, shared by the trusted server, the untrusted server,
//! the protocol clients, and the workload generators.

use crate::error::TreeError;
use crate::node::{Key, Value};
use crate::tree::MerkleTree;

/// A database operation (the paper's query `Q`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Point read (`checkout` of one item).
    Get(Key),
    /// Range read over `[lo, hi)` (`checkout` of a set of items); `None`
    /// bounds are unbounded.
    Range(Option<Key>, Option<Key>),
    /// Insert-or-replace (`commit` of one item).
    Put(Key, Value),
    /// Delete an item.
    Delete(Key),
}

impl Op {
    /// True iff the operation modifies the database.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Put(..) | Op::Delete(..))
    }

    /// A short human-readable label.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Get(_) => "get",
            Op::Range(..) => "range",
            Op::Put(..) => "put",
            Op::Delete(..) => "delete",
        }
    }
}

/// The answer `Q(D)` to an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// Result of [`Op::Get`].
    Value(Option<Value>),
    /// Result of [`Op::Range`], in key order.
    Entries(Vec<(Key, Value)>),
    /// Result of [`Op::Put`]: the replaced value, if any.
    Replaced(Option<Value>),
    /// Result of [`Op::Delete`]: the removed value, if any.
    Deleted(Option<Value>),
}

impl OpResult {
    /// Wire-size estimate in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            OpResult::Value(v) | OpResult::Replaced(v) | OpResult::Deleted(v) => {
                1 + v.as_ref().map_or(0, |v| 8 + v.len())
            }
            OpResult::Entries(es) => {
                1 + 8
                    + es.iter()
                        .map(|(k, v)| 16 + k.len() + v.len())
                        .sum::<usize>()
            }
        }
    }
}

/// Applies `op` to `tree`, returning the answer. Works identically on full
/// trees (server side) and pruned trees (client replay); on a pruned tree an
/// insufficient proof surfaces as `Err(IncompleteProof)`.
pub fn apply_op(tree: &mut MerkleTree, op: &Op) -> Result<OpResult, TreeError> {
    match op {
        Op::Get(k) => Ok(OpResult::Value(tree.get(k)?.cloned())),
        Op::Range(lo, hi) => Ok(OpResult::Entries(tree.range(lo.as_deref(), hi.as_deref())?)),
        Op::Put(k, v) => Ok(OpResult::Replaced(tree.insert(k.clone(), v.clone())?)),
        Op::Delete(k) => Ok(OpResult::Deleted(tree.delete(k)?)),
    }
}

/// Builds the pruned verification object sufficient to replay `op` against
/// `tree`'s current state.
pub fn prune_for_op(tree: &MerkleTree, op: &Op) -> MerkleTree {
    match op {
        Op::Get(k) | Op::Put(k, _) => tree.prune_for_point(k),
        Op::Range(lo, hi) => tree.prune_for_range(lo.as_deref(), hi.as_deref()),
        Op::Delete(k) => tree.prune_for_delete(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::u64_key;

    fn tree_with(n: u64) -> MerkleTree {
        let mut t = MerkleTree::with_order(4);
        for i in 0..n {
            t.insert(u64_key(i), vec![i as u8]).unwrap();
        }
        t
    }

    #[test]
    fn apply_get() {
        let mut t = tree_with(10);
        let r = apply_op(&mut t, &Op::Get(u64_key(3))).unwrap();
        assert_eq!(r, OpResult::Value(Some(vec![3])));
        let r = apply_op(&mut t, &Op::Get(u64_key(99))).unwrap();
        assert_eq!(r, OpResult::Value(None));
    }

    #[test]
    fn apply_put_and_delete() {
        let mut t = tree_with(5);
        let r = apply_op(&mut t, &Op::Put(u64_key(2), b"new".to_vec())).unwrap();
        assert_eq!(r, OpResult::Replaced(Some(vec![2])));
        let r = apply_op(&mut t, &Op::Delete(u64_key(2))).unwrap();
        assert_eq!(r, OpResult::Deleted(Some(b"new".to_vec())));
        let r = apply_op(&mut t, &Op::Delete(u64_key(2))).unwrap();
        assert_eq!(r, OpResult::Deleted(None));
    }

    #[test]
    fn apply_range() {
        let mut t = tree_with(20);
        let r = apply_op(&mut t, &Op::Range(Some(u64_key(5)), Some(u64_key(8)))).unwrap();
        match r {
            OpResult::Entries(es) => {
                assert_eq!(es.len(), 3);
                assert_eq!(es[0].0, u64_key(5));
                assert_eq!(es[2].0, u64_key(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_classification() {
        assert!(!Op::Get(vec![]).is_update());
        assert!(!Op::Range(None, None).is_update());
        assert!(Op::Put(vec![], vec![]).is_update());
        assert!(Op::Delete(vec![]).is_update());
    }

    #[test]
    fn prune_matches_op_needs() {
        let t = tree_with(64);
        for op in [
            Op::Get(u64_key(7)),
            Op::Put(u64_key(31), b"x".to_vec()),
            Op::Delete(u64_key(40)),
            Op::Range(Some(u64_key(10)), Some(u64_key(14))),
        ] {
            let mut pruned = prune_for_op(&t, &op);
            assert_eq!(pruned.root_digest(), t.root_digest(), "{op:?}");
            let mut full = t.clone();
            let r1 = apply_op(&mut pruned, &op).unwrap();
            let r2 = apply_op(&mut full, &op).unwrap();
            assert_eq!(r1, r2, "{op:?}");
            assert_eq!(pruned.root_digest(), full.root_digest(), "{op:?}");
        }
    }
}
