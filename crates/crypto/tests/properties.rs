//! Property tests for the crypto substrate: hashing determinism and
//! incremental-equals-one-shot, signature soundness under arbitrary
//! messages, forgery rejection under arbitrary bit flips, and the XOR
//! algebra Protocol II relies on.

use proptest::prelude::*;
use tcvs_crypto::{
    hash_parts, mss::MssSigner, mss_verify, multilane, sha256, sha256_many, wots, Digest, SeedRng,
    Sha256,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multi-lane hashing is byte-identical to the scalar backend for every
    /// message in an arbitrary batch, on both the dispatched path (SHA-NI
    /// interleave where the CPU has it) and the portable 4-lane interleave.
    #[test]
    fn multilane_matches_scalar(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..12,
        ),
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let scalar: Vec<Digest> = refs.iter().map(|m| sha256(m)).collect();
        prop_assert_eq!(&sha256_many(&refs), &scalar);
        prop_assert_eq!(&multilane::sha256_many_portable(&refs), &scalar);
    }

    /// Incremental hashing equals one-shot hashing for every chunking.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut points: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        points.dedup();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// `hash_parts` is injective with respect to part boundaries: moving a
    /// boundary changes the digest.
    #[test]
    fn hash_parts_boundary_sensitivity(
        a in proptest::collection::vec(any::<u8>(), 1..40),
        b in proptest::collection::vec(any::<u8>(), 1..40),
        shift in 1usize..8,
    ) {
        let orig = hash_parts(&[&a, &b]);
        // Move `shift` bytes from the front of b to the back of a.
        let shift = shift.min(b.len());
        let mut a2 = a.clone();
        a2.extend_from_slice(&b[..shift]);
        let b2 = b[shift..].to_vec();
        if (a2.as_slice(), b2.as_slice()) != (a.as_slice(), b.as_slice()) {
            prop_assert_ne!(orig, hash_parts(&[&a2, &b2]));
        }
    }

    /// XOR over digests is an abelian group: associative, commutative,
    /// self-inverse — the algebra behind σᵢ cancellation.
    #[test]
    fn digest_xor_group_laws(
        seeds in proptest::collection::vec(any::<u64>(), 3..3usize.saturating_add(1)),
    ) {
        let d: Vec<Digest> = seeds.iter().map(|s| sha256(&s.to_le_bytes())).collect();
        let (a, b, c) = (d[0], d[1], d[2]);
        prop_assert_eq!((a ^ b) ^ c, a ^ (b ^ c));
        prop_assert_eq!(a ^ b, b ^ a);
        prop_assert_eq!(a ^ a, Digest::ZERO);
        prop_assert_eq!(a ^ Digest::ZERO, a);
    }

    /// WOTS: signatures over arbitrary messages verify; any single bit flip
    /// in the signature is rejected.
    #[test]
    fn wots_sound_and_tamper_evident(
        msg_bytes in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
        flip_value in any::<prop::sample::Index>(),
        flip_bit in 0usize..256,
    ) {
        let msg = sha256(&msg_bytes);
        let mut rng = SeedRng::from_label(&seed.to_le_bytes());
        let (mut sk, pk) = wots::wots_keygen(&mut rng);
        let sig = wots::wots_sign(&mut sk, &msg).unwrap();
        prop_assert!(wots::wots_verify(&pk, &msg, &sig));
        // Flip one bit of one chain value via the wire encoding.
        let mut bytes = sig.to_bytes();
        let v = flip_value.index(wots::LEN);
        bytes[v * 32 + flip_bit / 8] ^= 1 << (flip_bit % 8);
        let tampered = wots::WotsSignature::from_bytes(&bytes).unwrap();
        prop_assert!(!wots::wots_verify(&pk, &msg, &tampered));
    }

    /// MSS: every one-time slot signs and verifies; message substitution is
    /// rejected.
    #[test]
    fn mss_sound_across_slots(
        seed in any::<[u8; 32]>(),
        msgs in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let mut signer = MssSigner::generate(seed, 3);
        let pk = signer.public_key();
        for (i, m) in msgs.iter().enumerate() {
            let msg = sha256(&m.to_le_bytes());
            let sig = signer.sign(&msg).unwrap();
            prop_assert_eq!(sig.leaf_index, i as u64);
            prop_assert!(mss_verify(&pk, &msg, &sig));
            let other = sha256(&m.wrapping_add(1).to_le_bytes());
            prop_assert!(!mss_verify(&pk, &other, &sig));
        }
    }

    /// The deterministic RNG is a pure function of its seed, and distinct
    /// labels yield distinct streams.
    #[test]
    fn rng_determinism(label in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut a = SeedRng::from_label(&label);
        let mut b = SeedRng::from_label(&label);
        prop_assert_eq!(a.next_block(), b.next_block());
        let mut other_label = label.clone();
        other_label.push(0xAA);
        let mut c = SeedRng::from_label(&other_label);
        prop_assert_ne!(b.next_block(), c.next_block());
    }
}
