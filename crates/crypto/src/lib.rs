//! # tcvs-crypto
//!
//! Cryptographic substrate for the trusted-cvs reproduction of
//! *"Trusted CVS"* (ICDE 2006): a from-scratch SHA-256, HMAC, a deterministic
//! ChaCha20-based RNG, hash-based one-time signatures (Lamport, Winternitz),
//! the Merkle Signature Scheme, and a key registry standing in for the
//! paper's PKI assumption.
//!
//! Everything here rests on a single assumption — collision-intractability of
//! the hash — which is exactly the assumption the paper makes for its Merkle
//! trees, so no new trust is introduced by the signature layer.
//!
//! ```
//! use tcvs_crypto::{sha256, setup_users};
//!
//! let (mut users, registry) = setup_users([0u8; 32], 2, 4);
//! let msg = sha256(b"h(M(D) || ctr)");
//! let sig = users[0].sign(&msg).unwrap();
//! assert!(registry.verify(0, &msg, &sig));
//! ```

#![warn(missing_docs)]
// Unsafe is denied rather than forbidden in this one crate: the SHA-256
// module carries a single, tightly-scoped exception for the hardware
// (SHA-NI) compression backend, which is gated on runtime CPU feature
// detection and cross-checked against the portable implementation by the
// test suite. Everything else in the workspace forbids unsafe outright.
#![deny(unsafe_code)]

pub mod digest;
pub mod hmac;
pub mod lamport;
pub mod mss;
pub mod multilane;
pub mod registry;
pub mod rng;
pub mod sha256;
pub mod wots;

pub use digest::Digest;
pub use hmac::{hmac_sha256, verify_mac};
pub use mss::{mss_verify, MssError, MssPublicKey, MssSignature, MssSigner};
pub use multilane::{lanes as sha_lanes, sha256_many};
pub use registry::{setup_users, KeyRegistry, Keyring, UserId, NO_USER};
pub use rng::SeedRng;
pub use sha256::{hash_pair, hash_parts, sha256, Sha256};
