//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The paper assumes a "collision intractable hash function" \[2\]; the
//! sanctioned offline dependency set contains no crypto crates, so the hash
//! is implemented here and validated against the NIST CAVP / FIPS 180-4
//! example vectors (see the test module).
//!
//! Both one-shot ([`sha256`]) and incremental ([`Sha256`]) interfaces are
//! provided, plus [`hash_parts`], the length-prefixed multi-part hash used to
//! build unambiguous protocol tokens such as `h(M(D) ‖ ctr ‖ user)`.

use crate::digest::Digest;

/// SHA-256 round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Data exhausted without filling a block; it stays buffered.
                return self;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            compress(&mut self.state, &b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
        self
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80, zero padding, then the 64-bit big-endian bit length.
        self.buf[self.buf_len] = 0x80;
        let mut i = self.buf_len + 1;
        if i > 56 {
            for b in &mut self.buf[i..] {
                *b = 0;
            }
            let block = self.buf;
            compress(&mut self.state, &block);
            i = 0;
        }
        for b in &mut self.buf[i..56] {
            *b = 0;
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}
#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}
#[inline(always)]
fn big_sigma0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}
#[inline(always)]
fn big_sigma1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        w[i] = small_sigma1(w[i - 2])
            .wrapping_add(w[i - 7])
            .wrapping_add(small_sigma0(w[i - 15]))
            .wrapping_add(w[i - 16]);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add((e & f) ^ ((!e) & g))
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes a sequence of parts with 64-bit length prefixes.
///
/// This is the canonical encoding for protocol tokens such as
/// `h(M(D) ‖ ctr ‖ j)`: the length prefixes make the encoding injective, so
/// distinct part sequences can never collide by concatenation ambiguity.
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    h.update(&(parts.len() as u64).to_be_bytes());
    for p in parts {
        h.update(&(p.len() as u64).to_be_bytes());
        h.update(p);
    }
    h.finalize()
}

/// Hashes the concatenation of two digests: the inner-node combiner used by
/// Merkle structures throughout the workspace.
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input).to_hex(), *expect, "input {:?}", input);
        }
    }

    /// FIPS 180-4: one million 'a' characters.
    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Split at every possible prefix length in steps of 17 and also at
        // block boundaries 63/64/65 which exercise the buffer edge cases.
        let splits: Vec<usize> = (0..data.len())
            .step_by(17)
            .chain([63, 64, 65, 127, 128, 129])
            .collect();
        let whole = sha256(&data);
        for &s in &splits {
            let mut h = Sha256::new();
            h.update(&data[..s]);
            h.update(&data[s..]);
            assert_eq!(h.finalize(), whole, "split at {s}");
        }
    }

    #[test]
    fn incremental_many_tiny_updates() {
        let data = b"hello world, this is a byte-at-a-time hash test";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn padding_edge_lengths() {
        // Lengths around the 55/56/64 padding thresholds must all differ and
        // must be deterministic.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0x55u8; len];
            let d = sha256(&data);
            assert!(seen.insert(d), "digest collision at length {len}");
            assert_eq!(d, sha256(&data), "non-deterministic at length {len}");
        }
    }

    #[test]
    fn hash_parts_is_injective_on_part_boundaries() {
        // ("ab","c") and ("a","bc") concatenate identically but must hash
        // differently thanks to the length prefixes.
        let d1 = hash_parts(&[b"ab", b"c"]);
        let d2 = hash_parts(&[b"a", b"bc"]);
        let d3 = hash_parts(&[b"abc"]);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d2, d3);
    }

    #[test]
    fn hash_pair_depends_on_order() {
        let a = sha256(b"left");
        let b = sha256(b"right");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }
}
