//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The paper assumes a "collision intractable hash function" \[2\]; the
//! sanctioned offline dependency set contains no crypto crates, so the hash
//! is implemented here and validated against the NIST CAVP / FIPS 180-4
//! example vectors (see the test module).
//!
//! Both one-shot ([`sha256`]) and incremental ([`Sha256`]) interfaces are
//! provided, plus [`hash_parts`], the length-prefixed multi-part hash used to
//! build unambiguous protocol tokens such as `h(M(D) ‖ ctr ‖ user)`.
//!
//! ## Backends
//!
//! The compression function dispatches at runtime: on x86-64 CPUs with the
//! SHA extensions it uses the hardware `sha256rnds2`/`sha256msg*`
//! instructions (roughly an order of magnitude faster — every Merkle digest
//! in the workspace funnels through here), everywhere else the portable
//! FIPS 180-4 implementation below. Both backends are validated against
//! the NIST vectors, and a test cross-checks them word-for-word.

use crate::digest::Digest;

/// SHA-256 round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Data exhausted without filling a block; it stays buffered.
                return self;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            compress(&mut self.state, &b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
        self
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80, zero padding, then the 64-bit big-endian bit length.
        self.buf[self.buf_len] = 0x80;
        let mut i = self.buf_len + 1;
        if i > 56 {
            for b in &mut self.buf[i..] {
                *b = 0;
            }
            let block = self.buf;
            compress(&mut self.state, &block);
            i = 0;
        }
        for b in &mut self.buf[i..56] {
            *b = 0;
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}
#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}
#[inline(always)]
fn big_sigma0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}
#[inline(always)]
fn big_sigma1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

pub(crate) fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: the `sha`, `ssse3` and `sse4.1` CPU features were just
        // verified at runtime; the kernel touches nothing but its arguments.
        #[allow(unsafe_code)]
        unsafe {
            shani::compress(state, block)
        };
        return;
    }
    compress_portable(state, block);
}

pub(crate) fn compress_portable(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        w[i] = small_sigma1(w[i - 2])
            .wrapping_add(w[i - 7])
            .wrapping_add(small_sigma0(w[i - 15]))
            .wrapping_add(w[i - 16]);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add((e & f) ^ ((!e) & g))
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hardware backend: the x86-64 SHA new instructions. A straight port of
/// the canonical Intel flow — two `sha256rnds2` per four rounds on the
/// (ABEF, CDGH) register split, with `sha256msg1`/`sha256msg2` computing
/// the message schedule in-register.
#[cfg(target_arch = "x86_64")]
pub(crate) mod shani {
    use std::sync::atomic::{AtomicU8, Ordering};

    use super::K;

    /// Runtime CPU support, probed once and cached (0 = unknown, 1 = yes,
    /// 2 = no).
    pub(crate) fn available() -> bool {
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                STATE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// # Safety
    ///
    /// The caller must have verified that the CPU supports the `sha`,
    /// `ssse3` and `sse4.1` features (see [`available`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        use std::arch::x86_64::*;

        // Lane comments follow Intel's convention: "DCBA" lists lanes
        // high-to-low, so A sits in lane 0 (= state[0]).
        let tmp = unsafe { _mm_loadu_si128(state.as_ptr().cast()) }; // DCBA
        let mut state1 = unsafe { _mm_loadu_si128(state.as_ptr().add(4).cast()) }; // HGFE
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
        state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH
        let abef_save = state0;
        let cdgh_save = state1;

        // Byte shuffle turning little-endian lane loads into the big-endian
        // words FIPS 180-4 schedules.
        let flip = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0b_u64 as i64,
            0x0405_0607_0001_0203_u64 as i64,
        );
        let mut msg0 = unsafe { _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), flip) };
        let mut msg1 =
            unsafe { _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), flip) };
        let mut msg2 =
            unsafe { _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), flip) };
        let mut msg3 =
            unsafe { _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), flip) };

        // K[4i..4i+4] as one vector.
        macro_rules! kvec {
            ($i:expr) => {
                unsafe { _mm_loadu_si128(K.as_ptr().add(4 * $i).cast()) }
            };
        }
        // Four rounds: two sha256rnds2, feeding the high pair via shuffle.
        macro_rules! rounds4 {
            ($msg:expr, $i:expr) => {{
                let wk = _mm_add_epi32($msg, kvec!($i));
                state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
                let wk = _mm_shuffle_epi32(wk, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
            }};
        }
        // Schedule update: w[t..t+4] from the three preceding vectors.
        macro_rules! schedule {
            ($w0:expr, $w1:expr, $w2:expr, $w3:expr) => {{
                let tmp = _mm_alignr_epi8($w3, $w2, 4);
                $w0 = _mm_add_epi32($w0, tmp);
                $w0 = _mm_sha256msg2_epu32($w0, $w3);
            }};
        }

        rounds4!(msg0, 0); // rounds 0-3
        rounds4!(msg1, 1); // rounds 4-7
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 2); // rounds 8-11
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 3); // rounds 12-15
        schedule!(msg0, msg1, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 4); // rounds 16-19
        schedule!(msg1, msg2, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 5); // rounds 20-23
        schedule!(msg2, msg3, msg0, msg1);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 6); // rounds 24-27
        schedule!(msg3, msg0, msg1, msg2);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 7); // rounds 28-31
        schedule!(msg0, msg1, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 8); // rounds 32-35
        schedule!(msg1, msg2, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 9); // rounds 36-39
        schedule!(msg2, msg3, msg0, msg1);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 10); // rounds 40-43
        schedule!(msg3, msg0, msg1, msg2);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 11); // rounds 44-47
        schedule!(msg0, msg1, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 12); // rounds 48-51
        schedule!(msg1, msg2, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 13); // rounds 52-55
        schedule!(msg2, msg3, msg0, msg1);
        rounds4!(msg2, 14); // rounds 56-59
        schedule!(msg3, msg0, msg1, msg2);
        rounds4!(msg3, 15); // rounds 60-63

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
        state1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        unsafe {
            _mm_storeu_si128(state.as_mut_ptr().cast(), state0);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), state1);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes a sequence of parts with 64-bit length prefixes.
///
/// This is the canonical encoding for protocol tokens such as
/// `h(M(D) ‖ ctr ‖ j)`: the length prefixes make the encoding injective, so
/// distinct part sequences can never collide by concatenation ambiguity.
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    h.update(&(parts.len() as u64).to_be_bytes());
    for p in parts {
        h.update(&(p.len() as u64).to_be_bytes());
        h.update(p);
    }
    h.finalize()
}

/// Hashes the concatenation of two digests: the inner-node combiner used by
/// Merkle structures throughout the workspace.
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input).to_hex(), *expect, "input {:?}", input);
        }
    }

    /// FIPS 180-4: one million 'a' characters.
    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Split at every possible prefix length in steps of 17 and also at
        // block boundaries 63/64/65 which exercise the buffer edge cases.
        let splits: Vec<usize> = (0..data.len())
            .step_by(17)
            .chain([63, 64, 65, 127, 128, 129])
            .collect();
        let whole = sha256(&data);
        for &s in &splits {
            let mut h = Sha256::new();
            h.update(&data[..s]);
            h.update(&data[s..]);
            assert_eq!(h.finalize(), whole, "split at {s}");
        }
    }

    #[test]
    fn incremental_many_tiny_updates() {
        let data = b"hello world, this is a byte-at-a-time hash test";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn padding_edge_lengths() {
        // Lengths around the 55/56/64 padding thresholds must all differ and
        // must be deterministic.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0x55u8; len];
            let d = sha256(&data);
            assert!(seen.insert(d), "digest collision at length {len}");
            assert_eq!(d, sha256(&data), "non-deterministic at length {len}");
        }
    }

    #[test]
    fn hash_parts_is_injective_on_part_boundaries() {
        // ("ab","c") and ("a","bc") concatenate identically but must hash
        // differently thanks to the length prefixes.
        let d1 = hash_parts(&[b"ab", b"c"]);
        let d2 = hash_parts(&[b"a", b"bc"]);
        let d3 = hash_parts(&[b"abc"]);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d2, d3);
    }

    #[test]
    fn hash_pair_depends_on_order() {
        let a = sha256(b"left");
        let b = sha256(b"right");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    /// The hardware and portable compression functions must agree
    /// word-for-word on every state/block combination they ever see.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_portable_compress() {
        if !shani::available() {
            return; // nothing to cross-check on this host
        }
        let mut state_a = H0;
        let mut state_b = H0;
        let mut block = [0u8; 64];
        for round in 0..500u32 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (round.wrapping_mul(31).wrapping_add(i as u32 * 7) % 256) as u8;
            }
            // SAFETY: `shani::available()` returned true above.
            #[allow(unsafe_code)]
            unsafe {
                shani::compress(&mut state_a, &block)
            };
            compress_portable(&mut state_b, &block);
            assert_eq!(state_a, state_b, "divergence at round {round}");
        }
    }
}
