//! Multi-buffer ("multi-lane") SHA-256.
//!
//! Merkle digest recomputation hashes many small, independent messages —
//! one kv-hash per leaf entry, one digest per node — and a batch proof
//! multiplies that by the window size. A single SHA-256 stream leaves most
//! of the core idle between dependent rounds, so this module interleaves
//! several independent hash streams through one compression pass:
//!
//! * **Portable**: a 4-lane interleaved FIPS 180-4 compression
//!   (`compress_portable_x4`) — the round math runs on `[u32; 4]` lane
//!   arrays that the compiler vectorizes, hiding each lane's serial
//!   dependency chain behind the others'.
//! * **SHA-NI**: a 2-lane interleaved `sha256rnds2` stream
//!   (`shani_x2::compress_x2`) — the hardware rounds have multi-cycle
//!   latency but pipeline, so two independent register streams roughly
//!   double throughput per core.
//!
//! The public entry point is [`sha256_many`]: hash a slice of messages,
//! get a digest per message, byte-identical to calling
//! [`sha256`](crate::sha256::sha256) on each. Identity against the scalar
//! backend is enforced by unit tests here and a proptest corpus in
//! `tests/properties.rs`, on both the SHA-NI and portable paths.

use crate::digest::Digest;
use crate::sha256::{compress_portable, H0};

/// Interleave width of the active backend: 2 on SHA-NI hardware (two
/// pipelined `sha256rnds2` streams), 4 on the portable path (lane-array
/// compression). Exposed so the observability layer can report the lane
/// configuration (`crypto.lanes`).
pub fn lanes() -> usize {
    #[cfg(target_arch = "x86_64")]
    if crate::sha256::shani::available() {
        return 2;
    }
    4
}

/// Number of 64-byte blocks in the padded form of a `len`-byte message.
fn block_count(len: usize) -> usize {
    (len + 9).div_ceil(64)
}

/// Materializes block `idx` of the padded form of `msg` (FIPS 180-4
/// padding: `0x80`, zeros, 64-bit big-endian bit length in the final
/// block).
fn padded_block(msg: &[u8], idx: usize, nblocks: usize) -> [u8; 64] {
    let mut b = [0u8; 64];
    let start = idx * 64;
    if start < msg.len() {
        let take = (msg.len() - start).min(64);
        b[..take].copy_from_slice(&msg[start..start + take]);
        if take < 64 {
            b[take] = 0x80;
        }
    } else if start == msg.len() {
        b[0] = 0x80;
    }
    if idx == nblocks - 1 {
        b[56..].copy_from_slice(&(msg.len() as u64).wrapping_mul(8).to_be_bytes());
    }
    b
}

fn digest_from_state(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Hashes one message by driving the scalar compression over materialized
/// padded blocks (used for group remainders and uneven tails).
fn hash_scalar(msg: &[u8]) -> Digest {
    let n = block_count(msg.len());
    let mut state = H0;
    for i in 0..n {
        crate::sha256::compress(&mut state, &padded_block(msg, i, n));
    }
    digest_from_state(&state)
}

/// 4-lane interleaved portable compression: advances four independent
/// SHA-256 states by one block each. The per-round math is identical to
/// the scalar [`compress_portable`], transposed onto `[u32; 4]` lane
/// arrays so the four dependency chains interleave.
fn compress_portable_x4(states: &mut [[u32; 8]; 4], blocks: &[[u8; 64]; 4]) {
    #[inline(always)]
    fn map4(x: [u32; 4], f: impl Fn(u32) -> u32) -> [u32; 4] {
        [f(x[0]), f(x[1]), f(x[2]), f(x[3])]
    }
    #[inline(always)]
    fn add4(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
        [
            a[0].wrapping_add(b[0]),
            a[1].wrapping_add(b[1]),
            a[2].wrapping_add(b[2]),
            a[3].wrapping_add(b[3]),
        ]
    }

    let mut w = [[0u32; 4]; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        for l in 0..4 {
            word[l] = u32::from_be_bytes([
                blocks[l][4 * i],
                blocks[l][4 * i + 1],
                blocks[l][4 * i + 2],
                blocks[l][4 * i + 3],
            ]);
        }
    }
    for i in 16..64 {
        let s1 = map4(w[i - 2], |x| {
            x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
        });
        let s0 = map4(w[i - 15], |x| {
            x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
        });
        w[i] = add4(add4(s1, w[i - 7]), add4(s0, w[i - 16]));
    }

    // v[0..8] = (a, b, c, d, e, f, g, h), each a 4-lane array.
    let mut v = [[0u32; 4]; 8];
    for (j, var) in v.iter_mut().enumerate() {
        for l in 0..4 {
            var[l] = states[l][j];
        }
    }
    for (&ki, &wi) in crate::sha256::K.iter().zip(w.iter()) {
        let big1 = map4(v[4], |e| {
            e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25)
        });
        let mut ch = [0u32; 4];
        let mut maj = [0u32; 4];
        for l in 0..4 {
            ch[l] = (v[4][l] & v[5][l]) ^ ((!v[4][l]) & v[6][l]);
            maj[l] = (v[0][l] & v[1][l]) ^ (v[0][l] & v[2][l]) ^ (v[1][l] & v[2][l]);
        }
        let t1 = add4(add4(v[7], big1), add4(add4(ch, [ki; 4]), wi));
        let big0 = map4(v[0], |a| {
            a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22)
        });
        let t2 = add4(big0, maj);
        v[7] = v[6];
        v[6] = v[5];
        v[5] = v[4];
        v[4] = add4(v[3], t1);
        v[3] = v[2];
        v[2] = v[1];
        v[1] = v[0];
        v[0] = add4(t1, t2);
    }
    for (j, var) in v.iter().enumerate() {
        for l in 0..4 {
            states[l][j] = states[l][j].wrapping_add(var[l]);
        }
    }
}

/// Hashes every message in `msgs`, returning one digest per message in
/// order. Output is byte-identical to hashing each message with
/// [`sha256`](crate::sha256::sha256); the difference is purely throughput:
/// independent messages advance through interleaved compression lanes
/// (2-lane SHA-NI or 4-lane portable, see [`lanes`]).
pub fn sha256_many(msgs: &[&[u8]]) -> Vec<Digest> {
    #[cfg(target_arch = "x86_64")]
    if crate::sha256::shani::available() {
        return many_shani(msgs);
    }
    sha256_many_portable(msgs)
}

/// Multi-lane hashing pinned to the portable 4-lane backend. Public so the
/// cross-check test corpus can exercise the portable interleave even on
/// SHA-NI hardware; prefer [`sha256_many`] everywhere else.
#[doc(hidden)]
pub fn sha256_many_portable(msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut groups = msgs.chunks_exact(4);
    for group in &mut groups {
        let nb = [
            block_count(group[0].len()),
            block_count(group[1].len()),
            block_count(group[2].len()),
            block_count(group[3].len()),
        ];
        let shared = *nb.iter().min().expect("4 lanes");
        let mut states = [H0; 4];
        for blk in 0..shared {
            let blocks = [
                padded_block(group[0], blk, nb[0]),
                padded_block(group[1], blk, nb[1]),
                padded_block(group[2], blk, nb[2]),
                padded_block(group[3], blk, nb[3]),
            ];
            compress_portable_x4(&mut states, &blocks);
        }
        for l in 0..4 {
            for blk in shared..nb[l] {
                compress_portable(&mut states[l], &padded_block(group[l], blk, nb[l]));
            }
            out.push(digest_from_state(&states[l]));
        }
    }
    for msg in groups.remainder() {
        out.push(hash_scalar(msg));
    }
    out
}

/// Multi-buffer driver for the 2-lane SHA-NI backend.
#[cfg(target_arch = "x86_64")]
fn many_shani(msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut pairs = msgs.chunks_exact(2);
    for pair in &mut pairs {
        let nb = [block_count(pair[0].len()), block_count(pair[1].len())];
        let shared = nb[0].min(nb[1]);
        let mut s0 = H0;
        let mut s1 = H0;
        for blk in 0..shared {
            let b0 = padded_block(pair[0], blk, nb[0]);
            let b1 = padded_block(pair[1], blk, nb[1]);
            // SAFETY: `sha256_many` only routes here after
            // `shani::available()` confirmed the CPU features.
            #[allow(unsafe_code)]
            unsafe {
                shani_x2::compress_x2(&mut s0, &b0, &mut s1, &b1)
            };
        }
        for (state, (msg, n)) in [&mut s0, &mut s1]
            .into_iter()
            .zip(pair.iter().zip(nb.iter()))
        {
            for blk in shared..*n {
                crate::sha256::compress(state, &padded_block(msg, blk, *n));
            }
            out.push(digest_from_state(state));
        }
    }
    for msg in pairs.remainder() {
        out.push(hash_scalar(msg));
    }
    out
}

/// Two-lane interleaved SHA-NI compression: the canonical Intel
/// `sha256rnds2` flow duplicated over two independent register streams so
/// the hardware round latency of one stream hides behind the other's
/// issue slots.
#[cfg(target_arch = "x86_64")]
mod shani_x2 {
    use crate::sha256::K;

    /// Advances two independent SHA-256 states by one block each, with the
    /// two instruction streams interleaved round-for-round.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the CPU supports the `sha`,
    /// `ssse3` and `sse4.1` features (see `sha256::shani::available`).
    #[allow(unsafe_code)]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(super) unsafe fn compress_x2(
        state_a: &mut [u32; 8],
        block_a: &[u8; 64],
        state_b: &mut [u32; 8],
        block_b: &[u8; 64],
    ) {
        use std::arch::x86_64::*;

        // Prologue (per lane): shuffle (DCBA, HGFE) into the (ABEF, CDGH)
        // split the round instructions expect.
        macro_rules! load_state {
            ($state:expr) => {{
                let tmp = unsafe { _mm_loadu_si128($state.as_ptr().cast()) };
                let mut s1 = unsafe { _mm_loadu_si128($state.as_ptr().add(4).cast()) };
                let tmp = _mm_shuffle_epi32(tmp, 0xB1);
                s1 = _mm_shuffle_epi32(s1, 0x1B);
                let s0 = _mm_alignr_epi8(tmp, s1, 8);
                let s1 = _mm_blend_epi16(s1, tmp, 0xF0);
                (s0, s1)
            }};
        }
        let (mut a0, mut a1) = load_state!(state_a);
        let (mut b0, mut b1) = load_state!(state_b);
        let a_save = (a0, a1);
        let b_save = (b0, b1);

        let flip = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0b_u64 as i64,
            0x0405_0607_0001_0203_u64 as i64,
        );
        macro_rules! load_msg {
            ($block:expr, $off:expr) => {
                unsafe { _mm_shuffle_epi8(_mm_loadu_si128($block.as_ptr().add($off).cast()), flip) }
            };
        }
        let mut am0 = load_msg!(block_a, 0);
        let mut am1 = load_msg!(block_a, 16);
        let mut am2 = load_msg!(block_a, 32);
        let mut am3 = load_msg!(block_a, 48);
        let mut bm0 = load_msg!(block_b, 0);
        let mut bm1 = load_msg!(block_b, 16);
        let mut bm2 = load_msg!(block_b, 32);
        let mut bm3 = load_msg!(block_b, 48);

        macro_rules! kvec {
            ($i:expr) => {
                unsafe { _mm_loadu_si128(K.as_ptr().add(4 * $i).cast()) }
            };
        }
        // Four rounds on both lanes: the A-lane and B-lane `sha256rnds2`
        // pairs are issued back-to-back so they overlap in the pipeline.
        macro_rules! rounds4x2 {
            ($am:expr, $bm:expr, $i:expr) => {{
                let k = kvec!($i);
                let wka = _mm_add_epi32($am, k);
                let wkb = _mm_add_epi32($bm, k);
                a1 = _mm_sha256rnds2_epu32(a1, a0, wka);
                b1 = _mm_sha256rnds2_epu32(b1, b0, wkb);
                let wka = _mm_shuffle_epi32(wka, 0x0E);
                let wkb = _mm_shuffle_epi32(wkb, 0x0E);
                a0 = _mm_sha256rnds2_epu32(a0, a1, wka);
                b0 = _mm_sha256rnds2_epu32(b0, b1, wkb);
            }};
        }
        // Message-schedule update for both lanes' w[t..t+4].
        macro_rules! schedule_x2 {
            ($aw0:expr, $aw2:expr, $aw3:expr, $bw0:expr, $bw2:expr, $bw3:expr) => {{
                let ta = _mm_alignr_epi8($aw3, $aw2, 4);
                let tb = _mm_alignr_epi8($bw3, $bw2, 4);
                $aw0 = _mm_add_epi32($aw0, ta);
                $bw0 = _mm_add_epi32($bw0, tb);
                $aw0 = _mm_sha256msg2_epu32($aw0, $aw3);
                $bw0 = _mm_sha256msg2_epu32($bw0, $bw3);
            }};
        }
        macro_rules! msg1_x2 {
            ($aw:expr, $an:expr, $bw:expr, $bn:expr) => {{
                $aw = _mm_sha256msg1_epu32($aw, $an);
                $bw = _mm_sha256msg1_epu32($bw, $bn);
            }};
        }

        rounds4x2!(am0, bm0, 0);
        rounds4x2!(am1, bm1, 1);
        msg1_x2!(am0, am1, bm0, bm1);
        rounds4x2!(am2, bm2, 2);
        msg1_x2!(am1, am2, bm1, bm2);
        rounds4x2!(am3, bm3, 3);
        schedule_x2!(am0, am2, am3, bm0, bm2, bm3);
        msg1_x2!(am2, am3, bm2, bm3);
        rounds4x2!(am0, bm0, 4);
        schedule_x2!(am1, am3, am0, bm1, bm3, bm0);
        msg1_x2!(am3, am0, bm3, bm0);
        rounds4x2!(am1, bm1, 5);
        schedule_x2!(am2, am0, am1, bm2, bm0, bm1);
        msg1_x2!(am0, am1, bm0, bm1);
        rounds4x2!(am2, bm2, 6);
        schedule_x2!(am3, am1, am2, bm3, bm1, bm2);
        msg1_x2!(am1, am2, bm1, bm2);
        rounds4x2!(am3, bm3, 7);
        schedule_x2!(am0, am2, am3, bm0, bm2, bm3);
        msg1_x2!(am2, am3, bm2, bm3);
        rounds4x2!(am0, bm0, 8);
        schedule_x2!(am1, am3, am0, bm1, bm3, bm0);
        msg1_x2!(am3, am0, bm3, bm0);
        rounds4x2!(am1, bm1, 9);
        schedule_x2!(am2, am0, am1, bm2, bm0, bm1);
        msg1_x2!(am0, am1, bm0, bm1);
        rounds4x2!(am2, bm2, 10);
        schedule_x2!(am3, am1, am2, bm3, bm1, bm2);
        msg1_x2!(am1, am2, bm1, bm2);
        rounds4x2!(am3, bm3, 11);
        schedule_x2!(am0, am2, am3, bm0, bm2, bm3);
        msg1_x2!(am2, am3, bm2, bm3);
        rounds4x2!(am0, bm0, 12);
        schedule_x2!(am1, am3, am0, bm1, bm3, bm0);
        msg1_x2!(am3, am0, bm3, bm0);
        rounds4x2!(am1, bm1, 13);
        schedule_x2!(am2, am0, am1, bm2, bm0, bm1);
        rounds4x2!(am2, bm2, 14);
        schedule_x2!(am3, am1, am2, bm3, bm1, bm2);
        rounds4x2!(am3, bm3, 15);

        a0 = _mm_add_epi32(a0, a_save.0);
        a1 = _mm_add_epi32(a1, a_save.1);
        b0 = _mm_add_epi32(b0, b_save.0);
        b1 = _mm_add_epi32(b1, b_save.1);

        // Epilogue (per lane): back to (DCBA, HGFE) memory order.
        macro_rules! store_state {
            ($state:expr, $s0:expr, $s1:expr) => {{
                let tmp = _mm_shuffle_epi32($s0, 0x1B);
                let s1 = _mm_shuffle_epi32($s1, 0xB1);
                let lo = _mm_blend_epi16(tmp, s1, 0xF0);
                let hi = _mm_alignr_epi8(s1, tmp, 8);
                unsafe {
                    _mm_storeu_si128($state.as_mut_ptr().cast(), lo);
                    _mm_storeu_si128($state.as_mut_ptr().add(4).cast(), hi);
                }
            }};
        }
        store_state!(state_a, a0, a1);
        store_state!(state_b, b0, b1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn corpus() -> Vec<Vec<u8>> {
        // Lengths straddling every padding threshold (55/56/63/64/65,
        // multi-block) plus a spread of unaligned sizes.
        let lens = [
            0usize, 1, 3, 31, 54, 55, 56, 57, 63, 64, 65, 100, 119, 120, 121, 127, 128, 129, 200,
            255, 256, 300, 1000,
        ];
        lens.iter()
            .enumerate()
            .map(|(i, &n)| {
                (0..n)
                    .map(|j| (j as u8).wrapping_mul(i as u8 + 3))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn many_matches_scalar_on_padding_corpus() {
        let msgs = corpus();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expect: Vec<_> = refs.iter().map(|m| sha256(m)).collect();
        // Every window size exercises different lane/remainder groupings.
        for width in 1..=refs.len() {
            for window in refs.windows(width) {
                let want: Vec<_> = window.iter().map(|m| sha256(m)).collect();
                assert_eq!(sha256_many(window), want, "dispatch width {width}");
                assert_eq!(sha256_many_portable(window), want, "portable width {width}");
            }
        }
        assert_eq!(sha256_many(&refs), expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(sha256_many(&[]).is_empty());
        assert_eq!(sha256_many(&[b""]), vec![sha256(b"")]);
        assert_eq!(sha256_many_portable(&[b"abc"]), vec![sha256(b"abc")]);
    }

    #[test]
    fn lanes_reports_a_supported_width() {
        assert!(matches!(lanes(), 2 | 4));
    }
}
