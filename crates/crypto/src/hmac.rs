//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the deterministic RNG ([`crate::rng`]) for key derivation and
//! available to deployments that prefer MAC-based client/server channel
//! authentication over plain transport trust.

use crate::digest::Digest;
use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kd = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..32].copy_from_slice(kd.as_bytes());
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(msg);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

/// Constant-time equality of two digests, for MAC verification.
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected.0[i] ^ actual.0[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            d.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            d.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let d = hmac_sha256(&key, &msg);
        assert_eq!(
            d.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let d = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            d.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_verification() {
        let d1 = hmac_sha256(b"k", b"m");
        let d2 = hmac_sha256(b"k", b"m");
        let d3 = hmac_sha256(b"k", b"n");
        assert!(verify_mac(&d1, &d2));
        assert!(!verify_mac(&d1, &d3));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
