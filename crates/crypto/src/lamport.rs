//! Lamport one-time signatures (Diffie–Lamport 1979).
//!
//! Included as the simplest hash-based OTS: one secret pair per digest bit.
//! The protocol stack signs with the more compact Winternitz scheme
//! ([`crate::wots`]); Lamport is kept as an independently-tested baseline and
//! is exercised by the crypto benchmarks (experiment E8).

use crate::digest::Digest;
use crate::rng::SeedRng;
use crate::sha256::sha256;

const BITS: usize = 256;

/// Lamport secret key: two 32-byte preimages per message bit.
pub struct LamportSecretKey {
    pairs: Box<[[[u8; 32]; 2]]>,
    used: bool,
}

/// Lamport public key: the hashes of every preimage.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    pairs: Box<[[Digest; 2]]>,
}

/// A Lamport signature: one revealed preimage per message bit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LamportSignature {
    reveals: Box<[[u8; 32]]>,
}

impl LamportSignature {
    /// Signature size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.reveals.len() * 32
    }
}

/// Generates a Lamport key pair from the RNG.
pub fn lamport_keygen(rng: &mut SeedRng) -> (LamportSecretKey, LamportPublicKey) {
    let mut sk = Vec::with_capacity(BITS);
    let mut pk = Vec::with_capacity(BITS);
    for _ in 0..BITS {
        let s0 = rng.next_block();
        let s1 = rng.next_block();
        pk.push([sha256(&s0), sha256(&s1)]);
        sk.push([s0, s1]);
    }
    (
        LamportSecretKey {
            pairs: sk.into_boxed_slice(),
            used: false,
        },
        LamportPublicKey {
            pairs: pk.into_boxed_slice(),
        },
    )
}

/// Errors from one-time signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtsError {
    /// The one-time key has already signed a message; signing again would
    /// leak enough preimages to forge.
    KeyReused,
}

impl std::fmt::Display for OtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtsError::KeyReused => write!(f, "one-time signing key already used"),
        }
    }
}

impl std::error::Error for OtsError {}

/// Signs a message digest, consuming the key's single use.
pub fn lamport_sign(sk: &mut LamportSecretKey, msg: &Digest) -> Result<LamportSignature, OtsError> {
    if sk.used {
        return Err(OtsError::KeyReused);
    }
    sk.used = true;
    let mut reveals = Vec::with_capacity(BITS);
    for (i, pair) in sk.pairs.iter().enumerate() {
        let bit = (msg.0[i / 8] >> (7 - (i % 8))) & 1;
        reveals.push(pair[bit as usize]);
    }
    Ok(LamportSignature {
        reveals: reveals.into_boxed_slice(),
    })
}

/// Verifies a Lamport signature against the public key.
pub fn lamport_verify(pk: &LamportPublicKey, msg: &Digest, sig: &LamportSignature) -> bool {
    if sig.reveals.len() != BITS || pk.pairs.len() != BITS {
        return false;
    }
    for i in 0..BITS {
        let bit = (msg.0[i / 8] >> (7 - (i % 8))) & 1;
        if sha256(&sig.reveals[i]) != pk.pairs[i][bit as usize] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn setup() -> (LamportSecretKey, LamportPublicKey) {
        let mut rng = SeedRng::from_label(b"lamport-test");
        lamport_keygen(&mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"commit r42");
        let sig = lamport_sign(&mut sk, &msg).unwrap();
        assert!(lamport_verify(&pk, &msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"original");
        let sig = lamport_sign(&mut sk, &msg).unwrap();
        assert!(!lamport_verify(&pk, &sha256(b"forged"), &sig));
    }

    #[test]
    fn flipped_signature_byte_rejected() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"m");
        let mut sig = lamport_sign(&mut sk, &msg).unwrap();
        sig.reveals[10][0] ^= 1;
        assert!(!lamport_verify(&pk, &msg, &sig));
    }

    #[test]
    fn key_reuse_refused() {
        let (mut sk, _pk) = setup();
        let m1 = sha256(b"one");
        lamport_sign(&mut sk, &m1).unwrap();
        assert_eq!(lamport_sign(&mut sk, &m1), Err(OtsError::KeyReused));
    }

    #[test]
    fn wrong_key_rejected() {
        let (mut sk1, _pk1) = setup();
        let mut rng = SeedRng::from_label(b"lamport-other");
        let (_sk2, pk2) = lamport_keygen(&mut rng);
        let msg = sha256(b"m");
        let sig = lamport_sign(&mut sk1, &msg).unwrap();
        assert!(!lamport_verify(&pk2, &msg, &sig));
    }

    #[test]
    fn signature_size_is_8kib() {
        let (mut sk, _pk) = setup();
        let sig = lamport_sign(&mut sk, &sha256(b"m")).unwrap();
        assert_eq!(sig.size_bytes(), 256 * 32);
    }
}
