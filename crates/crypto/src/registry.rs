//! The key registry: the reproduction's stand-in for the paper's PKI \[4\].
//!
//! The protocols need exactly two properties from "a public key
//! infrastructure, for example as in \[4\]": (1) signatures are unforgeable,
//! and (2) every user can map a user id to that user's authentic public key.
//! An in-process registry distributed to all users at setup provides (2); the
//! MSS scheme provides (1). X.509 certificate chains, revocation, etc. are
//! out of the paper's scope (it assumes a working PKI as a primitive).

use std::collections::BTreeMap;

use crate::digest::Digest;
use crate::mss::{mss_verify, MssError, MssPublicKey, MssSignature, MssSigner};
use crate::sha256::hash_parts;

/// A user identifier. `u32::MAX` is reserved as the "no user" sentinel used
/// for the initial database state token in Protocol II.
pub type UserId = u32;

/// Sentinel user id tagging the initial database state (no previous writer).
pub const NO_USER: UserId = u32::MAX;

/// Immutable table of authentic public keys, shared by all honest users.
#[derive(Clone, Default)]
pub struct KeyRegistry {
    keys: BTreeMap<UserId, MssPublicKey>,
}

impl KeyRegistry {
    /// Empty registry.
    pub fn new() -> KeyRegistry {
        KeyRegistry::default()
    }

    /// Registers a user's public key. Returns `false` (and leaves the
    /// registry unchanged) if the id is already registered or reserved.
    pub fn register(&mut self, user: UserId, key: MssPublicKey) -> bool {
        if user == NO_USER || self.keys.contains_key(&user) {
            return false;
        }
        self.keys.insert(user, key);
        true
    }

    /// Looks up a user's public key.
    pub fn lookup(&self, user: UserId) -> Option<&MssPublicKey> {
        self.keys.get(&user)
    }

    /// Verifies that `sig` is `user`'s signature over `msg`.
    pub fn verify(&self, user: UserId, msg: &Digest, sig: &MssSignature) -> bool {
        match self.lookup(user) {
            Some(pk) => mss_verify(pk, msg, sig),
            None => false,
        }
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Registered user ids, ascending.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.keys.keys().copied()
    }
}

/// A user's signing identity: id + stateful MSS signer.
pub struct Keyring {
    /// The user this keyring signs for.
    pub user: UserId,
    signer: MssSigner,
}

impl Keyring {
    /// Derives a keyring for `user` from a shared setup seed. Each user's key
    /// material is an independent hash-derived stream.
    pub fn derive(setup_seed: &[u8; 32], user: UserId, height: u32) -> Keyring {
        let seed = hash_parts(&[b"tcvs-keyring", setup_seed, &user.to_be_bytes()]);
        Keyring {
            user,
            signer: MssSigner::generate(seed.0, height),
        }
    }

    /// The public key to publish in the registry.
    pub fn public_key(&self) -> MssPublicKey {
        self.signer.public_key()
    }

    /// Signs a message digest.
    pub fn sign(&mut self, msg: &Digest) -> Result<MssSignature, MssError> {
        self.signer.sign(msg)
    }

    /// Remaining signatures before key exhaustion.
    pub fn remaining(&self) -> u64 {
        self.signer.remaining()
    }
}

/// Convenience: builds keyrings for users `0..n` and the matching registry.
pub fn setup_users(setup_seed: [u8; 32], n: u32, height: u32) -> (Vec<Keyring>, KeyRegistry) {
    let mut registry = KeyRegistry::new();
    let mut rings = Vec::with_capacity(n as usize);
    for user in 0..n {
        let ring = Keyring::derive(&setup_seed, user, height);
        assert!(registry.register(user, ring.public_key()));
        rings.push(ring);
    }
    (rings, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn setup_and_cross_verification() {
        let (mut rings, registry) = setup_users([3u8; 32], 3, 3);
        assert_eq!(registry.len(), 3);
        let msg = sha256(b"root||ctr");
        let sig = rings[1].sign(&msg).unwrap();
        assert!(registry.verify(1, &msg, &sig));
        // Claiming another user's identity fails.
        assert!(!registry.verify(0, &msg, &sig));
        assert!(!registry.verify(2, &msg, &sig));
    }

    #[test]
    fn unknown_user_never_verifies() {
        let (mut rings, registry) = setup_users([3u8; 32], 2, 3);
        let msg = sha256(b"m");
        let sig = rings[0].sign(&msg).unwrap();
        assert!(!registry.verify(99, &msg, &sig));
    }

    #[test]
    fn duplicate_and_reserved_registration_rejected() {
        let mut registry = KeyRegistry::new();
        let ring = Keyring::derive(&[1u8; 32], 0, 2);
        assert!(registry.register(0, ring.public_key()));
        assert!(!registry.register(0, ring.public_key()));
        assert!(!registry.register(NO_USER, ring.public_key()));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn distinct_users_get_distinct_keys() {
        let (rings, _) = setup_users([8u8; 32], 4, 2);
        let mut roots: Vec<_> = rings.iter().map(|r| r.public_key().root).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), 4);
    }

    #[test]
    fn keyring_capacity_tracks_signing() {
        let mut ring = Keyring::derive(&[5u8; 32], 7, 2);
        assert_eq!(ring.remaining(), 4);
        ring.sign(&sha256(b"a")).unwrap();
        assert_eq!(ring.remaining(), 3);
    }

    #[test]
    fn users_iterator_ascending() {
        let (_, registry) = setup_users([2u8; 32], 5, 2);
        let ids: Vec<_> = registry.users().collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
