//! A deterministic cryptographic RNG (ChaCha20 keystream) for key generation.
//!
//! The sanctioned dependency set has no OS-entropy crate at this layer, so
//! key material is derived from caller-provided 32-byte seeds. This is the
//! right shape for a reproduction: every experiment, test, and example is
//! fully deterministic given its seed. (A real deployment would seed from OS
//! entropy; nothing else changes.)

use crate::digest::Digest;
use crate::sha256::hash_parts;

/// ChaCha20 quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produces one 64-byte ChaCha20 block for (key, counter, nonce).
fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    // "expa nd 3 2-by te k" constants.
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut work = state;
    for _ in 0..10 {
        // Column rounds.
        quarter(&mut work, 0, 4, 8, 12);
        quarter(&mut work, 1, 5, 9, 13);
        quarter(&mut work, 2, 6, 10, 14);
        quarter(&mut work, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter(&mut work, 0, 5, 10, 15);
        quarter(&mut work, 1, 6, 11, 12);
        quarter(&mut work, 2, 7, 8, 13);
        quarter(&mut work, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = work[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deterministic RNG over a ChaCha20 keystream.
#[derive(Clone)]
pub struct SeedRng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    pos: usize,
}

impl SeedRng {
    /// Creates an RNG from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> SeedRng {
        SeedRng {
            key: seed,
            nonce: [0u8; 12],
            counter: 0,
            buf: [0u8; 64],
            pos: 64,
        }
    }

    /// Creates an RNG by hashing an arbitrary label — handy for deriving
    /// independent streams ("user 3 keygen", "workload 7") from one master
    /// seed.
    pub fn from_label(label: &[u8]) -> SeedRng {
        SeedRng::from_seed(hash_parts(&[b"tcvs-rng", label]).0)
    }

    /// Derives an independent child RNG.
    pub fn fork(&mut self, label: &[u8]) -> SeedRng {
        let mut child_seed = [0u8; 32];
        self.fill_bytes(&mut child_seed);
        SeedRng::from_seed(hash_parts(&[b"tcvs-rng-fork", &child_seed, label]).0)
    }

    /// Fills `out` with keystream bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.pos == 64 {
                self.buf = chacha20_block(&self.key, self.counter, &self.nonce);
                self.counter = self
                    .counter
                    .checked_add(1)
                    .expect("ChaCha20 keystream exhausted (2^38 bytes)");
                self.pos = 0;
            }
            *byte = self.buf[self.pos];
            self.pos += 1;
        }
    }

    /// Returns 32 fresh random bytes.
    pub fn next_block(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a fresh random digest-sized value.
    pub fn next_digest(&mut self) -> Digest {
        Digest(self.next_block())
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// A uniform value in `[0, bound)` via rejection sampling (no modulo
    /// bias). `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 ChaCha20 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, 1, &nonce);
        let expect_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expect_first16);
        // Final state word is 0x4e3c50a2, serialized little-endian.
        let expect_last4: [u8; 4] = [0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[60..], &expect_last4);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeedRng::from_seed([42u8; 32]);
        let mut b = SeedRng::from_seed([42u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedRng::from_seed([1u8; 32]);
        let mut b = SeedRng::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SeedRng::from_label(b"parent");
        let mut c1 = parent.fork(b"one");
        let mut c2 = parent.fork(b"two");
        assert_ne!(c1.next_block(), c2.next_block());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SeedRng::from_label(b"bound-test");
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SeedRng::from_label(b"coverage");
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn fill_bytes_across_block_boundaries() {
        // Reading 100 bytes at once must equal reading 1-at-a-time.
        let mut a = SeedRng::from_seed([9u8; 32]);
        let mut b = SeedRng::from_seed([9u8; 32]);
        let mut big = [0u8; 100];
        a.fill_bytes(&mut big);
        let singles: Vec<u8> = (0..100)
            .map(|_| {
                let mut x = [0u8; 1];
                b.fill_bytes(&mut x);
                x[0]
            })
            .collect();
        assert_eq!(&big[..], &singles[..]);
    }
}
