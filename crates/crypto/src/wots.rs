//! Winternitz one-time signatures (WOTS) with w = 16.
//!
//! The compact OTS used as the leaf scheme of the Merkle Signature Scheme
//! ([`crate::mss`]). A 256-bit digest is cut into 64 base-16 chunks plus a
//! 3-chunk checksum; each chunk selects a position along an independent
//! length-16 hash chain.

use crate::digest::Digest;
use crate::rng::SeedRng;
use crate::sha256::{hash_parts, Sha256};

/// Winternitz parameter (chain length). Chunks are 4 bits.
pub const W: u32 = 16;
/// Number of message chunks (256 bits / 4 bits).
pub const LEN1: usize = 64;
/// Number of checksum chunks: max checksum = 64·15 = 960 < 16³.
pub const LEN2: usize = 3;
/// Total number of hash chains per key.
pub const LEN: usize = LEN1 + LEN2;

/// WOTS secret key: the chain starting points.
pub struct WotsSecretKey {
    chains: Box<[[u8; 32]]>,
    used: bool,
}

/// WOTS public key: the chain end points, plus the compressed digest that the
/// Merkle tree actually commits to.
#[derive(Clone, PartialEq, Eq)]
pub struct WotsPublicKey {
    ends: Box<[Digest]>,
}

/// WOTS signature: one intermediate chain value per chunk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WotsSignature {
    pub(crate) values: Box<[Digest]>,
}

impl WotsSignature {
    /// Signature size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * Digest::LEN
    }

    /// Flat byte encoding (used by the wire codec in `tcvs-core`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes());
        for v in self.values.iter() {
            out.extend_from_slice(v.as_bytes());
        }
        out
    }

    /// Decodes the flat encoding produced by [`WotsSignature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<WotsSignature> {
        if bytes.len() != LEN * Digest::LEN {
            return None;
        }
        let values: Vec<Digest> = bytes
            .chunks_exact(Digest::LEN)
            .map(|c| Digest::from_slice(c).expect("exact chunk"))
            .collect();
        Some(WotsSignature {
            values: values.into_boxed_slice(),
        })
    }
}

impl WotsPublicKey {
    /// Compresses the 67 chain ends into a single digest (the MSS leaf).
    pub fn compress(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"tcvs-wots-pk");
        for d in self.ends.iter() {
            h.update(d.as_bytes());
        }
        h.finalize()
    }
}

/// Applies the chain function `steps` times starting from `start` at chain
/// position `from`. The chain index and step position are hashed in, which
/// prevents cross-chain value reuse.
fn chain(start: &Digest, chain_idx: usize, from: u32, steps: u32) -> Digest {
    let mut cur = *start;
    for s in 0..steps {
        cur = hash_parts(&[
            b"tcvs-wots-chain",
            &(chain_idx as u32).to_be_bytes(),
            &(from + s).to_be_bytes(),
            cur.as_bytes(),
        ]);
    }
    cur
}

/// Splits a digest into 64 message chunks + 3 checksum chunks (base 16).
fn chunks_of(msg: &Digest) -> [u8; LEN] {
    let mut out = [0u8; LEN];
    for (i, chunk) in out.iter_mut().take(LEN1).enumerate() {
        let byte = msg.0[i / 2];
        *chunk = if i % 2 == 0 { byte >> 4 } else { byte & 0xf };
    }
    let checksum: u32 = out[..LEN1].iter().map(|&c| (W - 1) - c as u32).sum();
    // Encode the checksum in base 16, most significant chunk first.
    out[LEN1] = ((checksum >> 8) & 0xf) as u8;
    out[LEN1 + 1] = ((checksum >> 4) & 0xf) as u8;
    out[LEN1 + 2] = (checksum & 0xf) as u8;
    out
}

/// Generates a WOTS key pair.
pub fn wots_keygen(rng: &mut SeedRng) -> (WotsSecretKey, WotsPublicKey) {
    let mut chains = Vec::with_capacity(LEN);
    let mut ends = Vec::with_capacity(LEN);
    for i in 0..LEN {
        let sk = rng.next_block();
        ends.push(chain(&Digest(sk), i, 0, W - 1));
        chains.push(sk);
    }
    (
        WotsSecretKey {
            chains: chains.into_boxed_slice(),
            used: false,
        },
        WotsPublicKey {
            ends: ends.into_boxed_slice(),
        },
    )
}

/// Deterministically generates the key pair for MSS leaf `index` from a
/// master seed, so the signer need not store 2^H secret keys.
pub fn wots_keygen_at(master_seed: &[u8; 32], index: u64) -> (WotsSecretKey, WotsPublicKey) {
    let leaf_seed = hash_parts(&[b"tcvs-wots-leaf", master_seed, &index.to_be_bytes()]);
    let mut rng = SeedRng::from_seed(leaf_seed.0);
    wots_keygen(&mut rng)
}

pub use crate::lamport::OtsError;

/// Signs a message digest, consuming the key's single use.
pub fn wots_sign(sk: &mut WotsSecretKey, msg: &Digest) -> Result<WotsSignature, OtsError> {
    if sk.used {
        return Err(OtsError::KeyReused);
    }
    sk.used = true;
    let cs = chunks_of(msg);
    let values: Vec<Digest> = cs
        .iter()
        .enumerate()
        .map(|(i, &c)| chain(&Digest(sk.chains[i]), i, 0, c as u32))
        .collect();
    Ok(WotsSignature {
        values: values.into_boxed_slice(),
    })
}

/// Recomputes the public key a signature *claims*; the caller compares it (or
/// its compression) against the authentic public key.
pub fn wots_pk_from_sig(msg: &Digest, sig: &WotsSignature) -> WotsPublicKey {
    let cs = chunks_of(msg);
    let ends: Vec<Digest> = cs
        .iter()
        .enumerate()
        .map(|(i, &c)| chain(&sig.values[i], i, c as u32, (W - 1) - c as u32))
        .collect();
    WotsPublicKey {
        ends: ends.into_boxed_slice(),
    }
}

/// Verifies a WOTS signature against the authentic public key.
pub fn wots_verify(pk: &WotsPublicKey, msg: &Digest, sig: &WotsSignature) -> bool {
    if sig.values.len() != LEN {
        return false;
    }
    wots_pk_from_sig(msg, sig) == *pk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn setup() -> (WotsSecretKey, WotsPublicKey) {
        let mut rng = SeedRng::from_label(b"wots-test");
        wots_keygen(&mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"root digest 17");
        let sig = wots_sign(&mut sk, &msg).unwrap();
        assert!(wots_verify(&pk, &msg, &sig));
    }

    #[test]
    fn checksum_prevents_chunk_increase_forgery() {
        // Winternitz soundness depends on the checksum: increasing any
        // message chunk forces some checksum chunk to decrease, which a
        // forger cannot compute (it needs a preimage). We at least verify
        // that verification fails for a different message.
        let (mut sk, pk) = setup();
        let msg = sha256(b"a");
        let sig = wots_sign(&mut sk, &msg).unwrap();
        for other in [b"b".as_ref(), b"ab", b"aa", b""] {
            assert!(!wots_verify(&pk, &sha256(other), &sig));
        }
    }

    #[test]
    fn tampered_signature_rejected() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"m");
        let mut sig = wots_sign(&mut sk, &msg).unwrap();
        sig.values[33].0[0] ^= 0x80;
        assert!(!wots_verify(&pk, &msg, &sig));
    }

    #[test]
    fn key_reuse_refused() {
        let (mut sk, _) = setup();
        wots_sign(&mut sk, &sha256(b"one")).unwrap();
        assert_eq!(
            wots_sign(&mut sk, &sha256(b"two")),
            Err(OtsError::KeyReused)
        );
    }

    #[test]
    fn chunks_cover_full_digest_and_checksum_bounds() {
        let all_zero = chunks_of(&Digest::ZERO);
        // All-zero message => max checksum 960 = 0x3C0.
        assert_eq!(&all_zero[LEN1..], &[0x3, 0xC, 0x0]);
        let all_ones = chunks_of(&Digest([0xFF; 32]));
        assert!(all_ones[..LEN1].iter().all(|&c| c == 0xF));
        assert_eq!(&all_ones[LEN1..], &[0, 0, 0]);
    }

    #[test]
    fn deterministic_leaf_keygen() {
        let seed = [5u8; 32];
        let (_, pk1) = wots_keygen_at(&seed, 9);
        let (_, pk2) = wots_keygen_at(&seed, 9);
        let (_, pk3) = wots_keygen_at(&seed, 10);
        assert_eq!(pk1.compress(), pk2.compress());
        assert_ne!(pk1.compress(), pk3.compress());
    }

    #[test]
    fn signature_encoding_round_trip() {
        let (mut sk, _) = setup();
        let sig = wots_sign(&mut sk, &sha256(b"enc")).unwrap();
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), LEN * 32);
        assert_eq!(WotsSignature::from_bytes(&bytes).unwrap(), sig);
        assert!(WotsSignature::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn pk_from_sig_matches_real_pk() {
        let (mut sk, pk) = setup();
        let msg = sha256(b"pk-recovery");
        let sig = wots_sign(&mut sk, &msg).unwrap();
        assert_eq!(wots_pk_from_sig(&msg, &sig).compress(), pk.compress());
    }
}
