//! The 256-bit digest type shared by every trusted-cvs subsystem.
//!
//! Digests serve three roles in the paper:
//! * node digests and root digests of the Merkle B+-tree (§4.1),
//! * the *state tokens* `h(M(D) ‖ ctr ‖ user)` accumulated by Protocol II,
//! * message digests signed by the hash-based signature scheme.
//!
//! Protocol II needs digests to form an XOR group (its `σᵢ` registers are
//! XOR accumulators), so [`Digest`] implements `BitXor`/`BitXorAssign` with
//! [`Digest::ZERO`] as the identity.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

/// A 256-bit digest (output of SHA-256).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest: identity element of the XOR group, and the
    /// conventional digest of an empty tree.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Byte length of a digest.
    pub const LEN: usize = 32;

    /// Returns the digest as a byte slice.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Builds a digest from a byte slice; returns `None` unless the slice is
    /// exactly 32 bytes.
    pub fn from_slice(bytes: &[u8]) -> Option<Digest> {
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(bytes);
        Some(Digest(out))
    }

    /// True iff this is the all-zero digest.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Lowercase hexadecimal rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            let hi = hex_val(bytes[2 * i])?;
            let lo = hex_val(bytes[2 * i + 1])?;
            out[i] = (hi << 4) | lo;
        }
        Some(Digest(out))
    }

    /// A short (8 hex char) prefix, for human-readable logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl BitXor for Digest {
    type Output = Digest;
    #[inline]
    fn bitxor(self, rhs: Digest) -> Digest {
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.0[i] ^ rhs.0[i];
        }
        Digest(out)
    }
}

impl BitXorAssign for Digest {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Digest) {
        for i in 0..32 {
            self.0[i] ^= rhs.0[i];
        }
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_xor_identity() {
        let d = Digest([7u8; 32]);
        assert_eq!(d ^ Digest::ZERO, d);
        assert_eq!(Digest::ZERO ^ d, d);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Digest([0xAB; 32]);
        let b = Digest([0x5C; 32]);
        assert_eq!(a ^ b ^ b, a);
        assert_eq!(a ^ a, Digest::ZERO);
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = Digest([1; 32]);
        let b = Digest([2; 32]);
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn hex_round_trip() {
        let mut raw = [0u8; 32];
        for (i, byte) in raw.iter_mut().enumerate() {
            *byte = (i * 7 + 3) as u8;
        }
        let d = Digest(raw);
        let hex = d.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Digest::from_hex(&hex), Some(d));
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("abcd"), None);
        let bad = "zz".repeat(32);
        assert_eq!(Digest::from_hex(&bad), None);
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(Digest::from_slice(&[0u8; 31]).is_none());
        assert!(Digest::from_slice(&[0u8; 33]).is_none());
        assert!(Digest::from_slice(&[0u8; 32]).is_some());
    }

    #[test]
    fn short_is_prefix() {
        let d = Digest([0xFF; 32]);
        assert_eq!(d.short(), "ffffffff");
        assert!(d.to_hex().starts_with(&d.short()));
    }

    #[test]
    fn is_zero_detects_only_zero() {
        assert!(Digest::ZERO.is_zero());
        let mut d = Digest::ZERO;
        d.0[31] = 1;
        assert!(!d.is_zero());
    }
}
