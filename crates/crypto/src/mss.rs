//! Merkle Signature Scheme (MSS): a many-time signature built from a Merkle
//! tree over 2^H one-time (WOTS) public keys.
//!
//! This is the digital-signature substrate for Protocol I and Protocol III
//! (the paper assumes "a public key infrastructure, for example as in \[4\]").
//! The choice of a hash-based scheme keeps the whole trust chain on the same
//! collision-intractability assumption the paper already makes, and needs no
//! external crates — the signature construction is exactly the one in
//! Merkle's "A certified digital signature" (CRYPTO '89), which the paper
//! cites as \[9\].

use crate::digest::Digest;
use crate::sha256::hash_parts;
use crate::wots::{wots_keygen_at, wots_pk_from_sig, wots_sign, WotsSignature};

/// Combines two child node digests into a parent digest (domain separated).
fn node_hash(left: &Digest, right: &Digest) -> Digest {
    hash_parts(&[b"tcvs-mss-node", left.as_bytes(), right.as_bytes()])
}

/// An MSS public key: the Merkle root over the one-time public keys plus the
/// tree height (which bounds how many signatures the key can make).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MssPublicKey {
    /// Root digest of the Merkle tree over one-time public keys.
    pub root: Digest,
    /// Tree height; the key can sign `2^height` messages.
    pub height: u32,
}

/// An MSS signature: the index of the one-time key used, the WOTS signature,
/// and the authentication path from that leaf to the root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MssSignature {
    /// Index of the one-time key used.
    pub leaf_index: u64,
    /// The underlying Winternitz signature.
    pub wots: WotsSignature,
    /// Sibling digests from the leaf to the root.
    pub auth_path: Vec<Digest>,
}

impl MssSignature {
    /// Signature size in bytes (wire estimate).
    pub fn size_bytes(&self) -> usize {
        8 + self.wots.size_bytes() + self.auth_path.len() * Digest::LEN
    }
}

/// Errors from MSS signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MssError {
    /// All 2^H one-time keys are spent.
    KeyExhausted,
}

impl std::fmt::Display for MssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MssError::KeyExhausted => write!(f, "all one-time keys of this MSS key are spent"),
        }
    }
}

impl std::error::Error for MssError {}

/// A stateful MSS signer. Tracks which one-time key to use next; the full
/// node set of the Merkle tree is retained so authentication paths are O(H)
/// lookups (fine at the heights used here; a production signer would use the
/// BDS traversal algorithm).
pub struct MssSigner {
    master_seed: [u8; 32],
    height: u32,
    /// `levels[0]` = leaves, `levels[height]` = `[root]`.
    levels: Vec<Vec<Digest>>,
    next_leaf: u64,
}

impl MssSigner {
    /// Generates a signer with capacity for `2^height` signatures.
    ///
    /// Key generation computes every one-time public key, so it costs
    /// `O(2^height)` WOTS keygens; heights 4–10 are instantaneous-to-fast.
    pub fn generate(master_seed: [u8; 32], height: u32) -> MssSigner {
        assert!(height <= 20, "MSS height {height} unreasonably large");
        let n_leaves = 1u64 << height;
        let mut leaves = Vec::with_capacity(n_leaves as usize);
        for i in 0..n_leaves {
            let (_, pk) = wots_keygen_at(&master_seed, i);
            leaves.push(pk.compress());
        }
        let mut levels = vec![leaves];
        for h in 0..height {
            let below = &levels[h as usize];
            let mut level = Vec::with_capacity(below.len() / 2);
            for pair in below.chunks_exact(2) {
                level.push(node_hash(&pair[0], &pair[1]));
            }
            levels.push(level);
        }
        MssSigner {
            master_seed,
            height,
            levels,
            next_leaf: 0,
        }
    }

    /// The public key to register for this signer.
    pub fn public_key(&self) -> MssPublicKey {
        MssPublicKey {
            root: self.levels[self.height as usize][0],
            height: self.height,
        }
    }

    /// Remaining signature capacity.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height) - self.next_leaf
    }

    /// Signs a message digest with the next unused one-time key.
    pub fn sign(&mut self, msg: &Digest) -> Result<MssSignature, MssError> {
        let idx = self.next_leaf;
        if idx >= (1u64 << self.height) {
            return Err(MssError::KeyExhausted);
        }
        self.next_leaf += 1;

        let (mut sk, _) = wots_keygen_at(&self.master_seed, idx);
        let wots = wots_sign(&mut sk, msg).expect("fresh one-time key");

        let mut auth_path = Vec::with_capacity(self.height as usize);
        let mut node = idx;
        for h in 0..self.height {
            let sibling = node ^ 1;
            auth_path.push(self.levels[h as usize][sibling as usize]);
            node >>= 1;
        }
        Ok(MssSignature {
            leaf_index: idx,
            wots,
            auth_path,
        })
    }
}

/// Verifies an MSS signature against a public key.
pub fn mss_verify(pk: &MssPublicKey, msg: &Digest, sig: &MssSignature) -> bool {
    if sig.auth_path.len() != pk.height as usize {
        return false;
    }
    if sig.leaf_index >= (1u64 << pk.height) {
        return false;
    }
    let leaf = wots_pk_from_sig(msg, &sig.wots).compress();
    let mut node = leaf;
    let mut idx = sig.leaf_index;
    for sib in &sig.auth_path {
        node = if idx & 1 == 0 {
            node_hash(&node, sib)
        } else {
            node_hash(sib, &node)
        };
        idx >>= 1;
    }
    node == pk.root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn signer(h: u32) -> MssSigner {
        MssSigner::generate([7u8; 32], h)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut s = signer(3);
        let pk = s.public_key();
        for i in 0..8u32 {
            let msg = sha256(&i.to_be_bytes());
            let sig = s.sign(&msg).unwrap();
            assert!(mss_verify(&pk, &msg, &sig), "sig {i}");
            assert_eq!(sig.leaf_index, i as u64);
        }
    }

    #[test]
    fn exhaustion_detected() {
        let mut s = signer(2);
        for i in 0..4u32 {
            s.sign(&sha256(&i.to_be_bytes())).unwrap();
        }
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.sign(&sha256(b"x")), Err(MssError::KeyExhausted));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut s = signer(3);
        let pk = s.public_key();
        let sig = s.sign(&sha256(b"real")).unwrap();
        assert!(!mss_verify(&pk, &sha256(b"fake"), &sig));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut s = signer(4);
        let pk = s.public_key();
        let msg = sha256(b"m");
        let mut sig = s.sign(&msg).unwrap();
        sig.auth_path[2].0[5] ^= 1;
        assert!(!mss_verify(&pk, &msg, &sig));
    }

    #[test]
    fn wrong_leaf_index_rejected() {
        let mut s = signer(4);
        let pk = s.public_key();
        let msg = sha256(b"m");
        let mut sig = s.sign(&msg).unwrap();
        sig.leaf_index = 3;
        assert!(!mss_verify(&pk, &msg, &sig));
        sig.leaf_index = 1 << 10; // out of range entirely
        assert!(!mss_verify(&pk, &msg, &sig));
    }

    #[test]
    fn cross_key_verification_fails() {
        let mut s1 = MssSigner::generate([1u8; 32], 3);
        let s2 = MssSigner::generate([2u8; 32], 3);
        let msg = sha256(b"m");
        let sig = s1.sign(&msg).unwrap();
        assert!(!mss_verify(&s2.public_key(), &msg, &sig));
    }

    #[test]
    fn wrong_height_pk_rejected() {
        let mut s = signer(3);
        let msg = sha256(b"m");
        let sig = s.sign(&msg).unwrap();
        let bad_pk = MssPublicKey {
            root: s.public_key().root,
            height: 4,
        };
        assert!(!mss_verify(&bad_pk, &msg, &sig));
    }

    #[test]
    fn deterministic_public_key() {
        let a = MssSigner::generate([9u8; 32], 3).public_key();
        let b = MssSigner::generate([9u8; 32], 3).public_key();
        assert_eq!(a, b);
    }

    #[test]
    fn signature_size_accounting() {
        let mut s = signer(5);
        let sig = s.sign(&sha256(b"m")).unwrap();
        assert_eq!(sig.size_bytes(), 8 + 67 * 32 + 5 * 32);
    }
}
