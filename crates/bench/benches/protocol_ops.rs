//! Criterion bench: full per-operation protocol cost, server + client, for
//! each protocol (E2's microbenchmark counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcvs_core::{Client1, Client2, HonestServer, Op, ProtocolConfig, ServerApi};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, MerkleTree};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

/// Preloads the server with n entries.
fn preload(server: &mut HonestServer, n: u64) {
    for i in 0..n {
        server.handle_op(0, &Op::Put(u64_key(i), vec![0xAB; 24]), 0);
    }
}

fn bench_trusted(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/trusted_put");
    for n in [1u64 << 12, 1 << 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = config();
            let mut server = HonestServer::new(&cfg);
            preload(&mut server, n);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                server.handle_op(0, &Op::Put(u64_key(i % n), vec![1; 24]), i)
            });
        });
    }
    g.finish();
}

fn bench_protocol2(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/p2_put_verified");
    for n in [1u64 << 12, 1 << 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = config();
            let mut server = HonestServer::new(&cfg);
            let root0 = MerkleTree::with_order(cfg.order).root_digest();
            let mut client = Client2::new(0, &root0, cfg);
            // Preload THROUGH the client so its accumulator stays coherent.
            for i in 0..n.min(1 << 12) {
                let op = Op::Put(u64_key(i), vec![0xAB; 24]);
                let resp = server.handle_op(0, &op, i);
                client.handle_response(&op, &resp).unwrap();
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let op = Op::Put(u64_key(i % n), vec![1; 24]);
                let resp = server.handle_op(0, &op, i);
                client.handle_response(&op, &resp).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_protocol1(c: &mut Criterion) {
    c.bench_function("protocol/p1_put_verified_signed", |b| {
        let cfg = config();
        let mut server = HonestServer::new(&cfg);
        let root0 = MerkleTree::with_order(cfg.order).root_digest();
        // Height 12 keeps keygen fast; criterion may outrun the 4096-sig
        // capacity, so regenerate when spent (a rare, visible outlier —
        // same pattern as the mss_sign bench).
        let (rings, registry) = setup_users([9; 32], 1, 12);
        let mut client = Client1::new(rings.into_iter().next().unwrap(), registry.clone(), cfg);
        let init = client.sign_initial(&root0).unwrap();
        server.deposit_signature(0, init);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let op = Op::Put(u64_key(i % 4096), vec![1; 24]);
            let resp = server.handle_op(0, &op, i);
            let (result, deposit) = match client.handle_response(&op, &resp) {
                Ok(r) => r,
                Err(_) => {
                    // Key exhausted: restart the whole world (fresh server,
                    // fresh identity) so the initial signature matches the
                    // initial state; the tree refills over later iterations.
                    server = HonestServer::new(&cfg);
                    let (rings, registry) = setup_users([9; 32], 1, 12);
                    client = Client1::new(rings.into_iter().next().unwrap(), registry, cfg);
                    let init = client.sign_initial(&root0).unwrap();
                    server.deposit_signature(0, init);
                    let resp = server.handle_op(0, &op, i);
                    client.handle_response(&op, &resp).unwrap()
                }
            };
            server.deposit_signature(0, deposit);
            result
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trusted, bench_protocol2, bench_protocol1
}
criterion_main!(benches);
