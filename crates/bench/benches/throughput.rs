//! Criterion bench: threaded end-to-end throughput (E6's counterpart).
//! Each iteration is a complete multi-client run; criterion reports the
//! wall time per run, so lower = higher throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcvs_core::{ProtocolConfig, ProtocolKind};
use tcvs_net::run_throughput;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

fn bench_protocols(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("throughput/4clients_x_200ops_90pct_updates");
    g.sample_size(10);
    for protocol in [ProtocolKind::Trusted, ProtocolKind::One, ProtocolKind::Two] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| {
                b.iter(|| run_throughput(p, 4, 200, 90, &cfg).ops);
            },
        );
    }
    g.finish();
}

fn bench_read_heavy(c: &mut Criterion) {
    // The acceptance mix for the concurrent read path: 90% reads / 10%
    // updates. The trusted baseline routes its reads over the snapshot
    // wire; Protocol II stays fully serialized (reads are state
    // transitions there), so the gap between the two is the price of
    // k-bounded detection.
    let cfg = config();
    let mut g = c.benchmark_group("throughput/4clients_x_200ops_10pct_updates");
    g.sample_size(10);
    for protocol in [ProtocolKind::Trusted, ProtocolKind::Two] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| {
                b.iter(|| run_throughput(p, 4, 200, 10, &cfg).ops);
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_protocols, bench_read_heavy
}
criterion_main!(benches);
