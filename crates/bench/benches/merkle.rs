//! Criterion bench: Merkle B+-tree operations and proof machinery (E1's
//! microbenchmark counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcvs_merkle::{
    apply_op, prune_for_op, u64_key, verify_response, MerkleTree, Op, VerificationObject,
};

fn build(n: u64, order: usize) -> MerkleTree {
    let mut t = MerkleTree::with_order(order);
    for i in 0..n {
        t.insert(u64_key(i), vec![0xAB; 24]).unwrap();
    }
    t
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle/insert");
    for n in [1u64 << 10, 1 << 14] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let tree = build(n, 16);
            let mut i = n;
            b.iter(|| {
                let mut t = tree.clone();
                i += 1;
                t.insert(u64_key(i), vec![1; 24]).unwrap();
                t.root_digest()
            });
        });
    }
    g.finish();
}

fn bench_put_with_proof(c: &mut Criterion) {
    // The §4.1 server hot path: prune the proof for a Put, apply it
    // copy-on-write, read the new root. Structural sharing keeps both the
    // prune (zero-copy) and the apply (spine-only) at O(log n).
    let mut g = c.benchmark_group("merkle/serve_put_with_proof");
    for n in [1u64 << 10, 1 << 14, 1 << 18] {
        let tree = build(n, 16);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut live = tree.clone();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; 24]);
                let vo = VerificationObject::new(prune_for_op(&live, &op));
                apply_op(&mut live, &op).unwrap();
                (vo.encoded_size(), live.root_digest())
            });
        });
    }
    g.finish();
}

fn bench_get_with_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle/serve_get_with_proof");
    for n in [1u64 << 10, 1 << 14, 1 << 18] {
        let tree = build(n, 16);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let op = Op::Get(u64_key(n / 2));
            b.iter(|| {
                let vo = VerificationObject::new(prune_for_op(&tree, &op));
                vo.encoded_size()
            });
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle/client_verify_update");
    for n in [1u64 << 10, 1 << 14, 1 << 18] {
        let mut tree = build(n, 16);
        let root = tree.root_digest();
        let op = Op::Put(u64_key(n / 2), vec![7; 24]);
        let vo = VerificationObject::new(prune_for_op(&tree, &op));
        let answer = apply_op(&mut tree, &op).unwrap();
        let new_root = tree.root_digest();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                verify_response(&root, 16, &vo, &op, Some(&answer), Some(&new_root)).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inserts, bench_put_with_proof, bench_get_with_proof, bench_verify
}
criterion_main!(benches);
